//! Facade-level integration tests: the `wnoc` crate must re-export all five
//! layers under stable paths, and the Table II quick-start from its crate docs
//! must run end to end.

use wnoc::core::analysis::WcttTable;
use wnoc::core::RouterTiming;

/// Every layer is reachable through the facade under its documented name, and
/// the re-exported items are the same types as in the underlying crates.
#[test]
fn reexports_resolve_and_are_the_underlying_types() {
    // `wnoc::core` is `wnoc_core`.
    let mesh: wnoc::core::Mesh = wnoc_core::Mesh::square(4).unwrap();
    let dims: wnoc::core::MeshDims = mesh.dims();
    assert_eq!(dims.node_count(), 16);
    let config: wnoc::core::NocConfig = wnoc_core::NocConfig::waw_wap();

    // `wnoc::sim` is `wnoc_sim`.
    let hotspot = wnoc::core::Coord::from_row_col(0, 0);
    let flows = wnoc::core::FlowSet::all_to_one(&mesh, hotspot).unwrap();
    let network: wnoc::sim::network::Network =
        wnoc_sim::network::Network::new(mesh, config, &flows).unwrap();
    assert_eq!(network.stats().messages_delivered, 0);

    // `wnoc::manycore` is `wnoc_manycore`.
    let estimator: wnoc::manycore::wcet::WcetEstimator =
        wnoc_manycore::wcet::WcetEstimator::new(4, hotspot, 30, config).unwrap();
    let trace = wnoc_manycore::trace::Trace::from_events(vec![
        wnoc_manycore::trace::TraceEvent::load_after(10),
    ]);
    assert!(
        estimator
            .core_wcet(wnoc::core::Coord::from_row_col(3, 3), &trace)
            .unwrap()
            > 0
    );

    // `wnoc::workloads` is `wnoc_workloads` (placements target the paper's
    // 8×8 platform).
    let mesh8 = wnoc::core::Mesh::square(8).unwrap();
    let placements: Vec<wnoc::workloads::placement::Placement> =
        wnoc_workloads::placement::Placement::paper_set(&mesh8, hotspot).unwrap();
    assert!(!placements.is_empty());

    // `wnoc::conformance` is `wnoc_conformance`: a one-scenario campaign
    // runs through the facade and passes.
    let campaign: wnoc::conformance::Campaign = wnoc_conformance::Campaign::new(7, 1);
    let report: wnoc::conformance::ConformanceReport = campaign.run(1).unwrap();
    assert!(report.passed());
    assert_eq!(report.scenario_count(), 1);

    // The facade reports its version for experiment logs.
    assert!(!wnoc::VERSION.is_empty());
}

/// The quick-start from `wnoc`'s crate docs, run as a plain test: regenerate
/// the analytical Table II and check the paper's headline 8×8 claim.
#[test]
fn quick_start_table2_runs_end_to_end() {
    let table = WcttTable::table2(RouterTiming::CANONICAL).unwrap();
    let rows = table.rows();
    // Table II covers square meshes from 2×2 to 8×8.
    assert_eq!(rows.len(), 7);
    let eight_by_eight = rows.last().unwrap();
    assert_eq!(eight_by_eight.dims.node_count(), 64);
    // The regular design's worst case is more than three orders of magnitude
    // above WaW+WaP on the 8×8 mesh (653310 vs 330 canonical cycles).
    assert!(eight_by_eight.regular.max > 1_000 * eight_by_eight.waw_wap.max);
    // And the rendered table is the artifact expt-table2 prints.
    let rendered = table.render();
    assert!(rendered.contains("8x8"));
}
