//! Cross-crate integration tests: the qualitative shapes of the paper's
//! headline results must hold end to end (analysis + workloads + WCET
//! pipeline), independently of the per-crate unit tests.

use wnoc::core::analysis::WcttTable;
use wnoc::core::{Coord, NocConfig, RouterTiming};
use wnoc::manycore::wcet::{parallel_wcet, WcetEstimator};
use wnoc::workloads::avionics::{default_scenario, TrafficModel};
use wnoc::workloads::eembc::EembcBenchmark;
use wnoc::workloads::placement::Placement;

/// Table II shape: the regular design's worst-case bound explodes with the
/// mesh size while WaW+WaP grows linearly in the flow count.
#[test]
fn table2_shape_holds_end_to_end() {
    let table = WcttTable::table2(RouterTiming::CANONICAL).unwrap();
    let rows = table.rows();
    assert_eq!(rows.len(), 7);
    // Monotone growth for both designs.
    for pair in rows.windows(2) {
        assert!(pair[1].regular.max > pair[0].regular.max);
        assert!(pair[1].waw_wap.max > pair[0].waw_wap.max);
    }
    // The gap widens dramatically: at 2x2 the designs are comparable, at 8x8
    // they differ by more than three orders of magnitude.
    let first_gap = rows[0].regular.max as f64 / rows[0].waw_wap.max as f64;
    let last_gap = rows[6].regular.max as f64 / rows[6].waw_wap.max as f64;
    assert!(first_gap < 10.0);
    assert!(last_gap > 1_000.0);
}

/// Table III shape on a reduced 4x4 platform: only nodes adjacent to the memory
/// controller can be (mildly) penalised by WaW+WaP; distant nodes improve by
/// orders of magnitude.
#[test]
fn eembc_wcet_ratios_favour_waw_wap_far_from_memory() {
    let memory = Coord::from_row_col(0, 0);
    let regular = WcetEstimator::new(8, memory, 30, NocConfig::regular(4)).unwrap();
    let proposed = WcetEstimator::new(8, memory, 30, NocConfig::waw_wap()).unwrap();
    let mut worse = 0;
    let mut better = 0;
    let trace = EembcBenchmark::Aifftr.trace(3);
    for core in regular.mesh().routers() {
        if core == memory {
            continue;
        }
        let ratio = proposed.core_wcet(core, &trace).unwrap() as f64
            / regular.core_wcet(core, &trace).unwrap() as f64;
        if ratio > 1.0 {
            worse += 1;
        } else {
            better += 1;
        }
        // No core is penalised by more than a small factor.
        assert!(ratio < 5.0, "core {core} ratio {ratio}");
    }
    assert!(better > 3 * worse, "better {better} vs worse {worse}");
}

/// Figure 2 shape: the 16-core avionics application always benefits from
/// WaW+WaP and its WCET becomes almost insensitive to placement.
#[test]
fn avionics_wcet_improves_and_stabilises() {
    let planner = default_scenario(99).unwrap();
    let mesh = wnoc::core::Mesh::square(8).unwrap();
    let memory = Coord::from_row_col(0, 0);
    let placements = Placement::paper_set(&mesh, memory).unwrap();
    let regular = WcetEstimator::new(8, memory, 30, NocConfig::regular(1)).unwrap();
    let proposed = WcetEstimator::new(8, memory, 30, NocConfig::waw_wap()).unwrap();

    let mut regular_wcets = Vec::new();
    let mut proposed_wcets = Vec::new();
    for placement in &placements {
        let phases = planner
            .parallel_phases(placement, TrafficModel::default())
            .unwrap();
        regular_wcets.push(parallel_wcet(&regular, &phases).unwrap());
        proposed_wcets.push(parallel_wcet(&proposed, &phases).unwrap());
    }
    for (reg, prop) in regular_wcets.iter().zip(&proposed_wcets) {
        assert!(prop < reg, "WaW+WaP must win for every placement");
    }
    let spread = |values: &[u64]| {
        *values.iter().max().unwrap() as f64 / *values.iter().min().unwrap() as f64
    };
    assert!(
        spread(&regular_wcets) > 1.5 * spread(&proposed_wcets),
        "placement sensitivity must shrink: regular {} vs proposed {}",
        spread(&regular_wcets),
        spread(&proposed_wcets)
    );
}

/// The EEMBC suite average (the figure quoted in the paper's introduction):
/// averaged over all benchmarks and all cores, the WCET reduction of WaW+WaP
/// is enormous.
#[test]
fn suite_wide_average_wcet_reduction_is_large() {
    let memory = Coord::from_row_col(0, 0);
    let regular = WcetEstimator::new(8, memory, 30, NocConfig::regular(4)).unwrap();
    let proposed = WcetEstimator::new(8, memory, 30, NocConfig::waw_wap()).unwrap();
    let trace = EembcBenchmark::Cacheb.trace(5);
    let mut reduction_sum = 0.0;
    let mut count = 0usize;
    for core in regular.mesh().routers() {
        if core == memory {
            continue;
        }
        let reg = regular.core_wcet(core, &trace).unwrap() as f64;
        let prop = proposed.core_wcet(core, &trace).unwrap() as f64;
        reduction_sum += reg / prop;
        count += 1;
    }
    let mean_reduction = reduction_sum / count as f64;
    // The paper reports an average reduction of about 230x across all cores for
    // the baseline NoC; our substrate differs, but the mean reduction must be
    // at least an order of magnitude.
    assert!(mean_reduction > 10.0, "mean reduction {mean_reduction}");
}
