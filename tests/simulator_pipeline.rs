//! Cross-crate integration tests of the cycle-accurate pipeline: workloads
//! running on the manycore platform through the simulated NoC, and consistency
//! between the simulator and the analytical bounds.

use wnoc::core::analysis::WeightedWcttModel;
use wnoc::core::flow::FlowSet;
use wnoc::core::routing::{RoutingAlgorithm, XyRouting};
use wnoc::core::weights::WeightTable;
use wnoc::core::{Coord, Mesh, NocConfig, RouterTiming};
use wnoc::manycore::system::{ManycoreSystem, PlatformConfig};
use wnoc::manycore::trace::Trace;
use wnoc::sim::Simulation;
use wnoc::workloads::eembc::EembcBenchmark;

/// EEMBC-like traces run to completion on the simulated 4x4 platform under both
/// designs, and the WaW+WaP average-performance penalty stays small.
#[test]
fn eembc_workload_completes_on_both_designs() {
    let truncate = |benchmark: EembcBenchmark| -> Trace {
        benchmark
            .trace(11)
            .events()
            .iter()
            .copied()
            .take(30)
            .collect()
    };
    let mut workloads = Vec::new();
    let benchmarks = EembcBenchmark::ALL;
    let mut index = 0;
    for row in 0..4u16 {
        for col in 0..4u16 {
            if row == 0 && col == 0 {
                continue;
            }
            workloads.push((
                Coord::from_row_col(row, col),
                truncate(benchmarks[index % 16]),
            ));
            index += 1;
        }
    }
    let mut times = Vec::new();
    for noc in [NocConfig::regular(4), NocConfig::waw_wap()] {
        let platform = PlatformConfig::small_4x4(noc);
        let mut system = ManycoreSystem::new(platform, workloads.clone()).unwrap();
        assert!(
            system.run_until_finished(5_000_000),
            "{} did not finish",
            noc.label()
        );
        // Every core issued every access of its trace.
        for ((coord, trace), (_, stats)) in workloads.iter().zip(system.core_stats()) {
            assert_eq!(
                stats.loads + stats.evictions,
                trace.total_accesses(),
                "core {coord} dropped transactions"
            );
        }
        times.push(system.execution_time());
    }
    let degradation = times[1] as f64 / times[0] as f64;
    assert!(
        degradation < 1.15,
        "average performance degradation too large: {degradation}"
    );
}

/// The analytical WaW+WaP bound dominates the latency of a *probe* packet
/// injected into a network whose every other flow is saturated — exactly the
/// situation the WCTT is defined for (a ready packet facing worst-case
/// contention from its contenders, without queueing behind earlier packets of
/// its own flow).  The analytical model only charges one weighted arbitration
/// round per hop; the simulator additionally exhibits FIFO occupancy and
/// backpressure effects, so a 2x engineering margin is allowed (see
/// EXPERIMENTS.md for the discussion).
#[test]
fn weighted_bound_dominates_observed_latency() {
    let mesh = Mesh::square(4).unwrap();
    let hotspot = Coord::from_row_col(0, 0);
    let flows = FlowSet::all_to_one(&mesh, hotspot).unwrap();
    let model = WeightedWcttModel::new(
        WeightTable::from_flow_set(&flows),
        RouterTiming::CANONICAL,
        1,
    );
    let hotspot_node = mesh.node_id(hotspot).unwrap();

    for probe in [Coord::from_row_col(3, 3), Coord::from_row_col(0, 1)] {
        let probe_node = mesh.node_id(probe).unwrap();
        let mut sim = Simulation::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
        let background: Vec<_> = flows
            .flows()
            .iter()
            .filter(|f| f.src != probe_node)
            .copied()
            .collect();
        // Warm the network up with saturated background traffic.
        for _ in 0..3_000 {
            for flow in &background {
                if sim.network().nic_backlog(flow.src) < 8 {
                    sim.network_mut().offer(flow.src, flow.dst, 1).unwrap();
                }
            }
            sim.network_mut().step();
        }
        // Inject the probe and keep the background saturated until it arrives.
        sim.network_mut()
            .offer(probe_node, hotspot_node, 1)
            .unwrap();
        let probe_flow = sim.network_mut().flow_id(probe_node, hotspot_node);
        for _ in 0..10_000 {
            for flow in &background {
                if sim.network().nic_backlog(flow.src) < 8 {
                    sim.network_mut().offer(flow.src, flow.dst, 1).unwrap();
                }
            }
            sim.network_mut().step();
            if sim.stats().flow_message_latency(probe_flow).is_some() {
                break;
            }
        }
        let observed = sim
            .stats()
            .flow_traversal_latency(probe_flow)
            .expect("probe message delivered")
            .max;
        let route = XyRouting.route(&mesh, probe, hotspot).unwrap();
        let bound = model.packet_wctt(&route);
        assert!(
            observed <= 2 * bound,
            "probe from {probe}: observed {observed} exceeds 2x the analytical bound {bound}"
        );
        // The bound is not vacuous either: it stays within a small factor of
        // the observation instead of being orders of magnitude above it.
        assert!(
            bound <= 4 * observed,
            "bound {bound} is far looser than observed {observed}"
        );
    }
}

/// The observed unfairness of the regular design matches Figure 1(b): under
/// saturation, flows near the hotspot are served much more often than distant
/// ones, and WaW+WaP removes most of that spread.
#[test]
fn waw_wap_equalises_observed_service() {
    let mesh = Mesh::square(4).unwrap();
    let hotspot = Coord::from_row_col(0, 0);
    let spread = |config: NocConfig| -> f64 {
        let report = Simulation::saturated_hotspot(mesh, config, hotspot, 1, 3_000, 6_000).unwrap();
        report.max() as f64 / report.min_of_max().max(1) as f64
    };
    let regular_spread = spread(NocConfig::regular(1));
    let proposed_spread = spread(NocConfig::waw_wap());
    assert!(
        regular_spread > proposed_spread,
        "regular spread {regular_spread} vs proposed {proposed_spread}"
    );
}

/// Determinism: the same seed and configuration produce bit-identical
/// simulation statistics (required for reproducible experiments).
#[test]
fn simulation_is_deterministic() {
    let run = || -> (u64, u64) {
        let mesh = Mesh::square(4).unwrap();
        let hotspot = Coord::from_row_col(0, 0);
        let report =
            Simulation::saturated_hotspot(mesh, NocConfig::waw_wap(), hotspot, 1, 1_000, 2_000)
                .unwrap();
        (report.max(), report.min_of_max())
    };
    assert_eq!(run(), run());
}

/// Single-message zero-load latency through the simulator matches the
/// analytical zero-load formula for the same path length.
#[test]
fn zero_load_latency_consistency() {
    let mesh = Mesh::square(8).unwrap();
    let memory = Coord::from_row_col(0, 0);
    let flows = FlowSet::all_to_one(&mesh, memory).unwrap();
    let mut sim = Simulation::new(mesh, NocConfig::regular(4), &flows).unwrap();
    let src = mesh.node_id(Coord::from_row_col(7, 7)).unwrap();
    let dst = mesh.node_id(memory).unwrap();
    sim.network_mut().offer(src, dst, 1).unwrap();
    assert!(sim.network_mut().run_until_drained(1_000));
    let observed = sim.stats().overall_traversal_latency().max;
    let route = XyRouting
        .route(&mesh, Coord::from_row_col(7, 7), memory)
        .unwrap();
    let zero_load = RouterTiming::CANONICAL.zero_load_head_latency(route.hop_count());
    // The simulator's single-cycle router is at least as fast as the analytical
    // zero-load model and never slower than twice that figure in an empty mesh.
    assert!(observed as f64 >= route.hop_count() as f64);
    assert!(
        (observed) <= 2 * zero_load,
        "observed {observed} vs zero-load {zero_load}"
    );
}
