//! Quickstart: build the two NoC designs, send one cache-line message through
//! the cycle-accurate simulator, and compare the analytical WCTT bounds of the
//! far-corner flow.
//!
//! Run with `cargo run --example quickstart`.

use wnoc::core::analysis::{RegularWcttModel, WeightedWcttModel};
use wnoc::core::flow::FlowSet;
use wnoc::core::routing::{RoutingAlgorithm, XyRouting};
use wnoc::core::weights::WeightTable;
use wnoc::core::{Coord, Mesh, NocConfig, RouterTiming};
use wnoc::sim::network::Network;

fn main() -> Result<(), wnoc::core::Error> {
    // The paper's platform: an 8x8 mesh whose memory controller sits at R(0,0).
    let mesh = Mesh::square(8)?;
    let memory = Coord::from_row_col(0, 0);
    let flows = FlowSet::all_to_one(&mesh, memory)?;

    // --- Cycle-accurate view: send one 4-flit cache line from the far corner.
    for config in [NocConfig::regular(4), NocConfig::waw_wap()] {
        let mut noc = Network::new(mesh, config, &flows)?;
        let src = mesh.node_id(Coord::from_row_col(7, 7))?;
        let dst = mesh.node_id(memory)?;
        noc.offer(src, dst, 4)?;
        noc.run_until_drained(10_000);
        let stats = noc.stats();
        println!(
            "{:<14} delivered {} flits in {} cycles (zero-load path)",
            config.label(),
            stats.flits_delivered,
            stats.overall_traversal_latency().max
        );
    }

    // --- Analytical view: the worst-case traversal bound of the same flow.
    let route = XyRouting.route(&mesh, Coord::from_row_col(7, 7), memory)?;
    let mut regular = RegularWcttModel::new(&flows, RouterTiming::CANONICAL, 4);
    let weighted = WeightedWcttModel::new(
        WeightTable::from_flow_set(&flows),
        RouterTiming::CANONICAL,
        1,
    );
    let regular_bound = regular.route_wctt(&route, 1);
    let weighted_bound = weighted.packet_wctt(&route);
    println!();
    println!("worst-case traversal bound, far corner -> memory:");
    println!("  regular wNoC : {regular_bound:>12} cycles");
    println!("  WaW + WaP    : {weighted_bound:>12} cycles");
    println!(
        "  improvement  : {:>12.0}x",
        regular_bound as f64 / weighted_bound as f64
    );
    Ok(())
}
