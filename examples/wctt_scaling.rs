//! WCTT scaling study (the spirit of Table II): how the worst-case traversal
//! time bound scales with the mesh size under the regular design and under
//! WaW + WaP.
//!
//! Run with `cargo run --example wctt_scaling`.

use wnoc::core::analysis::{table::FlowScenario, WcttTable};
use wnoc::core::RouterTiming;

fn main() -> Result<(), wnoc::core::Error> {
    let sizes = [2u16, 3, 4, 5, 6, 7, 8, 10, 12];
    let table = WcttTable::for_sizes(
        &sizes,
        FlowScenario::paper_default(),
        RouterTiming::CANONICAL,
        1,
    )?;

    println!("WCTT scaling with mesh size (1-flit packets, all nodes -> R(0,0))\n");
    println!("size    | regular max       | waw+wap max | gain");
    for row in table.rows() {
        let gain = row.regular.max as f64 / row.waw_wap.max.max(1) as f64;
        println!(
            "{:<7} | {:>17} | {:>11} | {:>9.1}x",
            row.dims.to_string(),
            row.regular.max,
            row.waw_wap.max,
            gain
        );
    }
    println!();
    println!(
        "The regular design's bound grows by roughly an order of magnitude per size step;\n\
         the WaW+WaP bound grows linearly with the number of contending flows."
    );
    Ok(())
}
