//! Throughput probe of the conformance harness' hottest scenario shape: the
//! 8×8 all-to-one closed-loop probing campaign (one outstanding message per
//! source — the idle-heavy workload the active-set kernel accelerates).
//!
//! Prints simulated cycles per second over a fixed batch of runs, for both
//! designs.  Used to compare kernel generations; not a paper artifact.

use std::time::Instant;

use wnoc::core::flow::FlowSet;
use wnoc::core::{Coord, Mesh, NocConfig};
use wnoc::sim::Simulation;

fn main() -> Result<(), wnoc::core::Error> {
    let mesh = Mesh::square(8)?;
    let hotspot = Coord::from_row_col(0, 0);
    let flows = FlowSet::all_to_one(&mesh, hotspot)?;
    // The cycle budget the conformance sampler assigns this platform.
    let cycles = 1_000 + 30 * flows.len() as u64;
    let repeats = 40;

    for (label, config, message_flits) in [
        ("waw_wap ", NocConfig::waw_wap(), 1u32),
        ("regular4", NocConfig::regular(4), 4u32),
    ] {
        let start = Instant::now();
        let mut delivered = 0u64;
        for _ in 0..repeats {
            let mut sim = Simulation::new(mesh, config, &flows)?;
            let report = sim.run_closed_loop(&flows, message_flits, cycles)?;
            delivered += report.overall().count;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let sim_cycles = repeats * cycles;
        println!(
            "{label}: {repeats} runs x {cycles} cycles in {elapsed:.3}s -> \
             {:.0} cycles/sec ({delivered} messages observed)",
            sim_cycles as f64 / elapsed
        );
    }
    Ok(())
}
