//! The 3DPP avionics application: plan a path through a 3D obstacle grid, then
//! estimate the 16-core application WCET under the four placements of
//! Figure 2(b) for both NoC designs.
//!
//! Run with `cargo run --release --example avionics_placement`.

use wnoc::core::{Coord, Mesh, NocConfig};
use wnoc::manycore::wcet::{parallel_wcet, WcetEstimator};
use wnoc::workloads::avionics::{default_scenario, TrafficModel};
use wnoc::workloads::placement::Placement;

fn main() -> Result<(), wnoc::core::Error> {
    let planner = default_scenario(2016)?;
    let outcome = planner.plan();
    let path = outcome.path.as_ref().expect("scenario is solvable");
    println!(
        "3D path planning: grid {:?}, {} obstacles, path of {} cells, {} cells expanded over {} wavefronts",
        planner.grid().dims(),
        planner.grid().obstacle_count(),
        path.len(),
        outcome.expanded_cells,
        outcome.wavefronts.len()
    );

    let mesh = Mesh::square(8)?;
    let memory = Coord::from_row_col(0, 0);
    let placements = Placement::paper_set(&mesh, memory)?;
    let regular = WcetEstimator::new(8, memory, 30, NocConfig::regular(1))?;
    let proposed = WcetEstimator::new(8, memory, 30, NocConfig::waw_wap())?;

    println!("\nWCET estimate of the 16-thread application (L = 1):\n");
    println!("placement | mean dist to memory | regular wNoC | WaW+WaP  | gain");
    for placement in &placements {
        let phases = planner.parallel_phases(placement, TrafficModel::default())?;
        let reg = parallel_wcet(&regular, &phases)?;
        let prop = parallel_wcet(&proposed, &phases)?;
        println!(
            "{:<9} | {:>19.1} | {:>12} | {:>8} | {:>5.1}x",
            placement.name(),
            placement.mean_distance_to(memory),
            reg,
            prop,
            reg as f64 / prop.max(1) as f64
        );
    }
    println!(
        "\nWaW+WaP keeps the WCET almost independent of where the application is placed;\n\
         the regular design degrades sharply as the threads move away from the memory controller."
    );
    Ok(())
}
