//! Saturation study on the cycle-accurate simulator: every node floods the
//! memory controller with single-flit packets and we observe how fairly each
//! design serves the flows (the unfairness of Figure 1(b) of the paper).
//!
//! Run with `cargo run --release --example saturation_study`.

use wnoc::core::{Coord, Mesh, NocConfig};
use wnoc::sim::Simulation;

fn main() -> Result<(), wnoc::core::Error> {
    let mesh = Mesh::square(4)?;
    let hotspot = Coord::from_row_col(0, 0);
    println!("Saturated all-to-R(0,0) hotspot on a 4x4 mesh, 1-flit packets\n");
    println!("design         | worst flow max | best flow max | spread");
    for config in [NocConfig::regular(1), NocConfig::waw_wap()] {
        let report = Simulation::saturated_hotspot(mesh, config, hotspot, 1, 5_000, 10_000)?;
        let spread = report.max() as f64 / report.min_of_max().max(1) as f64;
        println!(
            "{:<14} | {:>14} | {:>13} | {:>5.1}x",
            config.label(),
            report.max(),
            report.min_of_max(),
            spread
        );
    }
    println!(
        "\nUnder plain round robin the flows close to the memory controller are served far more\n\
         often than distant ones (large spread); WaW's weighted arbitration equalises them."
    );
    Ok(())
}
