//! Offline shim for `rand` 0.8.
//!
//! Implements the exact subset the `wnoc` workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits with `gen_bool` and `gen_range` over
//! integer `Range` / `RangeInclusive` bounds.  Every generator is fully
//! deterministic from its seed, which is all the simulator's reproducibility
//! tests require.  See `shims/README.md` for how to swap the real crate back.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Produce the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range that can be sampled uniformly, mirroring `rand::distributions`'
/// `SampleRange` as used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// Whether the range contains no values (sampling such a range panics).
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let offset = (rng.next_u64() as u128) % span;
                (start as u128 + offset) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 significant bits, same resolution as a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Minimal stand-in for `rand::rngs`.

    /// SplitMix64: small, fast, and statistically solid for test workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Seed the generator.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl super::RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for SplitMix64 {
        fn seed_from_u64(seed: u64) -> Self {
            Self::new(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SplitMix64;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
