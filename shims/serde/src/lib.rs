//! Offline shim for `serde`.
//!
//! Provides exactly the surface the `wnoc` workspace uses — the
//! `Serialize` / `Deserialize` derive macros — as no-ops, because the build
//! environment cannot reach a crates registry.  See `shims/README.md` for the
//! swap-back instructions.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
