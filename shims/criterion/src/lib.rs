//! Offline shim for `criterion`.
//!
//! Provides the structural API the workspace's five bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], [`BatchSize`],
//! [`black_box`] and the `criterion_group!` / `criterion_main!` macros — with
//! a simple wall-clock timer instead of criterion's statistical engine.
//!
//! Behavior:
//!
//! * under `cargo bench`, each benchmark runs for a short measurement window
//!   and prints the mean iteration time;
//! * under `cargo test` (cargo passes `--test` to `harness = false` bench
//!   targets), each benchmark routine runs exactly once as a smoke test.
//!
//! See `shims/README.md` for how to swap the crates.io release back in.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identify a benchmark by its parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// (total duration, iterations) of the measurement window.
    measured: Option<(Duration, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure for a short window.
    Measure,
    /// `cargo test`: run the routine once.
    Smoke,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.measured = Some((Duration::ZERO, 1));
            }
            Mode::Measure => {
                // Warm-up round, then measure for ~100ms or 3 iterations,
                // whichever takes longer.
                black_box(routine());
                let window = Duration::from_millis(100);
                let start = Instant::now();
                let mut iterations = 0u64;
                while iterations < 3 || start.elapsed() < window {
                    black_box(routine());
                    iterations += 1;
                }
                self.measured = Some((start.elapsed(), iterations));
            }
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
                self.measured = Some((Duration::ZERO, 1));
            }
            Mode::Measure => {
                black_box(routine(setup()));
                let window = Duration::from_millis(100);
                let mut total = Duration::ZERO;
                let mut iterations = 0u64;
                while iterations < 3 || total < window {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                    iterations += 1;
                }
                self.measured = Some((total, iterations));
            }
        }
    }
}

fn report(id: &str, bencher: &Bencher) {
    match (bencher.mode, bencher.measured) {
        (Mode::Smoke, _) => println!("bench {id}: ok (smoke)"),
        (Mode::Measure, Some((total, iterations))) if iterations > 0 => {
            let per_iter = total.as_nanos() / u128::from(iterations);
            println!("bench {id}: {per_iter} ns/iter ({iterations} iterations)");
        }
        (Mode::Measure, _) => println!("bench {id}: no measurement (b.iter never called)"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` under
        // `cargo test`; treat that as "run once, don't measure".
        let smoke = std::env::args().any(|arg| arg == "--test");
        Self {
            mode: if smoke { Mode::Smoke } else { Mode::Measure },
        }
    }
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: self.mode,
            measured: None,
        };
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Finalize reporting (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's window is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's window is fixed.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Record the declared throughput (reported nowhere in the shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running every group, for `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
