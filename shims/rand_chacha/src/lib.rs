//! Offline shim for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`] with the same name and trait surface the workspace
//! relies on (`SeedableRng::seed_from_u64` + `RngCore`).  The stream is a real
//! ChaCha with 8 rounds, keyed the way `rand_chacha` keys `seed_from_u64`
//! seeds — deterministic and statistically strong, which is what the traffic
//! generators and reproducibility tests need.  The exact output stream is NOT
//! guaranteed to be bit-identical to the crates.io release; nothing in this
//! workspace depends on specific draws.  See `shims/README.md`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Buffered output of the last block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, exactly
        // like rand's default `seed_from_u64` key-stretching approach.
        let mut stretch = rand::rngs::SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = stretch.next_u64();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let low = self.block[self.cursor] as u64;
        let high = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let draws_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut heads = 0u32;
        for _ in 0..1000 {
            if rng.gen_bool(0.5) {
                heads += 1;
            }
            let x = rng.gen_range(0usize..10);
            assert!(x < 10);
        }
        // A fair coin over 1000 flips lands well inside [350, 650].
        assert!((350..=650).contains(&heads), "heads={heads}");
    }
}
