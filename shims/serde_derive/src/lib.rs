//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the tiny API subset it actually uses (see `shims/README.md`).  The
//! source tree only ever *derives* `Serialize` / `Deserialize` — nothing calls
//! a serializer — so the derives expand to nothing.  Swapping the `serde`
//! entry in `[workspace.dependencies]` back to the crates.io release restores
//! real serialization without touching any other file.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.  The `serde` helper
/// attribute is registered (and ignored) so field annotations like
/// `#[serde(default, skip_serializing_if = "...")]` compile; the real derive
/// honours them after a swap back.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize` (helper attribute
/// registered and ignored, as above).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
