//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: `sample`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Keep only values for which `pred` holds; `reason` labels the filter in
    /// the panic raised if the filter rejects essentially everything.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.sample(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> core::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Build a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Strategy for "any value of `T`" (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Values that [`any`] can produce directly from the RNG stream.
pub trait ArbitraryValue: Sized {
    /// Draw a value covering the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Create a strategy yielding arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let offset = (rng.next_u64() as u128) % span;
                (start as u128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
