//! Offline shim for `proptest`.
//!
//! Implements the subset of proptest's API that the `wnoc` property suites
//! use: the [`Strategy`] trait with `prop_map` / `prop_filter`, integer-range
//! and tuple strategies, `Just`, `any::<T>()`, `prop_oneof!`,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case panics with the sampled inputs unshrunk;
//! * sampling is driven by a fixed-seed deterministic RNG, so a failure
//!   reproduces on every run;
//! * `prop_assert*` panics immediately instead of returning `Err`.
//!
//! See `shims/README.md` for how to swap the crates.io release back in.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `size` (half-open, like `1..25`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, Rejected, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Mirrors the `proptest::prelude::prop` module path.
        pub use crate::collection;
    }
}

/// Run one property: sample inputs, call `case`, retry on `prop_assume!`
/// rejections.  Called by the expansion of [`proptest!`].
pub fn run_property<F>(config: &test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::Rejected>,
{
    // Derive the stream from the property name so every property explores a
    // different portion of the input space but reruns identically.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = test_runner::TestRng::new(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::Rejected) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
        }
    }
}

/// Defines property tests over sampled inputs, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`] — one generated test fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(&config, stringify!($name), |__wnoc_rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __wnoc_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!(@cfg($config) $($rest)*);
    };
}

/// Choose uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Discard the current case (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
