//! Runner configuration and the deterministic RNG driving sampling.

/// Marker returned by `prop_assume!` when a case must be discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Subset of `proptest::test_runner::ProptestConfig` the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps offline CI snappy while
        // still exploring a meaningful slice of the space.
        Self { cases: 64 }
    }
}

/// Deterministic RNG used to sample strategies (SplitMix64 underneath).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::SplitMix64,
}

impl TestRng {
    /// Seed the sampling stream.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: rand::rngs::SplitMix64::new(seed),
        }
    }

    /// Next raw word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}
