#!/usr/bin/env bash
# Regenerate every golden snapshot in one command, after an *intentional*
# output or semantics change:
#
#   * the stdout snapshots of all expt-* binaries
#     (crates/bench/tests/golden/*.txt, UPDATE_GOLDEN=1)
#   * the kernel-equivalence digests
#     (crates/sim/tests/golden_kernel.txt, UPDATE_KERNEL_GOLDEN=1)
#
# Run from anywhere inside the repository:
#
#   ./scripts/regen-golden.sh
#
# Then eyeball `git diff` — every changed line must be explainable by the
# change you just made.  Never regenerate to silence a diff you do not
# understand: the snapshots are the oracle that pins the reproduced paper
# numbers and the simulator's cycle-level behaviour.

set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== building release binaries =="
cargo build --release

echo "== regenerating expt-* stdout snapshots (UPDATE_GOLDEN=1) =="
UPDATE_GOLDEN=1 cargo test --release -p wnoc-bench --test golden -- --include-ignored

echo "== regenerating kernel-equivalence digests (UPDATE_KERNEL_GOLDEN=1) =="
UPDATE_KERNEL_GOLDEN=1 cargo test --release -p wnoc-sim --test kernel_equivalence

echo "== verifying the regenerated snapshots pass =="
cargo test --release -p wnoc-bench --test golden -- --include-ignored
cargo test --release -p wnoc-sim --test kernel_equivalence

echo "== done; review 'git status' / 'git diff' before committing =="
git status --short crates/bench/tests/golden crates/sim/tests/golden_kernel.txt
