//! # wnoc — time-composable wormhole mesh NoC design (WaW + WaP)
//!
//! Facade crate of the reproduction of *"Improving Performance Guarantees in
//! Wormhole Mesh NoC Designs"* (Panic et al., DATE 2016).  It re-exports the
//! four layers of the stack under one roof so examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`core`] (`wnoc-core`) — mesh topology, XY routing, flows, the WaP
//!   packetization and WaW weighted-arbitration mechanisms, and the analytical
//!   WCTT/UBD models;
//! * [`sim`] (`wnoc-sim`) — the cycle-accurate wormhole mesh simulator;
//! * [`manycore`] (`wnoc-manycore`) — the 64-core platform model (cores,
//!   caches-as-traces, memory controller, WCET computation mode);
//! * [`workloads`] (`wnoc-workloads`) — EEMBC-like traces, the 3DPP parallel
//!   avionics application and the thread placements;
//! * [`conformance`] (`wnoc-conformance`) — the randomized campaign harness
//!   cross-validating the simulator against every analytic WCTT bound.
//!
//! # Quick start
//!
//! ```
//! use wnoc::core::analysis::WcttTable;
//! use wnoc::core::RouterTiming;
//!
//! // Regenerate the analytical Table II of the paper.
//! let table = WcttTable::table2(RouterTiming::CANONICAL)?;
//! let eight_by_eight = table.rows().last().unwrap();
//! assert!(eight_by_eight.regular.max > 1_000 * eight_by_eight.waw_wap.max);
//! # Ok::<(), wnoc::core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wnoc_conformance as conformance;
pub use wnoc_core as core;
pub use wnoc_manycore as manycore;
pub use wnoc_sim as sim;
pub use wnoc_workloads as workloads;

/// The crate version, for reporting in experiment logs.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
