//! The manycore platform in *operation mode*: cores execute their traces with
//! every memory transaction travelling through the cycle-accurate NoC to the
//! memory controller and back.
//!
//! This is the mode used to measure **average performance** (Section IV of the
//! paper: WaW + WaP degrades average performance by less than 1%).  Worst-case
//! (WCET) estimates are produced analytically by [`crate::wcet`] instead, which
//! corresponds to the paper's *WCET computation mode* where each request is
//! charged its upper bound delay.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Cycle, Error, Mesh, MessageId, NocConfig, NodeId, Result};
use wnoc_sim::network::{Delivered, Network};

use crate::cpu::{Core, CoreStats};
use crate::memory::MemoryController;
use crate::trace::Trace;
use crate::transaction::{Transaction, TransactionId};
use crate::wcet::WcetEstimator;

/// How the platform charges memory transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Operation mode: every transaction traverses the cycle-accurate NoC and
    /// the memory controller; used for average-performance measurements.
    #[default]
    Operation,
    /// WCET computation mode (the paper's reference [17]): every transaction is
    /// charged its analytical upper bound delay plus the memory service bound,
    /// regardless of the actual NoC state.  Execution time in this mode is the
    /// WCET estimate.
    WcetComputation,
}

/// Static description of the manycore platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Side of the square mesh (the paper uses 8, i.e. 64 nodes).
    pub mesh_side: u16,
    /// Location of the memory controller (the paper uses `R(0,0)`).
    pub memory: Coord,
    /// Memory service latency per request, in cycles.
    pub memory_service_cycles: u64,
    /// NoC design (regular or WaW + WaP, packet sizes, timing).
    pub noc: NocConfig,
}

impl PlatformConfig {
    /// The paper's 64-core platform with the given NoC design.
    pub fn paper_8x8(noc: NocConfig) -> Self {
        Self {
            mesh_side: 8,
            memory: Coord::from_row_col(0, 0),
            memory_service_cycles: 30,
            noc,
        }
    }

    /// A smaller 4×4 platform, convenient for tests.
    pub fn small_4x4(noc: NocConfig) -> Self {
        Self {
            mesh_side: 4,
            memory: Coord::from_row_col(0, 0),
            memory_service_cycles: 10,
            noc,
        }
    }
}

/// The full platform: cores + NoC + memory controller, simulated cycle by
/// cycle.
///
/// # Examples
///
/// ```
/// use wnoc_core::{Coord, NocConfig};
/// use wnoc_manycore::system::{ManycoreSystem, PlatformConfig};
/// use wnoc_manycore::trace::{Trace, TraceEvent};
///
/// let platform = PlatformConfig::small_4x4(NocConfig::waw_wap());
/// let trace = Trace::from_events(vec![TraceEvent::load_after(10); 4]);
/// let workloads = vec![(Coord::from_row_col(3, 3), trace)];
/// let mut system = ManycoreSystem::new(platform, workloads)?;
/// assert!(system.run_until_finished(100_000));
/// assert!(system.execution_time() > 40);
/// # Ok::<(), wnoc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ManycoreSystem {
    mesh: Mesh,
    config: PlatformConfig,
    mode: ExecutionMode,
    network: Network,
    cores: Vec<(NodeId, Core)>,
    memory: MemoryController,
    memory_node: NodeId,
    /// Request messages in flight: (core node, message id) -> transaction.
    pending_requests: HashMap<(NodeId, MessageId), Transaction>,
    /// Response messages in flight: message id (from the memory NIC) -> core.
    pending_responses: HashMap<MessageId, (NodeId, TransactionId)>,
    /// WCET computation mode only: per-core completion cycle of the
    /// outstanding (artificially delayed) transaction.
    ubd_completions: HashMap<NodeId, Cycle>,
    /// WCET computation mode only: the analytical bound provider.
    estimator: Option<WcetEstimator>,
    /// Reusable delivery drain buffer (the NoC is polled every cycle).
    arrived: Vec<Delivered>,
    next_transaction: u64,
    cycle: Cycle,
}

impl ManycoreSystem {
    /// Builds the platform and places one workload trace per `(coordinate,
    /// trace)` pair; nodes without a trace stay silent.
    ///
    /// # Errors
    ///
    /// Returns an error if a workload is placed outside the mesh, on the memory
    /// controller node, or twice on the same node.
    pub fn new(config: PlatformConfig, workloads: Vec<(Coord, Trace)>) -> Result<Self> {
        Self::with_mode(config, workloads, ExecutionMode::Operation)
    }

    /// Builds the platform in the given execution mode (see [`ExecutionMode`]).
    ///
    /// # Errors
    ///
    /// Same as [`ManycoreSystem::new`].
    pub fn with_mode(
        config: PlatformConfig,
        workloads: Vec<(Coord, Trace)>,
        mode: ExecutionMode,
    ) -> Result<Self> {
        let mesh = Mesh::square(config.mesh_side)?;
        let memory_node = mesh.node_id(config.memory)?;
        let flows = FlowSet::to_and_from_endpoints(&mesh, &[config.memory])?;
        let network = Network::new(mesh, config.noc, &flows)?;
        let mut cores = Vec::new();
        let mut used = std::collections::HashSet::new();
        for (coord, trace) in workloads {
            let node = mesh.node_id(coord)?;
            if node == memory_node {
                return Err(Error::InvalidConfig {
                    reason: format!("cannot place a workload on the memory node {coord}"),
                });
            }
            if !used.insert(node) {
                return Err(Error::InvalidConfig {
                    reason: format!("two workloads placed on node {coord}"),
                });
            }
            cores.push((node, Core::new(node, trace)));
        }
        let memory = MemoryController::new(memory_node, config.memory_service_cycles);
        let estimator = match mode {
            ExecutionMode::Operation => None,
            ExecutionMode::WcetComputation => Some(WcetEstimator::new(
                config.mesh_side,
                config.memory,
                config.memory_service_cycles,
                config.noc,
            )?),
        };
        Ok(Self {
            mesh,
            config,
            mode,
            network,
            cores,
            memory,
            memory_node,
            pending_requests: HashMap::new(),
            pending_responses: HashMap::new(),
            ubd_completions: HashMap::new(),
            estimator,
            arrived: Vec::new(),
            next_transaction: 0,
            cycle: 0,
        })
    }

    /// The execution mode this platform instance runs in.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Access to the underlying NoC (statistics, utilisation).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Per-core statistics, keyed by node.
    pub fn core_stats(&self) -> Vec<(NodeId, CoreStats)> {
        self.cores
            .iter()
            .map(|(node, core)| (*node, core.stats()))
            .collect()
    }

    /// Returns `true` once every core has finished its trace and all
    /// transactions have drained.
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(|(_, c)| c.is_finished())
            && self.pending_requests.is_empty()
            && self.pending_responses.is_empty()
            && self.ubd_completions.is_empty()
            && self.memory.is_idle()
    }

    /// Completion cycle of the core at `coord`, if it has finished.
    pub fn core_finish_time(&self, coord: Coord) -> Option<Cycle> {
        let node = self.mesh.node_id(coord).ok()?;
        self.cores
            .iter()
            .find(|(n, _)| *n == node)
            .and_then(|(_, c)| c.finished_at())
    }

    /// Execution time of the whole workload: the cycle at which the last core
    /// finished (or the current cycle if some core is still running).
    pub fn execution_time(&self) -> Cycle {
        self.cores
            .iter()
            .map(|(_, c)| c.finished_at().unwrap_or(self.cycle))
            .max()
            .unwrap_or(self.cycle)
    }

    /// Advances the platform by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;

        // 0. WCET computation mode: artificially delayed transactions whose
        //    upper bound has elapsed complete before the cores tick.
        if self.mode == ExecutionMode::WcetComputation {
            let done: Vec<NodeId> = self
                .ubd_completions
                .iter()
                .filter(|(_, &completion)| now >= completion)
                .map(|(&node, _)| node)
                .collect();
            for node in done {
                self.ubd_completions.remove(&node);
                if let Some((_, core)) = self.cores.iter_mut().find(|(n, _)| *n == node) {
                    core.complete_memory(now);
                }
            }
        }

        // 1. Cores execute; issued accesses become NoC request messages
        //    (operation mode) or artificially delayed transactions (WCET mode).
        for index in 0..self.cores.len() {
            let node = self.cores[index].0;
            let Some(access) = self.cores[index].1.tick(now) else {
                continue;
            };
            if self.mode == ExecutionMode::WcetComputation {
                let coord = self
                    .mesh
                    .coord_of(node)
                    .expect("core nodes are inside the mesh");
                let bound = self
                    .estimator
                    .as_ref()
                    .expect("estimator exists in WCET mode")
                    .transaction_bound(coord, access)
                    .expect("core is not the memory node");
                self.ubd_completions.insert(node, now + bound);
                continue;
            }
            let transaction = Transaction {
                id: TransactionId(self.next_transaction),
                core: node,
                memory: self.memory_node,
                kind: access,
                issued: now,
            };
            self.next_transaction += 1;
            let message = self
                .network
                .offer(node, self.memory_node, access.sizes().request_flits)
                .expect("core and memory are valid distinct nodes");
            self.pending_requests.insert((node, message), transaction);
        }

        if self.mode == ExecutionMode::WcetComputation {
            // The NoC and the memory controller are not exercised in this mode;
            // their worst-case contribution is already part of the bound.
            return;
        }

        // 2. The NoC moves flits.
        self.network.step();

        // 3. Delivered messages either reach the memory controller (requests)
        //    or wake up a waiting core (responses).
        // `self.arrived` cannot be borrowed while `self.memory`/`self.cores`
        // are mutated, so move the drained batch out through a scratch swap
        // (both vectors keep their capacity) and restore it afterwards.
        let mut arrived = std::mem::take(&mut self.arrived);
        self.network.drain_delivered_into(&mut arrived);
        for delivered in arrived.drain(..) {
            if delivered.dst == self.memory_node {
                if let Some(txn) = self
                    .pending_requests
                    .remove(&(delivered.src, delivered.message))
                {
                    self.memory.enqueue(txn);
                }
            } else if let Some((core_node, _txn)) =
                self.pending_responses.remove(&delivered.message)
            {
                debug_assert_eq!(core_node, delivered.dst);
                if let Some((_, core)) = self.cores.iter_mut().find(|(n, _)| *n == core_node) {
                    core.complete_memory(now);
                }
            }
        }
        self.arrived = arrived;

        // 4. The memory controller serves requests and sends responses back.
        if let Some(response) = self.memory.tick(now) {
            let message = self
                .network
                .offer(self.memory_node, response.core, response.response_flits)
                .expect("memory and core are valid distinct nodes");
            self.pending_responses
                .insert(message, (response.core, response.transaction));
        }
    }

    /// Runs until every core finished or `max_cycles` elapsed; returns `true`
    /// if the workload completed.
    pub fn run_until_finished(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_finished() {
                return true;
            }
            self.step();
        }
        self.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn trace(loads: usize, gap: u64) -> Trace {
        Trace::from_events(vec![TraceEvent::load_after(gap); loads])
    }

    #[test]
    fn single_core_completes_all_transactions() {
        let platform = PlatformConfig::small_4x4(NocConfig::regular(4));
        let workloads = vec![(Coord::from_row_col(3, 3), trace(5, 10))];
        let mut system = ManycoreSystem::new(platform, workloads).unwrap();
        assert!(system.run_until_finished(100_000));
        let stats = system.core_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.loads, 5);
        // Execution takes compute + 5 round trips through NoC and memory.
        let time = system.execution_time();
        assert!(time > 5 * (10 + 10), "execution time {time}");
        assert_eq!(system.network().stats().messages_delivered, 10);
    }

    #[test]
    fn waw_wap_platform_also_completes() {
        let platform = PlatformConfig::small_4x4(NocConfig::waw_wap());
        let workloads = vec![
            (Coord::from_row_col(3, 3), trace(3, 5)),
            (Coord::from_row_col(1, 2), trace(3, 5)),
        ];
        let mut system = ManycoreSystem::new(platform, workloads).unwrap();
        assert!(system.run_until_finished(100_000));
        for (_, stats) in system.core_stats() {
            assert_eq!(stats.loads, 3);
        }
    }

    #[test]
    fn eviction_traffic_is_supported() {
        let platform = PlatformConfig::small_4x4(NocConfig::regular(4));
        let t = Trace::from_events(vec![
            TraceEvent::load_after(5),
            TraceEvent::eviction_after(5),
        ]);
        let workloads = vec![(Coord::from_row_col(2, 2), t)];
        let mut system = ManycoreSystem::new(platform, workloads).unwrap();
        assert!(system.run_until_finished(100_000));
        let (_, stats) = system.core_stats()[0];
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn invalid_placements_rejected() {
        let platform = PlatformConfig::small_4x4(NocConfig::regular(4));
        // On the memory node.
        assert!(
            ManycoreSystem::new(platform, vec![(Coord::from_row_col(0, 0), trace(1, 1))]).is_err()
        );
        // Outside the mesh.
        assert!(
            ManycoreSystem::new(platform, vec![(Coord::from_row_col(9, 9), trace(1, 1))]).is_err()
        );
        // Duplicate placement.
        assert!(ManycoreSystem::new(
            platform,
            vec![
                (Coord::from_row_col(1, 1), trace(1, 1)),
                (Coord::from_row_col(1, 1), trace(1, 1))
            ]
        )
        .is_err());
    }

    #[test]
    fn distant_cores_take_longer_under_contention() {
        // With every core hammering the single memory controller, a far corner
        // core finishes no earlier than an adjacent one (same workload).
        let platform = PlatformConfig::small_4x4(NocConfig::regular(4));
        let mut workloads = Vec::new();
        for row in 0..4u16 {
            for col in 0..4u16 {
                if row == 0 && col == 0 {
                    continue;
                }
                workloads.push((Coord::from_row_col(row, col), trace(10, 5)));
            }
        }
        let mut system = ManycoreSystem::new(platform, workloads).unwrap();
        assert!(system.run_until_finished(1_000_000));
        let near = system.core_finish_time(Coord::from_row_col(0, 1)).unwrap();
        let far = system.core_finish_time(Coord::from_row_col(3, 3)).unwrap();
        assert!(
            far + 4 >= near,
            "far {far} should not finish much before near {near}"
        );
    }

    #[test]
    fn wcet_mode_matches_the_closed_form_estimator() {
        // Running the platform in WCET computation mode must reproduce the
        // closed-form estimate (up to one cycle of bookkeeping per access).
        let platform = PlatformConfig::small_4x4(NocConfig::waw_wap());
        let workload = Trace::from_events(vec![
            TraceEvent::load_after(25),
            TraceEvent::eviction_after(10),
            TraceEvent::load_after(40),
        ]);
        let core = Coord::from_row_col(3, 2);
        let mut system = ManycoreSystem::with_mode(
            platform,
            vec![(core, workload.clone())],
            ExecutionMode::WcetComputation,
        )
        .unwrap();
        assert_eq!(system.mode(), ExecutionMode::WcetComputation);
        assert!(system.run_until_finished(1_000_000));
        let stepped = system.execution_time();
        let estimator = WcetEstimator::new(
            platform.mesh_side,
            platform.memory,
            platform.memory_service_cycles,
            platform.noc,
        )
        .unwrap();
        let closed_form = estimator.core_wcet(core, &workload).unwrap();
        let tolerance = workload.total_accesses() + 1;
        assert!(
            stepped.abs_diff(closed_form) <= tolerance,
            "stepped {stepped} vs closed form {closed_form}"
        );
    }

    #[test]
    fn wcet_mode_dominates_operation_mode() {
        // The artificially delayed (worst-case) run can never be faster than
        // the actual run of the same workload in isolation.
        let platform = PlatformConfig::small_4x4(NocConfig::waw_wap());
        let workload = vec![(Coord::from_row_col(2, 3), trace(6, 20))];
        let mut operation = ManycoreSystem::new(platform, workload.clone()).unwrap();
        assert!(operation.run_until_finished(1_000_000));
        let mut wcet =
            ManycoreSystem::with_mode(platform, workload, ExecutionMode::WcetComputation).unwrap();
        assert!(wcet.run_until_finished(1_000_000));
        assert!(
            wcet.execution_time() >= operation.execution_time(),
            "WCET mode {} below operation mode {}",
            wcet.execution_time(),
            operation.execution_time()
        );
    }

    #[test]
    fn average_performance_of_waw_wap_is_close_to_regular() {
        // The headline average-performance claim: for realistic (non-saturated)
        // workloads, WaW+WaP costs almost nothing in average execution time.
        let mut workloads = Vec::new();
        for row in 0..4u16 {
            for col in 0..4u16 {
                if row == 0 && col == 0 {
                    continue;
                }
                workloads.push((Coord::from_row_col(row, col), trace(20, 50)));
            }
        }
        let run = |noc: NocConfig| -> u64 {
            let platform = PlatformConfig::small_4x4(noc);
            let mut system = ManycoreSystem::new(platform, workloads.clone()).unwrap();
            assert!(system.run_until_finished(10_000_000));
            system.execution_time()
        };
        let regular = run(NocConfig::regular(4));
        let proposed = run(NocConfig::waw_wap());
        let degradation = proposed as f64 / regular as f64;
        assert!(
            degradation < 1.25,
            "WaW+WaP degradation {degradation} vs regular ({proposed} vs {regular})"
        );
    }
}
