//! # wnoc-manycore
//!
//! The 64-core manycore substrate of the paper's evaluation: in-order cores
//! executing memory-access traces, a memory controller at `R(0,0)`, and the
//! cycle-accurate NoC of `wnoc-sim` in between.
//!
//! Two execution views are provided, matching the paper's methodology:
//!
//! * **Operation mode** ([`system::ManycoreSystem`]): every memory transaction
//!   actually traverses the simulated NoC; used to measure *average*
//!   performance (the paper reports < 1% degradation for WaW + WaP).
//! * **WCET computation mode** ([`wcet::WcetEstimator`]): every transaction is
//!   charged its analytical upper bound delay (UBD); used to derive the WCET
//!   estimates of Table III and Figure 2.
//!
//! # Example
//!
//! ```
//! use wnoc_core::{Coord, NocConfig};
//! use wnoc_manycore::trace::{Trace, TraceEvent};
//! use wnoc_manycore::wcet::WcetEstimator;
//!
//! let estimator = WcetEstimator::new(8, Coord::from_row_col(0, 0), 30, NocConfig::waw_wap())?;
//! let trace = Trace::from_events(vec![TraceEvent::load_after(100); 50]);
//! let wcet = estimator.core_wcet(Coord::from_row_col(7, 7), &trace)?;
//! assert!(wcet > trace.total_compute_cycles());
//! # Ok::<(), wnoc_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod memory;
pub mod system;
pub mod trace;
pub mod transaction;
pub mod wcet;

pub use cpu::{Core, CoreState, CoreStats};
pub use memory::MemoryController;
pub use system::{ExecutionMode, ManycoreSystem, PlatformConfig};
pub use trace::{Trace, TraceEvent};
pub use transaction::{AccessKind, Transaction, TransactionId};
pub use wcet::{parallel_wcet, ParallelPhase, WcetEstimator};
