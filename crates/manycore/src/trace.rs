//! Memory-access traces: the workload representation executed by the core
//! model.
//!
//! A trace is a sequence of [`TraceEvent`]s; each event models a burst of
//! computation (`compute_cycles` without any NoC traffic) optionally followed
//! by one memory access.  This is the level of detail the WCET experiments of
//! the paper require: what matters is how many NoC transactions a benchmark
//! issues and how much computation separates them.

use serde::{Deserialize, Serialize};

use crate::transaction::AccessKind;

/// One step of a core's execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycles of pure computation before the access.
    pub compute_cycles: u64,
    /// The memory access performed after the computation, if any.
    pub access: Option<AccessKind>,
}

impl TraceEvent {
    /// A compute-only event.
    pub fn compute(cycles: u64) -> Self {
        Self {
            compute_cycles: cycles,
            access: None,
        }
    }

    /// A computation burst followed by a load.
    pub fn load_after(cycles: u64) -> Self {
        Self {
            compute_cycles: cycles,
            access: Some(AccessKind::Load),
        }
    }

    /// A computation burst followed by an eviction.
    pub fn eviction_after(cycles: u64) -> Self {
        Self {
            compute_cycles: cycles,
            access: Some(AccessKind::Eviction),
        }
    }
}

/// A complete execution trace of one core/thread.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace from a list of events.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        Self { events }
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The events of the trace.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total computation cycles (excluding any memory stall).
    pub fn total_compute_cycles(&self) -> u64 {
        self.events.iter().map(|e| e.compute_cycles).sum()
    }

    /// Number of memory accesses of the given kind.
    pub fn access_count(&self, kind: AccessKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.access == Some(kind))
            .count() as u64
    }

    /// Total number of memory accesses.
    pub fn total_accesses(&self) -> u64 {
        self.events.iter().filter(|e| e.access.is_some()).count() as u64
    }

    /// Concatenates another trace after this one.
    pub fn extend(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Self {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accounting() {
        let trace = Trace::from_events(vec![
            TraceEvent::compute(100),
            TraceEvent::load_after(50),
            TraceEvent::eviction_after(20),
            TraceEvent::load_after(30),
        ]);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.total_compute_cycles(), 200);
        assert_eq!(trace.access_count(AccessKind::Load), 2);
        assert_eq!(trace.access_count(AccessKind::Eviction), 1);
        assert_eq!(trace.total_accesses(), 3);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trace::from_events(vec![TraceEvent::load_after(10)]);
        let b = Trace::from_events(vec![TraceEvent::compute(5)]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_compute_cycles(), 15);
    }

    #[test]
    fn from_iterator_and_push() {
        let mut trace: Trace = (0..3).map(|_| TraceEvent::load_after(1)).collect();
        trace.push(TraceEvent::compute(7));
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert!(Trace::new().is_empty());
    }
}
