//! Memory transactions exchanged between cores and memory controllers.
//!
//! The paper's 64-core platform issues two kinds of NoC transactions
//! (Section IV):
//!
//! * **loads / write misses**: a one-flit request from the core, answered by a
//!   four-flit cache-line message (512 data bits + 16 control bits over 132-bit
//!   links);
//! * **evictions** (dirty line write-backs): a four-flit request answered by a
//!   one-flit acknowledgement.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::ubd::TransactionSizes;
use wnoc_core::{Cycle, NodeId};

/// Identifier of an outstanding transaction, unique per issuing core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TransactionId(pub u64);

impl std::fmt::Display for TransactionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The kind of memory access a core performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Cache-line fill (load miss or write-allocate miss).
    Load,
    /// Dirty cache-line eviction (write-back).
    Eviction,
}

impl AccessKind {
    /// The request/response message sizes of this access kind, in
    /// regular-packetization flits.
    pub fn sizes(&self) -> TransactionSizes {
        match self {
            AccessKind::Load => TransactionSizes::LOAD,
            AccessKind::Eviction => TransactionSizes::EVICTION,
        }
    }

    /// Returns `true` if the core must stall until the response arrives (loads
    /// block the in-order pipeline, evictions are posted but the next miss
    /// waits on them in this model).
    pub fn is_blocking(&self) -> bool {
        true
    }
}

/// A memory transaction in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique id (per issuing core).
    pub id: TransactionId,
    /// The core that issued it.
    pub core: NodeId,
    /// The memory controller that serves it.
    pub memory: NodeId,
    /// Access kind (load or eviction).
    pub kind: AccessKind,
    /// Cycle the core issued the request to its NIC.
    pub issued: Cycle,
}

impl Transaction {
    /// The request/response sizes of this transaction.
    pub fn sizes(&self) -> TransactionSizes {
        self.kind.sizes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_sizes_match_paper() {
        assert_eq!(AccessKind::Load.sizes().request_flits, 1);
        assert_eq!(AccessKind::Load.sizes().response_flits, 4);
        assert_eq!(AccessKind::Eviction.sizes().request_flits, 4);
        assert_eq!(AccessKind::Eviction.sizes().response_flits, 1);
    }

    #[test]
    fn transactions_carry_their_sizes() {
        let t = Transaction {
            id: TransactionId(3),
            core: NodeId(5),
            memory: NodeId(0),
            kind: AccessKind::Eviction,
            issued: 100,
        };
        assert_eq!(t.sizes().request_flits, 4);
        assert_eq!(t.id.to_string(), "t3");
    }

    #[test]
    fn accesses_block_the_core() {
        assert!(AccessKind::Load.is_blocking());
        assert!(AccessKind::Eviction.is_blocking());
    }
}
