//! The in-order core model: executes a memory-access trace, stalling on every
//! memory transaction until its response returns.

use serde::{Deserialize, Serialize};

use wnoc_core::{Cycle, NodeId};

use crate::trace::Trace;
use crate::transaction::AccessKind;

/// Execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreState {
    /// Executing instructions locally for the given remaining cycles.
    Computing {
        /// Cycles of computation left in the current trace event.
        remaining: u64,
    },
    /// A memory access is ready to be issued to the NoC.
    ReadyToIssue {
        /// The access to issue.
        access: AccessKind,
    },
    /// Stalled, waiting for an outstanding memory transaction.
    WaitingMemory,
    /// The trace has been fully executed.
    Finished,
}

/// Statistics accumulated by a core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Cycles spent stalled on memory.
    pub stall_cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Evictions issued.
    pub evictions: u64,
}

/// An in-order core executing a [`Trace`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Core {
    node: NodeId,
    trace: Trace,
    position: usize,
    state: CoreState,
    stats: CoreStats,
    finished_at: Option<Cycle>,
}

impl Core {
    /// Creates a core at `node` that will execute `trace`.
    pub fn new(node: NodeId, trace: Trace) -> Self {
        let state = Self::state_for(&trace, 0);
        Self {
            node,
            trace,
            position: 0,
            state,
            stats: CoreStats::default(),
            finished_at: None,
        }
    }

    fn state_for(trace: &Trace, position: usize) -> CoreState {
        match trace.events().get(position) {
            None => CoreState::Finished,
            Some(event) if event.compute_cycles > 0 => CoreState::Computing {
                remaining: event.compute_cycles,
            },
            Some(event) => match event.access {
                Some(access) => CoreState::ReadyToIssue { access },
                None => CoreState::Finished, // zero-compute, no access: skip handled in tick
            },
        }
    }

    /// The node this core sits on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current execution state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Returns `true` once the whole trace has been executed.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, CoreState::Finished)
    }

    /// Cycle at which the core finished, if it has.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    fn advance_event(&mut self) {
        self.position += 1;
        self.state = Self::state_for(&self.trace, self.position);
        // Skip degenerate zero-compute, no-access events.
        while matches!(self.state, CoreState::Finished) && self.position < self.trace.len() {
            self.position += 1;
            self.state = Self::state_for(&self.trace, self.position);
        }
    }

    /// Advances the core by one cycle.  Returns the memory access the core
    /// wants to issue this cycle, if any; the caller (the system) is then
    /// responsible for issuing the NoC transaction and later calling
    /// [`Core::complete_memory`].
    pub fn tick(&mut self, now: Cycle) -> Option<AccessKind> {
        match self.state {
            CoreState::Finished => None,
            CoreState::WaitingMemory => {
                self.stats.stall_cycles += 1;
                None
            }
            CoreState::Computing { remaining } => {
                self.stats.compute_cycles += 1;
                let remaining = remaining - 1;
                if remaining > 0 {
                    self.state = CoreState::Computing { remaining };
                    return None;
                }
                // Computation finished: issue the access (if any) next state.
                match self.trace.events()[self.position].access {
                    Some(access) => {
                        self.state = CoreState::ReadyToIssue { access };
                        None
                    }
                    None => {
                        self.advance_event();
                        if self.is_finished() && self.finished_at.is_none() {
                            self.finished_at = Some(now);
                        }
                        None
                    }
                }
            }
            CoreState::ReadyToIssue { access } => {
                self.stats.stall_cycles += 1;
                match access {
                    AccessKind::Load => self.stats.loads += 1,
                    AccessKind::Eviction => self.stats.evictions += 1,
                }
                self.state = CoreState::WaitingMemory;
                Some(access)
            }
        }
    }

    /// Signals that the outstanding memory transaction completed; the core
    /// resumes with the next trace event.
    ///
    /// # Panics
    ///
    /// Panics if the core was not waiting for memory (protocol error in the
    /// caller).
    pub fn complete_memory(&mut self, now: Cycle) {
        assert!(
            matches!(self.state, CoreState::WaitingMemory),
            "complete_memory called on a core that was not waiting"
        );
        self.advance_event();
        if self.is_finished() && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn compute_only_trace_finishes_without_accesses() {
        let mut core = Core::new(NodeId(1), Trace::from_events(vec![TraceEvent::compute(3)]));
        for now in 1..=3 {
            assert_eq!(core.tick(now), None);
        }
        assert!(core.is_finished());
        assert_eq!(core.finished_at(), Some(3));
        assert_eq!(core.stats().compute_cycles, 3);
        assert_eq!(core.stats().loads, 0);
    }

    #[test]
    fn load_blocks_until_completion() {
        let trace = Trace::from_events(vec![TraceEvent::load_after(2), TraceEvent::compute(1)]);
        let mut core = Core::new(NodeId(0), trace);
        assert_eq!(core.tick(1), None);
        assert_eq!(core.tick(2), None);
        // Computation done: the access is issued on the next tick.
        assert_eq!(core.tick(3), Some(AccessKind::Load));
        // Stalls while waiting.
        assert_eq!(core.tick(4), None);
        assert_eq!(core.tick(5), None);
        assert!(matches!(core.state(), CoreState::WaitingMemory));
        core.complete_memory(6);
        assert_eq!(core.tick(7), None);
        assert!(core.is_finished());
        assert_eq!(core.stats().loads, 1);
        assert!(core.stats().stall_cycles >= 3);
    }

    #[test]
    fn zero_compute_access_issues_immediately() {
        let trace = Trace::from_events(vec![TraceEvent {
            compute_cycles: 0,
            access: Some(AccessKind::Eviction),
        }]);
        let mut core = Core::new(NodeId(0), trace);
        assert_eq!(core.tick(1), Some(AccessKind::Eviction));
        core.complete_memory(5);
        assert!(core.is_finished());
        assert_eq!(core.finished_at(), Some(5));
        assert_eq!(core.stats().evictions, 1);
    }

    #[test]
    fn empty_trace_is_immediately_finished() {
        let core = Core::new(NodeId(0), Trace::new());
        assert!(core.is_finished());
    }

    #[test]
    #[should_panic(expected = "not waiting")]
    fn completing_when_not_waiting_panics() {
        let mut core = Core::new(NodeId(0), Trace::from_events(vec![TraceEvent::compute(5)]));
        core.complete_memory(1);
    }

    #[test]
    fn multiple_accesses_in_order() {
        let trace = Trace::from_events(vec![
            TraceEvent::load_after(1),
            TraceEvent::eviction_after(1),
            TraceEvent::load_after(1),
        ]);
        let mut core = Core::new(NodeId(0), trace);
        let mut issued = Vec::new();
        let mut now = 0;
        while !core.is_finished() && now < 100 {
            now += 1;
            if let Some(access) = core.tick(now) {
                issued.push(access);
                core.complete_memory(now);
            }
        }
        assert_eq!(
            issued,
            vec![AccessKind::Load, AccessKind::Eviction, AccessKind::Load]
        );
        assert!(core.is_finished());
    }
}
