//! Memory controller model: serves requests arriving over the NoC with a fixed
//! DRAM latency and a single service port.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use wnoc_core::{Cycle, NodeId};

use crate::transaction::{Transaction, TransactionId};

/// A response ready to be sent back over the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyResponse {
    /// The transaction being answered.
    pub transaction: TransactionId,
    /// The core that issued the request.
    pub core: NodeId,
    /// Size of the response message in regular-packetization flits.
    pub response_flits: u32,
}

/// A simple memory controller: FIFO request queue, one request in service at a
/// time, fixed service latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryController {
    node: NodeId,
    service_cycles: u64,
    queue: VecDeque<Transaction>,
    in_service: Option<(Transaction, Cycle)>,
    served: u64,
    busy_cycles: u64,
}

impl MemoryController {
    /// Creates a controller attached to `node` with the given per-request
    /// service latency in cycles.
    pub fn new(node: NodeId, service_cycles: u64) -> Self {
        Self {
            node,
            service_cycles: service_cycles.max(1),
            queue: VecDeque::new(),
            in_service: None,
            served: 0,
            busy_cycles: 0,
        }
    }

    /// The node the controller is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configured service latency.
    pub fn service_cycles(&self) -> u64 {
        self.service_cycles
    }

    /// Requests currently queued (not yet in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Cycles during which the controller was actively serving a request.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Returns `true` when no request is queued or in service.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_none()
    }

    /// Enqueues a request that arrived over the NoC.
    pub fn enqueue(&mut self, transaction: Transaction) {
        self.queue.push_back(transaction);
    }

    /// Advances the controller by one cycle; returns the response that
    /// completed this cycle, if any.
    pub fn tick(&mut self, now: Cycle) -> Option<ReadyResponse> {
        if self.in_service.is_none() {
            if let Some(next) = self.queue.pop_front() {
                self.in_service = Some((next, now + self.service_cycles));
            }
        }
        let (transaction, done_at) = self.in_service?;
        self.busy_cycles += 1;
        if now >= done_at {
            self.in_service = None;
            self.served += 1;
            Some(ReadyResponse {
                transaction: transaction.id,
                core: transaction.core,
                response_flits: transaction.sizes().response_flits,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::AccessKind;

    fn txn(id: u64, kind: AccessKind) -> Transaction {
        Transaction {
            id: TransactionId(id),
            core: NodeId(9),
            memory: NodeId(0),
            kind,
            issued: 0,
        }
    }

    #[test]
    fn serves_after_fixed_latency() {
        let mut mc = MemoryController::new(NodeId(0), 3);
        mc.enqueue(txn(1, AccessKind::Load));
        // Service starts at cycle 1, completes at cycle 1 + 3.
        assert!(mc.tick(1).is_none());
        assert!(mc.tick(2).is_none());
        assert!(mc.tick(3).is_none());
        let resp = mc.tick(4).unwrap();
        assert_eq!(resp.transaction, TransactionId(1));
        assert_eq!(resp.response_flits, 4);
        assert!(mc.is_idle());
        assert_eq!(mc.served(), 1);
    }

    #[test]
    fn requests_are_served_in_order() {
        let mut mc = MemoryController::new(NodeId(0), 1);
        mc.enqueue(txn(1, AccessKind::Load));
        mc.enqueue(txn(2, AccessKind::Eviction));
        let mut responses = Vec::new();
        for now in 1..10 {
            if let Some(r) = mc.tick(now) {
                responses.push(r);
            }
            if responses.len() == 2 {
                break;
            }
        }
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].transaction, TransactionId(1));
        assert_eq!(responses[1].transaction, TransactionId(2));
        // Eviction acknowledgements are single-flit.
        assert_eq!(responses[1].response_flits, 1);
    }

    #[test]
    fn queue_depth_reported() {
        let mut mc = MemoryController::new(NodeId(0), 10);
        assert!(mc.is_idle());
        for i in 0..5 {
            mc.enqueue(txn(i, AccessKind::Load));
        }
        assert_eq!(mc.queued(), 5);
        mc.tick(1);
        assert_eq!(mc.queued(), 4);
        assert!(!mc.is_idle());
        assert!(mc.busy_cycles() > 0);
    }

    #[test]
    fn zero_service_latency_clamped() {
        let mc = MemoryController::new(NodeId(0), 0);
        assert_eq!(mc.service_cycles(), 1);
    }
}
