//! WCET estimation — the *WCET computation mode* of the paper.
//!
//! Following the paper's reference [17], WCET estimates are obtained by
//! charging every NoC request an artificial **upper bound delay** (UBD) derived
//! from the analytical WCTT model of the NoC design in use, plus a bound on the
//! memory service time.  For an in-order core that stalls on every memory
//! transaction this makes the WCET a simple closed form over its trace:
//!
//! ```text
//! WCET = total_compute
//!      + Σ over accesses ( issue + UBD_request + memory + UBD_response )
//! ```
//!
//! For a parallel application structured in barrier-synchronised phases, the
//! WCET of each phase is the maximum WCET across the threads participating in
//! it, and the application WCET is the sum over phases (see
//! [`parallel_wcet`]).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::ubd::UbdModel;
use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Error, Mesh, NocConfig, Result};

use crate::trace::Trace;
use crate::transaction::AccessKind;

/// WCET estimator for one platform (mesh + memory location + NoC design).
///
/// # Examples
///
/// ```
/// use wnoc_core::{Coord, NocConfig};
/// use wnoc_manycore::trace::{Trace, TraceEvent};
/// use wnoc_manycore::wcet::WcetEstimator;
///
/// let trace = Trace::from_events(vec![TraceEvent::load_after(100); 10]);
/// let memory = Coord::from_row_col(0, 0);
/// let regular = WcetEstimator::new(8, memory, 30, NocConfig::regular(4))?;
/// let proposed = WcetEstimator::new(8, memory, 30, NocConfig::waw_wap())?;
/// let far = Coord::from_row_col(7, 7);
/// // The far corner's WCET shrinks by orders of magnitude with WaW+WaP.
/// assert!(regular.core_wcet(far, &trace)? > 10 * proposed.core_wcet(far, &trace)?);
/// # Ok::<(), wnoc_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct WcetEstimator {
    mesh: Mesh,
    memory: Coord,
    memory_service_cycles: u64,
    config: NocConfig,
    ubd: UbdModel,
    /// Cached per-(core, access-kind) round-trip bounds.
    cache: HashMap<(Coord, AccessKind), u64>,
}

impl WcetEstimator {
    /// Creates an estimator for a `mesh_side × mesh_side` platform whose memory
    /// controller sits at `memory`.
    ///
    /// # Errors
    ///
    /// Returns an error if the memory coordinate is outside the mesh or the NoC
    /// configuration is invalid.
    pub fn new(
        mesh_side: u16,
        memory: Coord,
        memory_service_cycles: u64,
        config: NocConfig,
    ) -> Result<Self> {
        let mesh = Mesh::square(mesh_side)?;
        mesh.check(memory)?;
        let flows = FlowSet::to_and_from_endpoints(&mesh, &[memory])?;
        let mut ubd = UbdModel::new(config, &flows)?;
        // Precompute the per-core transaction bounds once; afterwards WCET
        // estimation is a pure lookup and stays cheap even when called for
        // thousands of (core, trace) combinations.
        let mut cache = HashMap::new();
        for core in mesh.routers() {
            if core == memory {
                continue;
            }
            for kind in [AccessKind::Load, AccessKind::Eviction] {
                let bound =
                    ubd.core_ubd(core, memory, kind.sizes())?.round_trip() + memory_service_cycles;
                cache.insert((core, kind), bound);
            }
        }
        Ok(Self {
            mesh,
            memory,
            memory_service_cycles,
            config,
            ubd,
            cache,
        })
    }

    /// The NoC design this estimator assumes.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The mesh of the platform.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The memory controller location.
    pub fn memory(&self) -> Coord {
        self.memory
    }

    /// The assumed bound on the memory service time per request, in cycles.
    pub fn memory_service_cycles(&self) -> u64 {
        self.memory_service_cycles
    }

    /// The underlying UBD model (per-message NoC traversal bounds).
    pub fn ubd_model(&self) -> &UbdModel {
        &self.ubd
    }

    /// Worst-case round-trip time of one memory transaction of `kind` issued by
    /// the core at `core`: request UBD + memory service bound + response UBD.
    ///
    /// # Errors
    ///
    /// Returns an error if `core` lies outside the mesh or is the memory node.
    pub fn transaction_bound(&self, core: Coord, kind: AccessKind) -> Result<u64> {
        self.cache
            .get(&(core, kind))
            .copied()
            .ok_or_else(|| Error::InvalidConfig {
                reason: format!("no transaction bound for core {core} (outside the mesh?)"),
            })
    }

    /// WCET estimate of `trace` executed on the core at `core`.
    ///
    /// # Errors
    ///
    /// Returns an error if `core` lies outside the mesh or coincides with the
    /// memory controller.
    pub fn core_wcet(&self, core: Coord, trace: &Trace) -> Result<u64> {
        if core == self.memory {
            return Err(Error::InvalidConfig {
                reason: "cannot estimate a workload placed on the memory node".to_string(),
            });
        }
        let mut total = trace.total_compute_cycles();
        for kind in [AccessKind::Load, AccessKind::Eviction] {
            let count = trace.access_count(kind);
            if count == 0 {
                continue;
            }
            let per_access = 1 + self.transaction_bound(core, kind)?;
            total += count * per_access;
        }
        Ok(total)
    }

    /// WCET estimates for the same trace on every core of the mesh (except the
    /// memory node), as `(coordinate, WCET)` pairs in row-major order.
    ///
    /// # Errors
    ///
    /// Propagates any per-core estimation error.
    pub fn all_cores_wcet(&self, trace: &Trace) -> Result<Vec<(Coord, u64)>> {
        self.mesh
            .routers()
            .filter(|&c| c != self.memory)
            .map(|core| Ok((core, self.core_wcet(core, trace)?)))
            .collect()
    }
}

/// One barrier-synchronised phase of a parallel application: each participating
/// thread contributes its own trace, placed on a specific core.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParallelPhase {
    /// The traces of the threads active in this phase, with their placement.
    pub threads: Vec<(Coord, Trace)>,
}

impl ParallelPhase {
    /// Creates a phase from placed thread traces.
    pub fn new(threads: Vec<(Coord, Trace)>) -> Self {
        Self { threads }
    }
}

/// WCET estimate of a barrier-synchronised parallel application: the sum over
/// phases of the worst per-thread WCET within each phase.
///
/// # Errors
///
/// Propagates per-thread estimation errors (e.g. a thread placed outside the
/// mesh).
pub fn parallel_wcet(estimator: &WcetEstimator, phases: &[ParallelPhase]) -> Result<u64> {
    let mut total = 0u64;
    for phase in phases {
        let mut worst = 0u64;
        for (core, trace) in &phase.threads {
            worst = worst.max(estimator.core_wcet(*core, trace)?);
        }
        total += worst;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn load_trace(accesses: usize, gap: u64) -> Trace {
        Trace::from_events(vec![TraceEvent::load_after(gap); accesses])
    }

    fn estimator(config: NocConfig) -> WcetEstimator {
        WcetEstimator::new(8, Coord::from_row_col(0, 0), 30, config).unwrap()
    }

    #[test]
    fn wcet_includes_compute_and_transactions() {
        let est = estimator(NocConfig::waw_wap());
        let trace = load_trace(10, 100);
        let wcet = est.core_wcet(Coord::from_row_col(4, 4), &trace).unwrap();
        // At least the compute time plus ten memory service latencies.
        assert!(wcet > 1000 + 10 * 30);
        // And strictly more than a trace without any access.
        let compute_only = Trace::from_events(vec![TraceEvent::compute(1000)]);
        let base = est
            .core_wcet(Coord::from_row_col(4, 4), &compute_only)
            .unwrap();
        assert_eq!(base, 1000);
        assert!(wcet > base);
    }

    #[test]
    fn far_cores_gain_most_from_waw_wap() {
        // Shape of Table III: normalised WCET (WaW+WaP / regular) is slightly
        // above 1 near the memory controller and orders of magnitude below 1
        // in the far corner.
        let regular = estimator(NocConfig::regular(4));
        let proposed = estimator(NocConfig::waw_wap());
        let trace = load_trace(50, 200);

        let near = Coord::from_row_col(0, 1);
        let far = Coord::from_row_col(7, 7);

        let near_ratio = proposed.core_wcet(near, &trace).unwrap() as f64
            / regular.core_wcet(near, &trace).unwrap() as f64;
        let far_ratio = proposed.core_wcet(far, &trace).unwrap() as f64
            / regular.core_wcet(far, &trace).unwrap() as f64;

        assert!(near_ratio >= 1.0, "near ratio {near_ratio}");
        assert!(near_ratio < 5.0, "near ratio {near_ratio}");
        assert!(far_ratio < 0.05, "far ratio {far_ratio}");
    }

    #[test]
    fn wcet_grows_with_distance_under_both_designs() {
        for config in [NocConfig::regular(4), NocConfig::waw_wap()] {
            let est = estimator(config);
            let trace = load_trace(10, 50);
            let near = est.core_wcet(Coord::from_row_col(0, 1), &trace).unwrap();
            let far = est.core_wcet(Coord::from_row_col(7, 7), &trace).unwrap();
            assert!(far > near, "{}: far {far} vs near {near}", config.label());
        }
    }

    #[test]
    fn all_cores_covers_the_mesh() {
        let est = estimator(NocConfig::waw_wap());
        let trace = load_trace(5, 10);
        let all = est.all_cores_wcet(&trace).unwrap();
        assert_eq!(all.len(), 63);
        assert!(all.iter().all(|(_, wcet)| *wcet > 0));
    }

    #[test]
    fn memory_node_placement_rejected() {
        let est = estimator(NocConfig::regular(4));
        assert!(est
            .core_wcet(Coord::from_row_col(0, 0), &load_trace(1, 1))
            .is_err());
        assert!(est
            .core_wcet(Coord::from_row_col(9, 9), &load_trace(1, 1))
            .is_err());
    }

    #[test]
    fn parallel_wcet_sums_phase_maxima() {
        let est = estimator(NocConfig::waw_wap());
        let light = load_trace(1, 10);
        let heavy = load_trace(5, 10);
        let phase1 = ParallelPhase::new(vec![
            (Coord::from_row_col(1, 1), light.clone()),
            (Coord::from_row_col(7, 7), heavy.clone()),
        ]);
        let phase2 = ParallelPhase::new(vec![(Coord::from_row_col(1, 1), light.clone())]);
        let total = parallel_wcet(&est, &[phase1.clone(), phase2]).unwrap();
        let phase1_only = parallel_wcet(&est, &[phase1]).unwrap();
        assert!(total > phase1_only);
        // Phase 1 is dominated by the heavy thread on the far corner.
        let heavy_far = est.core_wcet(Coord::from_row_col(7, 7), &heavy).unwrap();
        assert_eq!(phase1_only, heavy_far);
    }

    #[test]
    fn transaction_bound_is_cached_and_consistent() {
        let est = estimator(NocConfig::regular(4));
        let a = est
            .transaction_bound(Coord::from_row_col(3, 3), AccessKind::Load)
            .unwrap();
        let b = est
            .transaction_bound(Coord::from_row_col(3, 3), AccessKind::Load)
            .unwrap();
        assert_eq!(a, b);
        let evict = est
            .transaction_bound(Coord::from_row_col(3, 3), AccessKind::Eviction)
            .unwrap();
        assert!(evict > 0);
    }

    #[test]
    fn wcet_sensitive_to_max_packet_size_only_for_regular() {
        // Figure 2(a) trend: the regular design's WCET grows with L, the
        // proposed design is insensitive to it.
        let trace = load_trace(20, 100);
        let core = Coord::from_row_col(4, 4);
        let reg_l1 = estimator(NocConfig::regular(1))
            .core_wcet(core, &trace)
            .unwrap();
        let reg_l8 = estimator(NocConfig::regular(8))
            .core_wcet(core, &trace)
            .unwrap();
        assert!(reg_l8 > reg_l1);
        let wap_small = estimator(NocConfig::waw_wap())
            .core_wcet(core, &trace)
            .unwrap();
        // WaW+WaP does not define a maximum packet size at all; its WCET sits
        // far below the regular design's for this mid-mesh core.
        assert!(wap_small < reg_l1);
    }
}
