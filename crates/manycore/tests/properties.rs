//! Property-based tests of the manycore substrate: trace execution integrity,
//! WCET monotonicity and consistency between operation-mode simulation and the
//! analytical estimator.

use proptest::prelude::*;

use wnoc_core::{Coord, NocConfig};
use wnoc_manycore::system::{ManycoreSystem, PlatformConfig};
use wnoc_manycore::trace::{Trace, TraceEvent};
use wnoc_manycore::transaction::AccessKind;
use wnoc_manycore::wcet::WcetEstimator;

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            1u64..50,
            prop_oneof![
                Just(None),
                Just(Some(AccessKind::Load)),
                Just(Some(AccessKind::Eviction))
            ],
        ),
        1..25,
    )
    .prop_map(|events| {
        Trace::from_events(
            events
                .into_iter()
                .map(|(compute_cycles, access)| TraceEvent {
                    compute_cycles,
                    access,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A single core running an arbitrary trace on the simulated platform
    /// issues exactly the accesses of its trace and finishes no earlier than
    /// its pure compute time.
    #[test]
    fn simulated_execution_matches_trace(trace in trace_strategy(), far in any::<bool>()) {
        let coord = if far { Coord::from_row_col(3, 3) } else { Coord::from_row_col(0, 1) };
        let platform = PlatformConfig::small_4x4(NocConfig::waw_wap());
        let mut system = ManycoreSystem::new(platform, vec![(coord, trace.clone())]).unwrap();
        prop_assert!(system.run_until_finished(2_000_000));
        let (_, stats) = system.core_stats()[0];
        prop_assert_eq!(stats.loads, trace.access_count(AccessKind::Load));
        prop_assert_eq!(stats.evictions, trace.access_count(AccessKind::Eviction));
        prop_assert!(system.execution_time() >= trace.total_compute_cycles());
        prop_assert_eq!(stats.compute_cycles, trace.total_compute_cycles());
    }

    /// The analytical WCET estimate always dominates the execution time
    /// observed on the simulated platform when the core runs alone (no
    /// co-runner interference at all, so the worst-case bound must cover it).
    #[test]
    fn wcet_estimate_dominates_isolated_execution(trace in trace_strategy()) {
        let coord = Coord::from_row_col(3, 3);
        for config in [NocConfig::regular(4), NocConfig::waw_wap()] {
            let platform = PlatformConfig::small_4x4(config);
            let mut system = ManycoreSystem::new(platform, vec![(coord, trace.clone())]).unwrap();
            prop_assert!(system.run_until_finished(5_000_000));
            let observed = system.execution_time();
            let estimator = WcetEstimator::new(
                platform.mesh_side,
                platform.memory,
                platform.memory_service_cycles,
                config,
            )
            .unwrap();
            let wcet = estimator.core_wcet(coord, &trace).unwrap();
            prop_assert!(
                wcet >= observed,
                "{}: WCET {wcet} below observed isolated execution {observed}",
                config.label()
            );
        }
    }

    /// WCET estimates are monotone: adding events to a trace never decreases
    /// the estimate, and moving the core farther from the memory controller
    /// never decreases it either.
    #[test]
    fn wcet_is_monotone(trace in trace_strategy(), extra_compute in 1u64..1000) {
        let estimator =
            WcetEstimator::new(8, Coord::from_row_col(0, 0), 30, NocConfig::waw_wap()).unwrap();
        let near = Coord::from_row_col(1, 1);
        let far = Coord::from_row_col(7, 7);
        let base = estimator.core_wcet(near, &trace).unwrap();

        // Longer trace => larger WCET.
        let mut longer = trace.clone();
        longer.push(TraceEvent::load_after(extra_compute));
        prop_assert!(estimator.core_wcet(near, &longer).unwrap() > base);

        // Farther core => no smaller WCET (equal only for access-free traces).
        let far_wcet = estimator.core_wcet(far, &trace).unwrap();
        prop_assert!(far_wcet >= base);
        if trace.total_accesses() > 0 {
            prop_assert!(far_wcet > base);
        }
    }

    /// The WCET of any trace under the regular design is never smaller than
    /// under WaW+WaP for cores in the far half of the mesh (where the paper's
    /// improvement is unconditional).
    #[test]
    fn far_half_always_prefers_waw_wap(trace in trace_strategy(), row in 4u16..8, col in 4u16..8) {
        prop_assume!(trace.total_accesses() > 0);
        let core = Coord::from_row_col(row, col);
        let memory = Coord::from_row_col(0, 0);
        let regular = WcetEstimator::new(8, memory, 30, NocConfig::regular(4)).unwrap();
        let proposed = WcetEstimator::new(8, memory, 30, NocConfig::waw_wap()).unwrap();
        let reg = regular.core_wcet(core, &trace).unwrap();
        let prop_ = proposed.core_wcet(core, &trace).unwrap();
        prop_assert!(prop_ < reg, "core {core}: {prop_} !< {reg}");
    }
}
