//! Trace replay: converting the workload memory traces into open-loop
//! [`ScheduledTraffic`] the simulator executes directly.
//!
//! The WCET experiments consume traces *analytically* (through
//! `wnoc_manycore::WcetEstimator`); replay feeds the very same traces into
//! the cycle-accurate network instead, as timed message releases — the
//! trace-driven counterpart of the synthetic [`wnoc_core::ArrivalCurve`]
//! sources.  Each trace event's computation burst advances the release
//! clock, and each memory access releases one message toward the memory
//! controller, so the offered traffic reproduces the benchmark's access
//! spacing and burstiness exactly (and deterministically: traces are
//! seed-generated, replay adds no randomness of its own).

use wnoc_core::{Coord, Error, Mesh, NodeId, Result};
use wnoc_manycore::trace::Trace;
use wnoc_manycore::wcet::ParallelPhase;
use wnoc_sim::{ScheduledMessage, ScheduledTraffic};

use crate::eembc::suite_traces;

/// Converts one thread's trace into timed message releases from `src` to
/// `dst`, starting the thread's clock at cycle `offset`.
///
/// Every access event (load or eviction alike — both cross the NoC) releases
/// one `size_flits`-flit message at the cumulative compute time reached so
/// far, so the returned schedule carries exactly
/// [`Trace::total_accesses`] messages with non-decreasing release cycles.
pub fn trace_schedule(
    trace: &Trace,
    src: NodeId,
    dst: NodeId,
    size_flits: u32,
    offset: u64,
) -> Vec<ScheduledMessage> {
    let mut clock = offset;
    let mut out = Vec::new();
    for event in trace.events() {
        clock = clock.saturating_add(event.compute_cycles);
        if event.access.is_some() {
            out.push(ScheduledMessage {
                cycle: clock,
                src,
                dst,
                size_flits,
            });
        }
    }
    out
}

/// The replay schedule of the full EEMBC suite: the sixteen benchmarks are
/// placed on the first sixteen non-memory routers (router-scan order) and
/// every memory access becomes a `size_flits`-flit message toward the
/// controller at `memory`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if the mesh has fewer than seventeen
/// routers (sixteen cores plus the controller) or `memory` lies outside it.
pub fn eembc_suite_schedule(
    mesh: &Mesh,
    memory: Coord,
    seed: u64,
    size_flits: u32,
) -> Result<ScheduledTraffic> {
    let dst = mesh.node_id(memory)?;
    let traces = suite_traces(seed);
    let cores: Vec<NodeId> = mesh
        .routers()
        .filter(|&c| c != memory)
        .take(traces.len())
        .map(|c| mesh.node_id(c))
        .collect::<Result<_>>()?;
    if cores.len() < traces.len() {
        return Err(Error::InvalidConfig {
            reason: format!(
                "EEMBC replay needs {} cores beside the memory controller, mesh offers {}",
                traces.len(),
                cores.len()
            ),
        });
    }
    let mut messages = Vec::new();
    for (src, (_benchmark, trace)) in cores.into_iter().zip(&traces) {
        messages.extend(trace_schedule(trace, src, dst, size_flits, 0));
    }
    Ok(ScheduledTraffic::new(messages))
}

/// The replay schedule of a barrier-synchronised parallel application (the
/// avionics planner's [`ParallelPhase`]s): within a phase every placed
/// thread replays concurrently from the phase's start; the next phase starts
/// one cycle after the *longest* thread of the current phase finishes its
/// computation — the barrier the WCET composition assumes.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if a thread is placed outside the mesh
/// or on the memory controller.
pub fn parallel_phases_schedule(
    phases: &[ParallelPhase],
    mesh: &Mesh,
    memory: Coord,
    size_flits: u32,
) -> Result<ScheduledTraffic> {
    let dst = mesh.node_id(memory)?;
    let mut messages = Vec::new();
    let mut offset = 0u64;
    for phase in phases {
        let mut phase_end = offset;
        for (core, trace) in &phase.threads {
            if *core == memory {
                return Err(Error::InvalidConfig {
                    reason: "a thread cannot be placed on the memory controller".to_string(),
                });
            }
            let src = mesh.node_id(*core)?;
            messages.extend(trace_schedule(trace, src, dst, size_flits, offset));
            phase_end = phase_end.max(offset.saturating_add(trace.total_compute_cycles()));
        }
        offset = phase_end.saturating_add(1);
    }
    Ok(ScheduledTraffic::new(messages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_manycore::trace::TraceEvent;

    use crate::avionics::{default_scenario, TrafficModel};
    use crate::placement::Placement;

    #[test]
    fn trace_schedule_releases_one_message_per_access() {
        let trace = Trace::from_events(vec![
            TraceEvent::compute(10),
            TraceEvent::load_after(5),
            TraceEvent::eviction_after(3),
            TraceEvent::compute(7),
            TraceEvent::load_after(2),
        ]);
        let messages = trace_schedule(&trace, NodeId(3), NodeId(0), 4, 100);
        assert_eq!(messages.len() as u64, trace.total_accesses());
        let cycles: Vec<u64> = messages.iter().map(|m| m.cycle).collect();
        assert_eq!(cycles, vec![115, 118, 127]);
        assert!(messages
            .iter()
            .all(|m| m.src == NodeId(3) && m.size_flits == 4));
    }

    #[test]
    fn eembc_suite_replay_is_deterministic_and_complete() {
        let mesh = Mesh::square(5).unwrap();
        let memory = Coord::from_row_col(0, 0);
        let a = eembc_suite_schedule(&mesh, memory, 42, 2).unwrap();
        let b = eembc_suite_schedule(&mesh, memory, 42, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, eembc_suite_schedule(&mesh, memory, 43, 2).unwrap());
        let expected: u64 = suite_traces(42)
            .iter()
            .map(|(_, t)| t.total_accesses())
            .sum();
        assert_eq!(a.len() as u64, expected);
        // A 4×4 mesh cannot host the sixteen benchmarks plus the controller.
        let small = Mesh::square(4).unwrap();
        assert!(eembc_suite_schedule(&small, memory, 42, 2).is_err());
    }

    #[test]
    fn avionics_phases_serialize_behind_barriers() {
        let mesh = Mesh::square(4).unwrap();
        let memory = Coord::from_row_col(0, 0);
        let cores: Vec<Coord> = mesh.routers().filter(|&c| c != memory).take(4).collect();
        let placement = Placement::new("test", cores, &mesh, memory).unwrap();
        let planner = default_scenario(7).unwrap();
        let phases = planner
            .parallel_phases(&placement, TrafficModel::default())
            .unwrap();
        let schedule = parallel_phases_schedule(&phases, &mesh, memory, 1).unwrap();
        let expected: u64 = phases
            .iter()
            .flat_map(|p| p.threads.iter())
            .map(|(_, t)| t.total_accesses())
            .sum();
        assert_eq!(schedule.len() as u64, expected);
        // Phase k+1 releases strictly after phase k's longest thread: the
        // last release of the whole schedule sits beyond the summed phase
        // lengths of all but the final phase.
        let min_start: u64 = phases[..phases.len() - 1]
            .iter()
            .map(|p| {
                p.threads
                    .iter()
                    .map(|(_, t)| t.total_compute_cycles())
                    .max()
                    .unwrap_or(0)
                    + 1
            })
            .sum();
        assert!(schedule.horizon() >= min_start);
    }
}
