//! 3D path planning (3DPP) — the parallel avionics application.
//!
//! The paper evaluates WaW + WaP with an industrial avionics application
//! provided by Honeywell: a 16-core 3D path planner that guides an aircraft
//! through an obstacle map represented as a 3D matrix.  The application itself
//! is not public, so this module implements a functionally equivalent parallel
//! planner:
//!
//! * the obstacle map is a 3D occupancy grid ([`ObstacleGrid`]);
//! * planning is a breadth-first wavefront expansion from the start cell to the
//!   goal cell (shortest path in the 6-connected grid), parallelised across 16
//!   workers by statically partitioning each wavefront among them;
//! * every wavefront expansion is one barrier-synchronised phase; the memory
//!   trace of a worker in a phase is derived from the number of grid cells it
//!   touches (cells are fetched from shared memory one cache line at a time,
//!   and updated distance values are written back).
//!
//! The derived per-phase traces feed the WCET estimator
//! ([`wnoc_manycore::wcet::parallel_wcet`]) for the Figure 2 experiments and
//! the [`wnoc_manycore::system::ManycoreSystem`] for average-performance runs.

use std::collections::VecDeque;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use wnoc_core::{Error, Result};
use wnoc_manycore::trace::{Trace, TraceEvent};
use wnoc_manycore::wcet::ParallelPhase;

use crate::placement::Placement;

/// A cell of the 3D obstacle grid.
pub type Cell = (usize, usize, usize);

/// A 3D occupancy grid: `true` cells are obstacles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObstacleGrid {
    dims: (usize, usize, usize),
    obstacles: Vec<bool>,
}

impl ObstacleGrid {
    /// Creates an empty (obstacle-free) grid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any dimension is zero.
    pub fn empty(dims: (usize, usize, usize)) -> Result<Self> {
        if dims.0 == 0 || dims.1 == 0 || dims.2 == 0 {
            return Err(Error::InvalidConfig {
                reason: format!("grid dimensions {dims:?} must be non-zero"),
            });
        }
        Ok(Self {
            dims,
            obstacles: vec![false; dims.0 * dims.1 * dims.2],
        })
    }

    /// Generates a random obstacle field with the given density, keeping
    /// `start` and `goal` free.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero dimensions, an out-of-grid
    /// start/goal, or a density outside `[0, 1)`.
    pub fn generate(
        dims: (usize, usize, usize),
        density: f64,
        start: Cell,
        goal: Cell,
        seed: u64,
    ) -> Result<Self> {
        if !(0.0..1.0).contains(&density) {
            return Err(Error::InvalidConfig {
                reason: format!("obstacle density {density} must be in [0, 1)"),
            });
        }
        let mut grid = Self::empty(dims)?;
        if !grid.contains(start) || !grid.contains(goal) {
            return Err(Error::InvalidConfig {
                reason: "start or goal outside the grid".to_string(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for index in 0..grid.obstacles.len() {
            grid.obstacles[index] = rng.gen_bool(density);
        }
        grid.set_obstacle(start, false);
        grid.set_obstacle(goal, false);
        Ok(grid)
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.obstacles.len()
    }

    /// Returns `true` if `cell` lies inside the grid.
    pub fn contains(&self, cell: Cell) -> bool {
        cell.0 < self.dims.0 && cell.1 < self.dims.1 && cell.2 < self.dims.2
    }

    fn index(&self, cell: Cell) -> usize {
        (cell.2 * self.dims.1 + cell.1) * self.dims.0 + cell.0
    }

    /// Returns `true` if `cell` is free (inside the grid and not an obstacle).
    pub fn is_free(&self, cell: Cell) -> bool {
        self.contains(cell) && !self.obstacles[self.index(cell)]
    }

    /// Marks or clears an obstacle.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn set_obstacle(&mut self, cell: Cell, obstacle: bool) {
        assert!(self.contains(cell), "cell {cell:?} outside grid");
        let index = self.index(cell);
        self.obstacles[index] = obstacle;
    }

    /// Number of obstacle cells.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.iter().filter(|&&o| o).count()
    }

    /// The 6-connected free neighbours of `cell`.
    pub fn free_neighbors(&self, cell: Cell) -> Vec<Cell> {
        let mut out = Vec::with_capacity(6);
        let (x, y, z) = cell;
        let candidates = [
            (x.wrapping_sub(1), y, z),
            (x + 1, y, z),
            (x, y.wrapping_sub(1), z),
            (x, y + 1, z),
            (x, y, z.wrapping_sub(1)),
            (x, y, z + 1),
        ];
        for candidate in candidates {
            if self.is_free(candidate) {
                out.push(candidate);
            }
        }
        out
    }
}

/// The result of a planning run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// The shortest path from start to goal (inclusive), if one exists.
    pub path: Option<Vec<Cell>>,
    /// The wavefronts explored, one per BFS level (level 0 is the start cell).
    pub wavefronts: Vec<Vec<Cell>>,
    /// Total cells expanded.
    pub expanded_cells: usize,
}

/// Parameters converting planner work into memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Grid cells that fit in one cache line (determines how many cell visits
    /// trigger one cache-line load).
    pub cells_per_line: u32,
    /// Computation cycles spent per expanded cell.
    pub compute_per_cell: u64,
    /// One eviction (distance-value write-back) is issued every this many
    /// cache-line loads.
    pub loads_per_eviction: u32,
}

impl Default for TrafficModel {
    fn default() -> Self {
        Self {
            cells_per_line: 8,
            compute_per_cell: 12,
            loads_per_eviction: 4,
        }
    }
}

/// The 16-thread parallel 3D path planner.
#[derive(Debug, Clone)]
pub struct PathPlanner {
    grid: ObstacleGrid,
    start: Cell,
    goal: Cell,
}

impl PathPlanner {
    /// Creates a planner.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if start or goal is not a free cell.
    pub fn new(grid: ObstacleGrid, start: Cell, goal: Cell) -> Result<Self> {
        if !grid.is_free(start) || !grid.is_free(goal) {
            return Err(Error::InvalidConfig {
                reason: "start and goal must be free cells inside the grid".to_string(),
            });
        }
        Ok(Self { grid, start, goal })
    }

    /// The obstacle grid.
    pub fn grid(&self) -> &ObstacleGrid {
        &self.grid
    }

    /// Runs the breadth-first wavefront expansion and reconstructs the shortest
    /// path.
    pub fn plan(&self) -> PlanOutcome {
        let mut parent: Vec<Option<Cell>> = vec![None; self.grid.cell_count()];
        let mut visited = vec![false; self.grid.cell_count()];
        let mut wavefronts = Vec::new();
        let mut frontier = VecDeque::new();
        frontier.push_back(self.start);
        visited[self.grid.index(self.start)] = true;
        let mut expanded = 0usize;
        let mut found = self.start == self.goal;

        while !frontier.is_empty() && !found {
            let level: Vec<Cell> = frontier.drain(..).collect();
            wavefronts.push(level.clone());
            let mut next = VecDeque::new();
            for cell in level {
                expanded += 1;
                for neighbor in self.grid.free_neighbors(cell) {
                    let index = self.grid.index(neighbor);
                    if visited[index] {
                        continue;
                    }
                    visited[index] = true;
                    parent[index] = Some(cell);
                    if neighbor == self.goal {
                        found = true;
                    }
                    next.push_back(neighbor);
                }
            }
            frontier = next;
        }
        if !frontier.is_empty() {
            wavefronts.push(frontier.iter().copied().collect());
        }

        let path = if found {
            let mut path = vec![self.goal];
            let mut current = self.goal;
            while current != self.start {
                let Some(prev) = parent[self.grid.index(current)] else {
                    break;
                };
                path.push(prev);
                current = prev;
            }
            path.reverse();
            (path.first() == Some(&self.start)).then_some(path)
        } else {
            None
        };

        PlanOutcome {
            path,
            wavefronts,
            expanded_cells: expanded,
        }
    }

    /// Derives the barrier-synchronised per-phase memory traces of the parallel
    /// planner: every wavefront is one phase, its cells are dealt round-robin
    /// to the placed worker threads, and each worker's share is converted into
    /// loads/evictions/computation according to `traffic`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the placement is empty.
    pub fn parallel_phases(
        &self,
        placement: &Placement,
        traffic: TrafficModel,
    ) -> Result<Vec<ParallelPhase>> {
        if placement.is_empty() {
            return Err(Error::InvalidConfig {
                reason: "placement must contain at least one thread".to_string(),
            });
        }
        let outcome = self.plan();
        let workers = placement.len();
        let mut phases = Vec::with_capacity(outcome.wavefronts.len());
        for wavefront in &outcome.wavefronts {
            let mut per_worker_cells = vec![0usize; workers];
            for (index, _cell) in wavefront.iter().enumerate() {
                per_worker_cells[index % workers] += 1;
            }
            let mut threads = Vec::with_capacity(workers);
            for (worker, &cells) in per_worker_cells.iter().enumerate() {
                let trace = worker_trace(cells, traffic);
                threads.push((placement.cores()[worker], trace));
            }
            phases.push(ParallelPhase::new(threads));
        }
        Ok(phases)
    }
}

/// Converts a worker's share of a wavefront (`cells` expanded cells) into a
/// memory-access trace.
fn worker_trace(cells: usize, traffic: TrafficModel) -> Trace {
    if cells == 0 {
        // Idle worker: it still spins at the barrier for a few cycles.
        return Trace::from_events(vec![TraceEvent::compute(traffic.compute_per_cell)]);
    }
    let loads = (cells as u32).div_ceil(traffic.cells_per_line).max(1);
    let compute_per_load = (cells as u64 * traffic.compute_per_cell) / u64::from(loads).max(1);
    let mut events = Vec::new();
    for load_index in 0..loads {
        events.push(TraceEvent::load_after(compute_per_load.max(1)));
        if traffic.loads_per_eviction > 0 && (load_index + 1) % traffic.loads_per_eviction == 0 {
            events.push(TraceEvent::eviction_after(1));
        }
    }
    Trace::from_events(events)
}

/// Convenience: the obstacle map used by the repository's experiments — a
/// 32×32×16 grid with 20% obstacle density, start near one corner and goal
/// near the opposite corner.
///
/// # Errors
///
/// Never fails for the fixed parameters; kept for API uniformity.
pub fn default_scenario(seed: u64) -> Result<PathPlanner> {
    let dims = (32, 32, 16);
    let start = (1, 1, 1);
    let goal = (30, 30, 14);
    let grid = ObstacleGrid::generate(dims, 0.2, start, goal, seed)?;
    PathPlanner::new(grid, start, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::{Coord, Mesh};

    fn small_planner() -> PathPlanner {
        let grid = ObstacleGrid::empty((8, 8, 4)).unwrap();
        PathPlanner::new(grid, (0, 0, 0), (7, 7, 3)).unwrap()
    }

    #[test]
    fn grid_construction_and_bounds() {
        let grid = ObstacleGrid::empty((4, 3, 2)).unwrap();
        assert_eq!(grid.cell_count(), 24);
        assert!(grid.contains((3, 2, 1)));
        assert!(!grid.contains((4, 0, 0)));
        assert!(grid.is_free((0, 0, 0)));
        assert!(ObstacleGrid::empty((0, 3, 2)).is_err());
    }

    #[test]
    fn obstacles_block_cells() {
        let mut grid = ObstacleGrid::empty((3, 3, 1)).unwrap();
        grid.set_obstacle((1, 1, 0), true);
        assert!(!grid.is_free((1, 1, 0)));
        assert_eq!(grid.obstacle_count(), 1);
        let neighbors = grid.free_neighbors((0, 1, 0));
        assert!(!neighbors.contains(&(1, 1, 0)));
    }

    #[test]
    fn generated_grid_keeps_start_and_goal_free() {
        let grid = ObstacleGrid::generate((10, 10, 5), 0.5, (0, 0, 0), (9, 9, 4), 123).unwrap();
        assert!(grid.is_free((0, 0, 0)));
        assert!(grid.is_free((9, 9, 4)));
        // With 50% density a decent number of obstacles must exist.
        assert!(grid.obstacle_count() > 100);
        // Determinism.
        let again = ObstacleGrid::generate((10, 10, 5), 0.5, (0, 0, 0), (9, 9, 4), 123).unwrap();
        assert_eq!(grid, again);
    }

    #[test]
    fn shortest_path_in_empty_grid_has_manhattan_length() {
        let planner = small_planner();
        let outcome = planner.plan();
        let path = outcome.path.expect("path exists in an empty grid");
        assert_eq!(path.first(), Some(&(0, 0, 0)));
        assert_eq!(path.last(), Some(&(7, 7, 3)));
        // Manhattan distance 7 + 7 + 3 = 17 steps => 18 cells.
        assert_eq!(path.len(), 18);
        // Consecutive cells are 6-connected neighbours.
        for pair in path.windows(2) {
            let d = pair[0].0.abs_diff(pair[1].0)
                + pair[0].1.abs_diff(pair[1].1)
                + pair[0].2.abs_diff(pair[1].2);
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn blocked_goal_yields_no_path() {
        let mut grid = ObstacleGrid::empty((5, 5, 1)).unwrap();
        // Wall the goal off completely.
        grid.set_obstacle((3, 4, 0), true);
        grid.set_obstacle((4, 3, 0), true);
        let planner = PathPlanner::new(grid, (0, 0, 0), (4, 4, 0)).unwrap();
        let outcome = planner.plan();
        assert!(outcome.path.is_none());
        assert!(outcome.expanded_cells > 0);
    }

    #[test]
    fn planner_rejects_blocked_endpoints() {
        let mut grid = ObstacleGrid::empty((3, 3, 1)).unwrap();
        grid.set_obstacle((0, 0, 0), true);
        assert!(PathPlanner::new(grid, (0, 0, 0), (2, 2, 0)).is_err());
    }

    #[test]
    fn default_scenario_finds_a_path() {
        let planner = default_scenario(7).unwrap();
        let outcome = planner.plan();
        let path = outcome.path.expect("the default scenario must be solvable");
        assert!(path.len() >= 1 + (30 - 1) + (30 - 1) + (14 - 1));
        assert!(outcome.expanded_cells > path.len());
    }

    #[test]
    fn parallel_phases_cover_all_wavefronts() {
        let planner = small_planner();
        let mesh = Mesh::square(8).unwrap();
        let memory = Coord::from_row_col(0, 0);
        let placement = &Placement::paper_set(&mesh, memory).unwrap()[0];
        let phases = planner
            .parallel_phases(placement, TrafficModel::default())
            .unwrap();
        let outcome = planner.plan();
        assert_eq!(phases.len(), outcome.wavefronts.len());
        // Every phase has one trace per placed thread.
        assert!(phases.iter().all(|p| p.threads.len() == 16));
        // The busiest phases issue real memory traffic.
        let total_accesses: u64 = phases
            .iter()
            .flat_map(|p| p.threads.iter())
            .map(|(_, t)| t.total_accesses())
            .sum();
        assert!(total_accesses > 50, "total accesses {total_accesses}");
    }

    #[test]
    fn worker_trace_scales_with_cells() {
        let traffic = TrafficModel::default();
        let small = worker_trace(8, traffic);
        let large = worker_trace(64, traffic);
        assert!(large.total_accesses() > small.total_accesses());
        assert!(large.total_compute_cycles() > small.total_compute_cycles());
        let idle = worker_trace(0, traffic);
        assert_eq!(idle.total_accesses(), 0);
    }
}
