//! Synthetic stand-ins for the EEMBC Automotive (autobench) benchmarks.
//!
//! The real EEMBC suite is proprietary, so the single-threaded workloads of the
//! paper's Table III experiment are replaced by synthetic memory-access traces
//! whose *communication behaviour* is calibrated per benchmark: control-style
//! codes (CAN, road speed, pulse-width modulation, tooth-to-spark) are
//! memory-light, while the signal-processing and table-lookup codes (FFT, FIR,
//! iDCT, matrix arithmetic, cache buster) are memory-heavy and burstier.  For
//! the WCET experiment this is what matters: each benchmark issues a
//! characteristic number of NoC transactions separated by characteristic
//! amounts of computation.
//!
//! Traces are generated deterministically from a seed so experiments are
//! reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use wnoc_manycore::trace::{Trace, TraceEvent};
use wnoc_manycore::transaction::AccessKind;

/// The sixteen EEMBC autobench workloads modelled by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum EembcBenchmark {
    A2time,
    Aifftr,
    Aifirf,
    Aiifft,
    Basefp,
    Bitmnp,
    Cacheb,
    Canrdr,
    Idctrn,
    Iirflt,
    Matrix,
    Pntrch,
    Puwmod,
    Rspeed,
    Tblook,
    Ttsprk,
}

/// Communication profile of one benchmark: how many memory accesses it
/// performs, how much computation separates them, how bursty the accesses are
/// and which fraction of them are dirty-line evictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Number of memory accesses in the trace.
    pub accesses: u32,
    /// Mean computation cycles between consecutive accesses.
    pub mean_gap_cycles: u64,
    /// Fraction of accesses that are evictions (write-backs) rather than loads.
    pub eviction_ratio: f64,
    /// Burstiness in `[0, 1)`: 0 means evenly spaced accesses, values close to
    /// 1 mean most accesses cluster together with long compute stretches in
    /// between.
    pub burstiness: f64,
}

impl EembcBenchmark {
    /// All sixteen benchmarks, in a fixed order.
    pub const ALL: [EembcBenchmark; 16] = [
        EembcBenchmark::A2time,
        EembcBenchmark::Aifftr,
        EembcBenchmark::Aifirf,
        EembcBenchmark::Aiifft,
        EembcBenchmark::Basefp,
        EembcBenchmark::Bitmnp,
        EembcBenchmark::Cacheb,
        EembcBenchmark::Canrdr,
        EembcBenchmark::Idctrn,
        EembcBenchmark::Iirflt,
        EembcBenchmark::Matrix,
        EembcBenchmark::Pntrch,
        EembcBenchmark::Puwmod,
        EembcBenchmark::Rspeed,
        EembcBenchmark::Tblook,
        EembcBenchmark::Ttsprk,
    ];

    /// The benchmark's short name as used by the EEMBC suite.
    pub fn name(&self) -> &'static str {
        match self {
            EembcBenchmark::A2time => "a2time",
            EembcBenchmark::Aifftr => "aifftr",
            EembcBenchmark::Aifirf => "aifirf",
            EembcBenchmark::Aiifft => "aiifft",
            EembcBenchmark::Basefp => "basefp",
            EembcBenchmark::Bitmnp => "bitmnp",
            EembcBenchmark::Cacheb => "cacheb",
            EembcBenchmark::Canrdr => "canrdr",
            EembcBenchmark::Idctrn => "idctrn",
            EembcBenchmark::Iirflt => "iirflt",
            EembcBenchmark::Matrix => "matrix",
            EembcBenchmark::Pntrch => "pntrch",
            EembcBenchmark::Puwmod => "puwmod",
            EembcBenchmark::Rspeed => "rspeed",
            EembcBenchmark::Tblook => "tblook",
            EembcBenchmark::Ttsprk => "ttsprk",
        }
    }

    /// The synthetic communication profile of this benchmark.
    pub fn profile(&self) -> BenchmarkProfile {
        match self {
            // Angle-to-time and similar automotive control kernels: moderate
            // working sets, mostly resident in L1.
            EembcBenchmark::A2time => profile(220, 180, 0.15, 0.2),
            EembcBenchmark::Basefp => profile(200, 200, 0.10, 0.2),
            EembcBenchmark::Bitmnp => profile(260, 150, 0.10, 0.3),
            EembcBenchmark::Pntrch => profile(320, 120, 0.20, 0.4),
            EembcBenchmark::Tblook => profile(380, 90, 0.15, 0.4),
            // Signal processing: large working sets streamed from memory.
            EembcBenchmark::Aifftr => profile(520, 60, 0.30, 0.5),
            EembcBenchmark::Aifirf => profile(420, 70, 0.25, 0.4),
            EembcBenchmark::Aiifft => profile(500, 60, 0.30, 0.5),
            EembcBenchmark::Idctrn => profile(460, 65, 0.30, 0.4),
            EembcBenchmark::Iirflt => profile(360, 85, 0.25, 0.3),
            EembcBenchmark::Matrix => profile(560, 55, 0.35, 0.5),
            // The cache buster deliberately thrashes the cache.
            EembcBenchmark::Cacheb => profile(700, 35, 0.45, 0.6),
            // Control-loop codes with tiny working sets: memory-light.
            EembcBenchmark::Canrdr => profile(120, 320, 0.10, 0.1),
            EembcBenchmark::Puwmod => profile(110, 340, 0.10, 0.1),
            EembcBenchmark::Rspeed => profile(100, 360, 0.10, 0.1),
            EembcBenchmark::Ttsprk => profile(140, 300, 0.12, 0.1),
        }
    }

    /// Generates the deterministic synthetic trace of this benchmark.
    pub fn trace(&self, seed: u64) -> Trace {
        let profile = self.profile();
        // Mix the benchmark identity into the seed so different benchmarks get
        // different (but reproducible) access patterns.
        let mixed = seed ^ ((*self as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = ChaCha8Rng::seed_from_u64(mixed);
        let mut events = Vec::with_capacity(profile.accesses as usize + 1);
        for _ in 0..profile.accesses {
            let gap = sample_gap(&mut rng, &profile);
            let kind = if rng.gen_bool(profile.eviction_ratio) {
                AccessKind::Eviction
            } else {
                AccessKind::Load
            };
            events.push(TraceEvent {
                compute_cycles: gap,
                access: Some(kind),
            });
        }
        // A final computation tail without memory traffic.
        events.push(TraceEvent::compute(profile.mean_gap_cycles));
        Trace::from_events(events)
    }
}

impl std::fmt::Display for EembcBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const fn profile(
    accesses: u32,
    mean_gap_cycles: u64,
    eviction_ratio: f64,
    burstiness: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        accesses,
        mean_gap_cycles,
        eviction_ratio,
        burstiness,
    }
}

/// Samples the computation gap before an access: with probability `burstiness`
/// the access is part of a burst (tiny gap), otherwise the gap is drawn
/// uniformly around the benchmark's mean so the overall mean stays close to
/// `mean_gap_cycles`.
fn sample_gap<R: Rng>(rng: &mut R, profile: &BenchmarkProfile) -> u64 {
    if rng.gen_bool(profile.burstiness) {
        rng.gen_range(1..=4)
    } else {
        // Compensate for the burst cycles so the long-run mean is preserved.
        let scale = 1.0 / (1.0 - profile.burstiness);
        let mean = (profile.mean_gap_cycles as f64 * scale).max(2.0) as u64;
        rng.gen_range(mean / 2..=mean + mean / 2)
    }
}

/// The full suite: one deterministic trace per benchmark.
pub fn suite_traces(seed: u64) -> Vec<(EembcBenchmark, Trace)> {
    EembcBenchmark::ALL
        .iter()
        .map(|b| (*b, b.trace(seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks_with_unique_names() {
        assert_eq!(EembcBenchmark::ALL.len(), 16);
        let mut names: Vec<&str> = EembcBenchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn traces_are_deterministic() {
        for b in EembcBenchmark::ALL {
            assert_eq!(b.trace(42), b.trace(42), "{b} not deterministic");
        }
        assert_ne!(
            EembcBenchmark::Matrix.trace(1),
            EembcBenchmark::Matrix.trace(2)
        );
    }

    #[test]
    fn different_benchmarks_have_different_traces() {
        let a = EembcBenchmark::Canrdr.trace(7);
        let b = EembcBenchmark::Cacheb.trace(7);
        assert_ne!(a, b);
        // The cache buster issues many more accesses than the CAN reader.
        assert!(b.total_accesses() > 3 * a.total_accesses());
    }

    #[test]
    fn access_counts_match_profiles() {
        for b in EembcBenchmark::ALL {
            let trace = b.trace(11);
            assert_eq!(trace.total_accesses(), u64::from(b.profile().accesses));
        }
    }

    #[test]
    fn eviction_ratio_roughly_respected() {
        let b = EembcBenchmark::Cacheb;
        let trace = b.trace(3);
        let evictions = trace.access_count(AccessKind::Eviction) as f64;
        let ratio = evictions / trace.total_accesses() as f64;
        assert!(
            (ratio - b.profile().eviction_ratio).abs() < 0.1,
            "ratio {ratio}"
        );
    }

    #[test]
    fn memory_light_benchmarks_have_longer_gaps() {
        let light = EembcBenchmark::Rspeed.trace(5);
        let heavy = EembcBenchmark::Matrix.trace(5);
        let light_gap = light.total_compute_cycles() as f64 / light.total_accesses() as f64;
        let heavy_gap = heavy.total_compute_cycles() as f64 / heavy.total_accesses() as f64;
        assert!(
            light_gap > 3.0 * heavy_gap,
            "light {light_gap} heavy {heavy_gap}"
        );
    }

    #[test]
    fn suite_covers_all_benchmarks() {
        let suite = suite_traces(1);
        assert_eq!(suite.len(), 16);
        assert!(suite.iter().all(|(_, t)| !t.is_empty()));
    }

    #[test]
    fn mean_gap_is_close_to_profile() {
        for b in [
            EembcBenchmark::Canrdr,
            EembcBenchmark::Matrix,
            EembcBenchmark::A2time,
        ] {
            let trace = b.trace(13);
            let profile = b.profile();
            let mean = trace.total_compute_cycles() as f64 / trace.total_accesses() as f64;
            let target = profile.mean_gap_cycles as f64;
            assert!(
                mean > 0.5 * target && mean < 1.8 * target,
                "{b}: mean gap {mean} vs target {target}"
            );
        }
    }
}
