//! Thread-to-core placements for the parallel avionics application.
//!
//! Figure 2(b) of the paper runs the 16-thread 3D path planning application
//! under four different placements (P0–P3) on the 8×8 mesh and shows that the
//! regular wNoC is highly sensitive to placement (over 6× spread) while
//! WaW + WaP keeps the spread around 20%.

use serde::{Deserialize, Serialize};

use wnoc_core::{Coord, Error, Mesh, Result};

/// A named assignment of application threads to mesh cores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    name: String,
    cores: Vec<Coord>,
}

impl Placement {
    /// Creates a placement, checking that all cores are distinct, inside the
    /// mesh and distinct from the memory controller node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on duplicates or collisions with the
    /// memory node, and a bounds error for cores outside the mesh.
    pub fn new(
        name: impl Into<String>,
        cores: Vec<Coord>,
        mesh: &Mesh,
        memory: Coord,
    ) -> Result<Self> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for &core in &cores {
            mesh.check(core)?;
            if core == memory {
                return Err(Error::InvalidConfig {
                    reason: format!("placement {name} uses the memory node {core}"),
                });
            }
            if !seen.insert(core) {
                return Err(Error::InvalidConfig {
                    reason: format!("placement {name} assigns two threads to {core}"),
                });
            }
        }
        Ok(Self { name, cores })
    }

    /// The placement's name (`"P0"`, `"P1"`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cores, indexed by thread id.
    pub fn cores(&self) -> &[Coord] {
        &self.cores
    }

    /// Number of threads placed.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Returns `true` if no thread is placed.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Mean Manhattan distance from the placed cores to `memory` — a simple
    /// indicator of how "far" the placement sits from the memory controller.
    pub fn mean_distance_to(&self, memory: Coord) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores
            .iter()
            .map(|c| c.manhattan_distance(memory) as f64)
            .sum::<f64>()
            / self.cores.len() as f64
    }

    /// The four 16-thread placements used for the Figure 2(b) experiment on the
    /// 8×8 mesh with the memory controller at `R(0,0)`:
    ///
    /// * **P0** — compact 4×4 block adjacent to the memory controller;
    /// * **P1** — compact 4×4 block in the centre of the mesh;
    /// * **P2** — compact 4×4 block in the far corner;
    /// * **P3** — a 2×8 strip along the eastern edge, farthest columns from
    ///   the memory controller.
    ///
    /// # Errors
    ///
    /// Never fails for the standard 8×8 mesh; kept for API uniformity.
    pub fn paper_set(mesh: &Mesh, memory: Coord) -> Result<Vec<Placement>> {
        let mut p0 = Vec::new();
        for row in 0..4u16 {
            for col in 0..4u16 {
                let c = Coord::from_row_col(row, col);
                if c != memory {
                    p0.push(c);
                }
            }
        }
        p0.truncate(16);
        // P0 has only 15 usable nodes inside the 4x4 block (the memory corner is
        // excluded); complete it with the nearest node outside the block.
        if p0.len() < 16 {
            p0.push(Coord::from_row_col(0, 4));
        }

        let mut p1 = Vec::new();
        for row in 2..6u16 {
            for col in 2..6u16 {
                p1.push(Coord::from_row_col(row, col));
            }
        }

        let mut p2 = Vec::new();
        for row in 4..8u16 {
            for col in 4..8u16 {
                p2.push(Coord::from_row_col(row, col));
            }
        }

        // P3: a vertical strip along the far (eastern) edge of the mesh, i.e.
        // the threads are spread over the two columns farthest from the memory
        // controller.
        let mut p3 = Vec::new();
        for row in 0..8u16 {
            p3.push(Coord::from_row_col(row, 6));
            p3.push(Coord::from_row_col(row, 7));
        }

        Ok(vec![
            Placement::new("P0", p0, mesh, memory)?,
            Placement::new("P1", p1, mesh, memory)?,
            Placement::new("P2", p2, mesh, memory)?,
            Placement::new("P3", p3, mesh, memory)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::square(8).unwrap()
    }

    #[test]
    fn paper_set_has_four_16_thread_placements() {
        let memory = Coord::from_row_col(0, 0);
        let set = Placement::paper_set(&mesh(), memory).unwrap();
        assert_eq!(set.len(), 4);
        for p in &set {
            assert_eq!(p.len(), 16, "{} has {} threads", p.name(), p.len());
            assert!(!p.is_empty());
            // No duplicates, no memory node.
            let mut cores = p.cores().to_vec();
            cores.sort();
            cores.dedup();
            assert_eq!(cores.len(), 16);
            assert!(!cores.contains(&memory));
        }
        assert_eq!(set[0].name(), "P0");
        assert_eq!(set[3].name(), "P3");
    }

    #[test]
    fn placements_get_progressively_farther_from_memory() {
        let memory = Coord::from_row_col(0, 0);
        let set = Placement::paper_set(&mesh(), memory).unwrap();
        let d0 = set[0].mean_distance_to(memory);
        let d2 = set[2].mean_distance_to(memory);
        assert!(
            d2 > d0 + 4.0,
            "P2 ({d2}) should be much farther than P0 ({d0})"
        );
    }

    #[test]
    fn new_rejects_invalid_placements() {
        let m = mesh();
        let memory = Coord::from_row_col(0, 0);
        // Memory node used.
        assert!(Placement::new("bad", vec![memory], &m, memory).is_err());
        // Duplicate core.
        assert!(Placement::new(
            "bad",
            vec![Coord::from_row_col(1, 1), Coord::from_row_col(1, 1)],
            &m,
            memory
        )
        .is_err());
        // Outside the mesh.
        assert!(Placement::new("bad", vec![Coord::from_row_col(9, 9)], &m, memory).is_err());
    }

    #[test]
    fn mean_distance_of_empty_placement_is_zero() {
        let m = mesh();
        let memory = Coord::from_row_col(0, 0);
        let p = Placement::new("empty", vec![], &m, memory).unwrap();
        assert_eq!(p.mean_distance_to(memory), 0.0);
    }
}
