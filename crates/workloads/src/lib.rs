//! # wnoc-workloads
//!
//! The workloads used by the paper's evaluation, rebuilt as open substitutes:
//!
//! * [`eembc`] — synthetic stand-ins for the sixteen EEMBC Automotive
//!   (autobench) benchmarks, calibrated per benchmark in terms of memory-access
//!   count, spacing, burstiness and eviction ratio (used for the per-core WCET
//!   experiment of Table III);
//! * [`avionics`] — a 16-thread parallel 3D path planner (3DPP) equivalent to
//!   the Honeywell avionics application: wavefront expansion over a 3D obstacle
//!   grid, with per-phase memory traces derived from the planner's actual work
//!   (used for the Figure 2 experiments);
//! * [`placement`] — the four thread placements P0–P3 of Figure 2(b);
//! * [`replay`] — trace replay: the same traces as timed open-loop message
//!   schedules for the cycle-accurate simulator (`wnoc_sim`).
//!
//! # Example
//!
//! ```
//! use wnoc_workloads::eembc::EembcBenchmark;
//!
//! let trace = EembcBenchmark::Matrix.trace(42);
//! assert!(trace.total_accesses() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod avionics;
pub mod eembc;
pub mod placement;
pub mod replay;

pub use avionics::{default_scenario, ObstacleGrid, PathPlanner, PlanOutcome, TrafficModel};
pub use eembc::{suite_traces, BenchmarkProfile, EembcBenchmark};
pub use placement::Placement;
pub use replay::{eembc_suite_schedule, parallel_phases_schedule, trace_schedule};
