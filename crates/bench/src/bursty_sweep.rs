//! Bound-vs-burst sweep: arrival phasing as a design axis (experiment `Bu1`).
//!
//! Sweeps the arrival-curve burst parameter `b` over the all-to-one hotspot
//! platform on the 4×4 and 8×8 meshes under the WaW + WaP design, printing
//! the observed open-loop worst **end-to-end message latency** (offer to
//! delivery, self-queueing included) next to two analytic bounds:
//!
//! * **buffer-aware** — the Mifdaoui & Ayed backpressure-aware bound
//!   (arXiv:1602.01732), which models one in-flight message per flow and is
//!   therefore only observation-safe at `b ≤ 1`;
//! * **graph-ba** — the graph-based buffer-aware extension (after Giroudot &
//!   Mifdaoui, arXiv:1911.02430), which charges the self-queueing of a
//!   `b`-deep burst and is the dominance oracle of the bursty conformance
//!   dimension.
//!
//! The table makes the division of labour visible: as `b` grows the observed
//! maximum climbs past the buffer-aware base bound while staying below the
//! graph bound, which collapses onto the base bound at `b ≤ 1`.  A second
//! section replays the recorded EEMBC and avionics workload traces through
//! the same open-loop driver ([`wnoc_workloads::replay`]), pinning the
//! trace-replay path end to end.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::oracle::{BufferAwareOracle, GraphBufferAwareOracle, WcttBoundModel};
use wnoc_core::flow::FlowSet;
use wnoc_core::{ArrivalCurve, BufferConfig, Coord, Mesh, NocConfig, Result};
use wnoc_sim::Simulation;
use wnoc_workloads::avionics::TrafficModel;
use wnoc_workloads::{default_scenario, eembc_suite_schedule, parallel_phases_schedule, Placement};

/// Fixed seed of the sweep's jittered release schedules (and of the recorded
/// workload traces), pinned so the golden snapshot is reproducible.
pub const SWEEP_SEED: u64 = 7;

/// The `(burst, cv)` points swept per mesh, in rendering order: bursts 0–6 at
/// zero jitter, then the deepest burst again under heavy (cv = 50%) jitter to
/// exercise the graph bound's jitter allowance.
pub fn swept_bursts() -> Vec<(u32, u32)> {
    vec![(0, 0), (1, 0), (2, 0), (4, 0), (6, 0), (6, 50)]
}

/// One burst sample of one platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstPoint {
    /// Arrival-curve burst depth `b`.
    pub burst: u32,
    /// Inter-arrival jitter, percent of the sustained gap.
    pub cv: u32,
    /// Worst observed open-loop end-to-end message latency across all flows.
    pub observed_max: u64,
    /// Worst-flow buffer-aware message bound (burst-blind base analysis).
    pub buffer_aware_bound: u64,
    /// Worst-flow graph-based bound under this point's arrival curve.
    pub graph_bound: u64,
    /// Flows whose observation exceeded their graph bound — must be zero
    /// (the golden pins it).
    pub dominance_violations: usize,
}

/// The burst sweep of one mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstySweepRow {
    /// Mesh side.
    pub side: u16,
    /// Design label.
    pub design: String,
    /// Probe message size in regular-packetization flits.
    pub message_flits: u32,
    /// Sustained inter-arrival gap in cycles (twice the worst buffer-aware
    /// message bound, the stability margin the graph analysis assumes).
    pub gap: u32,
    /// One sample per entry of [`swept_bursts`].
    pub points: Vec<BurstPoint>,
}

/// One trace-replay sample: a recorded workload driven through the open-loop
/// scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayRow {
    /// Workload label (`eembc-suite`, `avionics-phases`).
    pub label: String,
    /// Mesh side.
    pub side: u16,
    /// Messages released by the schedule.
    pub messages: u64,
    /// Release cycle of the last message.
    pub horizon: u64,
    /// Worst observed end-to-end message latency.
    pub observed_max: u64,
}

/// The complete bound-vs-burst table plus the trace-replay section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstySweepTable {
    /// One burst-sweep row per mesh.
    pub rows: Vec<BurstySweepRow>,
    /// One row per replayed workload trace.
    pub replays: Vec<ReplayRow>,
}

impl BurstySweepTable {
    /// Runs the sweep: 4×4 and 8×8 all-to-one hotspot platforms under the
    /// WaW + WaP design, every point of [`swept_bursts`], then the EEMBC
    /// suite and avionics parallel-phase replays.  Fully deterministic (the
    /// jittered schedules and recorded traces are seeded by [`SWEEP_SEED`]).
    ///
    /// # Errors
    ///
    /// Returns an error if a platform fails to build or drain.
    pub fn generate() -> Result<Self> {
        let config = NocConfig::waw_wap();
        let message_flits = 2u32;
        let mut rows = Vec::new();
        for side in [4u16, 8] {
            let mesh = Mesh::square(side)?;
            let hotspot = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, hotspot)?;
            let buffers = BufferConfig::uniform(config.input_buffer_flits);
            // The stability margin the graph analysis assumes: the sustained
            // gap clears twice the worst base bound, so the network drains
            // between sustained arrivals even under maximal jitter.
            let mut base = BufferAwareOracle::new(&flows, &config, mesh, buffers.clone());
            let worst = flows
                .iter()
                .filter_map(|(id, _)| base.message_bound(id, message_flits))
                .max()
                .unwrap_or(0);
            let gap = u32::try_from(2 * worst).unwrap_or(u32::MAX);
            let cycles = u64::from(gap) * 5 + 500;
            let mut points = Vec::new();
            for (burst, cv) in swept_bursts() {
                let curve = ArrivalCurve::bursty(burst, gap).with_jitter(cv);
                let mut sim = Simulation::new(mesh, config, &flows)?;
                let report = sim.run_bursty(&flows, message_flits, &curve, cycles, SWEEP_SEED)?;
                points.push(sample_point(
                    &flows,
                    &config,
                    mesh,
                    &buffers,
                    curve,
                    message_flits,
                    &report.per_flow_max(),
                    report.max(),
                ));
            }
            rows.push(BurstySweepRow {
                side,
                design: config.label(),
                message_flits,
                gap,
                points,
            });
        }
        Ok(Self {
            rows,
            replays: vec![eembc_replay(&config)?, avionics_replay(&config)?],
        })
    }

    /// Deterministic human-readable rendering (the golden snapshot).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Arrival phasing as a design axis — bound vs burst, all-to-one hotspot R(0,0)\n",
        );
        out.push_str(
            "(open-loop arrival-curve injection; observed latencies are end-to-end and \
             include self-queueing,\n so only the graph-based bound claims dominance for \
             b > 1 — see docs/ORACLES.md)\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "\n== {}x{} {} mf={} gap={} ==\n",
                row.side, row.side, row.design, row.message_flits, row.gap
            ));
            out.push_str(
                "burst | cv% | observed max | buffer-aware bound | graph bound | violations\n",
            );
            for point in &row.points {
                out.push_str(&format!(
                    "{:>5} | {:>3} | {:>12} | {:>18} | {:>11} | {:>10}\n",
                    point.burst,
                    point.cv,
                    point.observed_max,
                    point.buffer_aware_bound,
                    point.graph_bound,
                    point.dominance_violations
                ));
            }
        }
        out.push_str("\n== trace replay (open-loop, recorded workloads) ==\n");
        out.push_str("workload        | mesh | messages | horizon | observed max\n");
        for replay in &self.replays {
            out.push_str(&format!(
                "{:<15} | {:>2}x{:<2} | {:>8} | {:>7} | {:>12}\n",
                replay.label,
                replay.side,
                replay.side,
                replay.messages,
                replay.horizon,
                replay.observed_max
            ));
        }
        out
    }
}

/// Computes one table point from a finished bursty run.
#[allow(clippy::too_many_arguments)]
fn sample_point(
    flows: &FlowSet,
    config: &NocConfig,
    mesh: Mesh,
    buffers: &BufferConfig,
    curve: ArrivalCurve,
    message_flits: u32,
    per_flow_max: &[(wnoc_core::FlowId, u64)],
    observed_max: u64,
) -> BurstPoint {
    let mut base = BufferAwareOracle::new(flows, config, mesh, buffers.clone());
    let mut graph = GraphBufferAwareOracle::new(flows, config, mesh, buffers.clone(), curve);
    let buffer_aware_bound = flows
        .iter()
        .filter_map(|(id, _)| base.message_bound(id, message_flits))
        .max()
        .unwrap_or(0);
    let graph_bound = flows
        .iter()
        .filter_map(|(id, _)| graph.message_bound(id, message_flits))
        .max()
        .unwrap_or(0);
    let mut violations = 0usize;
    for &(flow, observed) in per_flow_max {
        if let Some(bound) = graph.message_bound(flow, message_flits) {
            if observed > bound {
                violations += 1;
            }
        }
    }
    BurstPoint {
        burst: curve.burst,
        cv: curve.cv,
        observed_max,
        buffer_aware_bound,
        graph_bound,
        dominance_violations: violations,
    }
}

/// Replays the recorded EEMBC suite (sixteen benchmarks toward one memory
/// controller on the 5×5 mesh) through the open-loop scheduler.
fn eembc_replay(config: &NocConfig) -> Result<ReplayRow> {
    let side = 5u16;
    let mesh = Mesh::square(side)?;
    let memory = Coord::from_row_col(0, 0);
    let schedule = eembc_suite_schedule(&mesh, memory, SWEEP_SEED, 2)?;
    let flows = FlowSet::all_to_one(&mesh, memory)?;
    let mut sim = Simulation::new(mesh, *config, &flows)?;
    let report = sim.run_schedule(&schedule)?;
    Ok(ReplayRow {
        label: "eembc-suite".to_string(),
        side,
        messages: schedule.len() as u64,
        horizon: schedule.horizon(),
        observed_max: report.max(),
    })
}

/// Replays the avionics planner's barrier-synchronised parallel phases
/// (four placed threads on the 4×4 mesh) through the open-loop scheduler.
fn avionics_replay(config: &NocConfig) -> Result<ReplayRow> {
    let side = 4u16;
    let mesh = Mesh::square(side)?;
    let memory = Coord::from_row_col(0, 0);
    let cores: Vec<Coord> = mesh.routers().filter(|&c| c != memory).take(4).collect();
    let placement = Placement::new("bursty-sweep", cores, &mesh, memory)?;
    let planner = default_scenario(SWEEP_SEED)?;
    let phases = planner.parallel_phases(&placement, TrafficModel::default())?;
    let schedule = parallel_phases_schedule(&phases, &mesh, memory, 1)?;
    let flows = FlowSet::all_to_one(&mesh, memory)?;
    let mut sim = Simulation::new(mesh, *config, &flows)?;
    let report = sim.run_schedule(&schedule)?;
    Ok(ReplayRow {
        label: "avionics-phases".to_string(),
        side,
        messages: schedule.len() as u64,
        horizon: schedule.horizon(),
        observed_max: report.max(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_cover_zero_burst_and_jitter() {
        let points = swept_bursts();
        assert_eq!(points.len(), 6);
        // The collapse point (b ≤ 1) and a jittered point are both present.
        assert!(points.iter().any(|&(b, _)| b == 0));
        assert!(points.iter().any(|&(_, cv)| cv > 0));
        // Bursts are non-decreasing so the table reads as a sweep.
        let bursts: Vec<u32> = points.iter().map(|&(b, _)| b).collect();
        assert!(bursts.windows(2).all(|w| w[0] <= w[1]));
    }

    /// A reduced sweep (4×4 only, two points) exercising the full pipeline;
    /// the complete table is covered by the golden snapshot in release CI.
    #[test]
    fn small_sweep_invariants() {
        let config = NocConfig::waw_wap();
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        let mut base = BufferAwareOracle::new(&flows, &config, mesh, buffers.clone());
        let worst = flows
            .iter()
            .filter_map(|(id, _)| base.message_bound(id, 2))
            .max()
            .unwrap();
        let gap = u32::try_from(2 * worst).unwrap();
        for burst in [0u32, 4] {
            let curve = ArrivalCurve::bursty(burst, gap);
            let mut sim = Simulation::new(mesh, config, &flows).unwrap();
            let report = sim
                .run_bursty(&flows, 2, &curve, u64::from(gap) * 3 + 500, SWEEP_SEED)
                .unwrap();
            let point = sample_point(
                &flows,
                &config,
                mesh,
                &buffers,
                curve,
                2,
                &report.per_flow_max(),
                report.max(),
            );
            assert_eq!(point.dominance_violations, 0, "b={burst}");
            assert!(point.observed_max > 0, "b={burst}");
            assert!(point.graph_bound >= point.buffer_aware_bound, "b={burst}");
            if burst <= 1 {
                // The graph bound collapses onto its buffer-aware base.
                assert_eq!(point.graph_bound, point.buffer_aware_bound);
            }
        }
    }

    #[test]
    fn replays_run_and_report() {
        let config = NocConfig::waw_wap();
        let eembc = eembc_replay(&config).unwrap();
        assert_eq!(eembc.label, "eembc-suite");
        assert!(eembc.messages > 0);
        assert!(eembc.observed_max > 0);
        let avionics = avionics_replay(&config).unwrap();
        assert_eq!(avionics.label, "avionics-phases");
        assert!(avionics.messages > 0);
        assert!(avionics.horizon > 0);
    }

    #[test]
    fn render_lists_every_point_and_replay() {
        let table = BurstySweepTable {
            rows: vec![BurstySweepRow {
                side: 4,
                design: "waw+wap".to_string(),
                message_flits: 2,
                gap: 100,
                points: swept_bursts()
                    .iter()
                    .map(|&(burst, cv)| BurstPoint {
                        burst,
                        cv,
                        observed_max: 10,
                        buffer_aware_bound: 20,
                        graph_bound: 20 + u64::from(burst) * 5,
                        dominance_violations: 0,
                    })
                    .collect(),
            }],
            replays: vec![ReplayRow {
                label: "eembc-suite".to_string(),
                side: 5,
                messages: 123,
                horizon: 456,
                observed_max: 78,
            }],
        };
        let text = table.render();
        for (burst, _) in swept_bursts() {
            assert!(text.contains(&format!("\n{burst:>5} | ")), "{text}");
        }
        assert!(text.contains("eembc-suite"), "{text}");
        assert!(text.contains("docs/ORACLES.md"), "{text}");
    }
}
