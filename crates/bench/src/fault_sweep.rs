//! Degraded-mode WCTT under link/router faults (experiment `F1`).
//!
//! Injects pinned permanent faults into the all-to-one hotspot platform on
//! the 4×4 and 8×8 meshes and prints, per fault scenario, the observed
//! closed-loop worst message latency next to two analytic bounds:
//!
//! * **healthy bound** — the buffer-aware WCTT of the original XY-routed
//!   flow set, valid only while every link is up;
//! * **degraded bound** — the buffer-aware WCTT of the surviving flows
//!   rerouted over the up*/down* spanning forest of the faulted topology
//!   ([`wnoc_core::fault::reroute_flows`], the same construction the
//!   incremental engine's fault mutations are verified against).
//!
//! All faults in the table activate at cycle 0, so every observation happens
//! on the degraded topology and the degraded bound must dominate — the
//! golden pins zero violations.  The table makes the cost of fault tolerance
//! visible: tree routes are longer and more contended than XY routes, so the
//! degraded bound climbs with every severed link while the healthy bound
//! silently stops being a guarantee at all.
//!
//! A second section activates the same faults **mid-run**: the epoch flush
//! truncates in-flight worms (NACKed messages retransmit from the NIC,
//! severed traffic is dropped as undeliverable), and the pinned invariant is
//! that the network always drains — the retransmission counters, not a
//! latency bound, are the artefact.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::oracle::{BufferAwareOracle, WcttBoundModel};
use wnoc_core::fault::reroute_flows;
use wnoc_core::flow::FlowSet;
use wnoc_core::{
    BufferConfig, Coord, Direction, FaultPlan, FlowId, Mesh, NocConfig, Result, RetransmitPolicy,
    TreeRouting,
};
use wnoc_sim::Simulation;

/// Probe message size of the cycle-0 table: one WaP slice, the per-packet
/// quantity the WaW + WaP analyses bound against closed-loop observation.
pub const MESSAGE_FLITS: u32 = 1;

/// Probe message size of the mid-run section: a 4-flit worm under the
/// regular `L = 4` design, so the epoch flush truncates mid-worm (no bound
/// is claimed there — the drain invariant is the artefact).
pub const MIDRUN_MESSAGE_FLITS: u32 = 4;

/// The fault scenarios swept per mesh, in rendering order.  Faults are
/// pinned around the hotspot router `R(0,0)` (row/col coordinates): the
/// severed links are the column-1 West links the XY routes lean on hardest,
/// so the reroute is load-bearing — but row 3 stays intact, so the sink is
/// never isolated and the degraded bound remains a claim about real traffic.
pub fn swept_faults(activation: u64) -> Vec<(String, FaultPlan)> {
    let mut one_link = FaultPlan::new();
    one_link.fail_link(Coord::from_row_col(0, 1), Direction::West, activation);
    let mut two_links = one_link.clone();
    two_links.fail_link(Coord::from_row_col(1, 1), Direction::West, activation);
    let mut three_links = two_links.clone();
    three_links.fail_link(Coord::from_row_col(2, 1), Direction::West, activation);
    let mut router = FaultPlan::new();
    router.fail_router(Coord::from_row_col(1, 1), activation);
    vec![
        ("healthy".to_string(), FaultPlan::new()),
        ("1 link".to_string(), one_link),
        ("2 links".to_string(), two_links),
        ("3 links".to_string(), three_links),
        ("router".to_string(), router),
    ]
}

/// One fault scenario of one mesh, degraded from cycle 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPoint {
    /// Scenario label (`healthy`, `1 link`, ...).
    pub label: String,
    /// Flows with a route on the degraded topology.
    pub survivors: usize,
    /// Flows severed by the faults (source or sink unreachable).
    pub severed: usize,
    /// Worst observed closed-loop end-to-end message latency.
    pub observed_max: u64,
    /// Worst-flow buffer-aware bound of the *original* XY-routed set.
    pub healthy_bound: u64,
    /// Worst-flow buffer-aware bound of the tree-rerouted surviving set.
    pub degraded_bound: u64,
    /// Surviving flows whose observation exceeded their degraded bound —
    /// must be zero (the golden pins it).
    pub dominance_violations: usize,
}

/// The cycle-0 fault sweep of one mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// Mesh side.
    pub side: u16,
    /// Design label.
    pub design: String,
    /// One sample per entry of [`swept_faults`].
    pub points: Vec<FaultPoint>,
}

/// One mid-run activation sample: the fault fires while worms are in flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidrunPoint {
    /// Scenario label.
    pub label: String,
    /// Activation cycle of every fault in the plan.
    pub activation: u64,
    /// Messages delivered end-to-end over the whole run.
    pub messages_delivered: u64,
    /// Messages NACKed by the epoch flush and retransmitted from the NIC.
    pub messages_retransmitted: u64,
    /// Flits truncated out of routers and links by the flush.
    pub flits_purged: u64,
    /// Messages dropped because no degraded route exists.
    pub messages_undeliverable: u64,
    /// `true` when the run drained (no deadlock, no wedged worm) — must be
    /// `true` on every row (the golden pins it).
    pub drained: bool,
}

/// The complete degraded-mode table plus the mid-run activation section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSweepTable {
    /// One cycle-0 fault sweep per mesh.
    pub rows: Vec<FaultSweepRow>,
    /// Mid-run activation samples (4×4 mesh).
    pub midrun: Vec<MidrunPoint>,
}

impl FaultSweepTable {
    /// Runs the sweep: 4×4 and 8×8 all-to-one hotspot platforms under the
    /// WaW + WaP design (the buffer-aware oracle's domain — it does not
    /// claim regular round-robin arbitration), every fault of
    /// [`swept_faults`] at cycle 0,
    /// then the mid-run activation section.  Fully deterministic (pinned
    /// plans, closed-loop traffic, default retransmit policy).
    ///
    /// # Errors
    ///
    /// Returns an error if a platform fails to build or a run fails to
    /// drain — a deadlock under fault injection is a finding, not noise.
    pub fn generate() -> Result<Self> {
        let config = NocConfig::waw_wap();
        let mut rows = Vec::new();
        for side in [4u16, 8] {
            let mesh = Mesh::square(side)?;
            let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0))?;
            let cycles = u64::from(side) * 1_000;
            let mut points = Vec::new();
            for (label, plan) in swept_faults(0) {
                points.push(sample_point(label, &plan, &mesh, &flows, &config, cycles)?);
            }
            rows.push(FaultSweepRow {
                side,
                design: config.label(),
                points,
            });
        }
        // Mid-run section: multi-flit worms under the regular design, so the
        // epoch flush provably truncates in-flight worms (a WaP slice is a
        // single flit and would never be caught mid-route).
        let midrun_config = NocConfig::regular(4);
        let mesh = Mesh::square(4)?;
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0))?;
        let mut midrun = Vec::new();
        for (label, plan) in swept_faults(500) {
            if plan.is_empty() {
                continue;
            }
            midrun.push(sample_midrun(label, &plan, &mesh, &flows, &midrun_config)?);
        }
        Ok(Self { rows, midrun })
    }

    /// Deterministic human-readable rendering (the golden snapshot).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Degraded-mode WCTT — pinned link/router faults, all-to-one hotspot R(0,0)\n");
        out.push_str(
            "(faults activate at cycle 0; survivors are rerouted over the up*/down* \
             spanning forest\n and held to a freshly built degraded bound — the healthy \
             bound stops applying entirely)\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "\n== {}x{} {} mf={} ==\n",
                row.side, row.side, row.design, MESSAGE_FLITS
            ));
            out.push_str(
                "fault    | survivors | severed | observed max | healthy bound | \
                 degraded bound | violations\n",
            );
            for point in &row.points {
                out.push_str(&format!(
                    "{:<8} | {:>9} | {:>7} | {:>12} | {:>13} | {:>14} | {:>10}\n",
                    point.label,
                    point.survivors,
                    point.severed,
                    point.observed_max,
                    point.healthy_bound,
                    point.degraded_bound,
                    point.dominance_violations
                ));
            }
        }
        out.push_str(&format!(
            "\n== mid-run activation (epoch flush + NIC retransmission, 4x4 regular \
             L=4 mf={MIDRUN_MESSAGE_FLITS}) ==\n"
        ));
        out.push_str(
            "fault    | activation | delivered | retransmitted | purged flits | \
             undeliverable | drained\n",
        );
        for point in &self.midrun {
            out.push_str(&format!(
                "{:<8} | {:>10} | {:>9} | {:>13} | {:>12} | {:>13} | {}\n",
                point.label,
                point.activation,
                point.messages_delivered,
                point.messages_retransmitted,
                point.flits_purged,
                point.messages_undeliverable,
                point.drained
            ));
        }
        out
    }
}

/// Runs one cycle-0 fault scenario and checks degraded dominance.
fn sample_point(
    label: String,
    plan: &FaultPlan,
    mesh: &Mesh,
    flows: &FlowSet,
    config: &NocConfig,
    cycles: u64,
) -> Result<FaultPoint> {
    let buffers = BufferConfig::uniform(config.input_buffer_flits);
    let mut healthy = BufferAwareOracle::new(flows, config, *mesh, buffers.clone());
    let healthy_bound = flows
        .iter()
        .filter_map(|(id, _)| healthy.message_bound(id, MESSAGE_FLITS))
        .max()
        .unwrap_or(0);

    // The healthy baseline keeps its XY routes: rerouting is a response to
    // faults, not a standing tax (tree routes are longer even on a healthy
    // mesh, so an unconditional reroute would inflate the baseline bound).
    let reroute = if plan.is_empty() {
        wnoc_core::fault::Reroute {
            flows: flows.clone(),
            surviving: flows.iter().map(|(id, _)| id).collect(),
            severed: Vec::new(),
        }
    } else {
        let tree = TreeRouting::new(&plan.final_set(mesh));
        reroute_flows(flows, &tree)?
    };
    let mut degraded = BufferAwareOracle::new(&reroute.flows, config, *mesh, buffers);
    let degraded_bound = reroute
        .flows
        .iter()
        .filter_map(|(id, _)| degraded.message_bound(id, MESSAGE_FLITS))
        .max()
        .unwrap_or(0);

    let mut sim = Simulation::new(*mesh, *config, flows)?;
    if !plan.is_empty() {
        sim.install_fault_plan(plan.clone(), RetransmitPolicy::default())?;
    }
    let report = sim.run_closed_loop(flows, MESSAGE_FLITS, cycles)?;

    let mut violations = 0usize;
    for (original, observed) in report.per_flow_max() {
        let Some(position) = reroute.surviving.iter().position(|&id| id == original) else {
            continue;
        };
        if let Some(bound) = degraded.message_bound(FlowId(position), MESSAGE_FLITS) {
            if observed > bound {
                violations += 1;
            }
        }
    }
    Ok(FaultPoint {
        label,
        survivors: reroute.surviving.len(),
        severed: reroute.severed.len(),
        observed_max: report.max(),
        healthy_bound,
        degraded_bound,
        dominance_violations: violations,
    })
}

/// Runs one mid-run activation scenario; the run must drain.
fn sample_midrun(
    label: String,
    plan: &FaultPlan,
    mesh: &Mesh,
    flows: &FlowSet,
    config: &NocConfig,
) -> Result<MidrunPoint> {
    let activation = plan.activations().iter().copied().max().unwrap_or(0);
    let mut sim = Simulation::new(*mesh, *config, flows)?;
    sim.install_fault_plan(plan.clone(), RetransmitPolicy::default())?;
    let report = sim.run_closed_loop(flows, MIDRUN_MESSAGE_FLITS, 4_000);
    let drained = report.is_ok();
    report?;
    let stats = sim.stats();
    Ok(MidrunPoint {
        label,
        activation,
        messages_delivered: stats.messages_delivered,
        messages_retransmitted: stats.messages_retransmitted,
        flits_purged: stats.flits_purged,
        messages_undeliverable: stats.messages_undeliverable,
        drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_faults_escalate() {
        let faults = swept_faults(0);
        assert_eq!(faults.len(), 5);
        assert!(
            faults[0].1.is_empty(),
            "first point is the healthy baseline"
        );
        // Link counts escalate 0, 1, 2, 3 and the last plan kills a router.
        for (expected, (_, plan)) in faults.iter().take(4).enumerate() {
            assert_eq!(plan.len(), expected);
        }
        assert_eq!(faults[4].0, "router");
    }

    /// The 4×4 cycle-0 sweep end to end: survivors deliver under every fault,
    /// the degraded bound dominates, and severed counts grow with the plan.
    #[test]
    fn small_sweep_invariants() {
        let config = NocConfig::waw_wap();
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let mut last_severed = 0;
        for (label, plan) in swept_faults(0) {
            let point = sample_point(label.clone(), &plan, &mesh, &flows, &config, 4_000).unwrap();
            assert_eq!(point.dominance_violations, 0, "{label}");
            assert!(point.survivors > 0, "{label}");
            assert!(point.severed >= last_severed, "{label}");
            last_severed = point.severed;
            if plan.is_empty() {
                assert_eq!(point.severed, 0, "{label}");
                assert_eq!(
                    point.healthy_bound, point.degraded_bound,
                    "healthy reroute is a bound-preserving identity"
                );
            }
            assert!(point.observed_max > 0, "{label}");
        }
    }

    /// Mid-run activations must drain and actually exercise the epoch flush:
    /// at least one sample retransmits and at least one drops traffic.
    #[test]
    fn midrun_points_drain_and_retransmit() {
        let config = NocConfig::regular(4);
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let mut retransmitted = 0u64;
        let mut undeliverable = 0u64;
        for (label, plan) in swept_faults(500) {
            if plan.is_empty() {
                continue;
            }
            let point = sample_midrun(label.clone(), &plan, &mesh, &flows, &config).unwrap();
            assert!(point.drained, "{label}");
            assert!(point.messages_delivered > 0, "{label}");
            retransmitted += point.messages_retransmitted;
            undeliverable += point.messages_undeliverable;
        }
        assert!(retransmitted > 0, "no sample retransmitted");
        assert!(undeliverable > 0, "no sample severed live traffic");
    }

    #[test]
    fn render_lists_every_point() {
        let table = FaultSweepTable {
            rows: vec![FaultSweepRow {
                side: 4,
                design: "waw+wap".to_string(),
                points: swept_faults(0)
                    .into_iter()
                    .map(|(label, _)| FaultPoint {
                        label,
                        survivors: 15,
                        severed: 0,
                        observed_max: 10,
                        healthy_bound: 20,
                        degraded_bound: 30,
                        dominance_violations: 0,
                    })
                    .collect(),
            }],
            midrun: vec![MidrunPoint {
                label: "router".to_string(),
                activation: 500,
                messages_delivered: 100,
                messages_retransmitted: 3,
                flits_purged: 12,
                messages_undeliverable: 2,
                drained: true,
            }],
        };
        let text = table.render();
        for (label, _) in swept_faults(0) {
            assert!(text.contains(&label), "{text}");
        }
        assert!(text.contains("mid-run activation"), "{text}");
        assert!(text.contains("degraded bound"), "{text}");
    }
}
