//! Experiment E3 — Table III: per-core WCET of the EEMBC Automotive suite with
//! WaW + WaP, normalised to the regular wNoC, on the 8×8 mesh with the memory
//! controller at `R(0,0)`.
//!
//! Each cell of the 8×8 matrix is the geometric structure of the paper's
//! table: the average over all EEMBC benchmarks of
//! `WCET(WaW+WaP) / WCET(regular)` for the core at that position.  Values above
//! 1 mean the proposed design is (slightly) worse — this happens only for the
//! handful of nodes adjacent to the memory controller — and values far below 1
//! mean it is dramatically better.

use serde::{Deserialize, Serialize};

use wnoc_core::{Coord, NocConfig, Result};
use wnoc_manycore::wcet::WcetEstimator;
use wnoc_workloads::eembc::{suite_traces, EembcBenchmark};

/// The normalised-WCET matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// Mesh side (8 in the paper).
    pub side: u16,
    /// Memory controller location.
    pub memory: Coord,
    /// `ratios[row][col]` = mean over benchmarks of WCET(WaW+WaP)/WCET(regular)
    /// for the core at `R(row, col)`; `None` for the memory node itself.
    pub ratios: Vec<Vec<Option<f64>>>,
    /// Per-benchmark ratio averaged over all cores, for reporting.
    pub per_benchmark_mean: Vec<(EembcBenchmark, f64)>,
}

impl Table3 {
    /// Runs the experiment on a `side × side` mesh (the paper uses 8) with the
    /// regular design's maximum packet size `regular_l` (4 flits, the cache
    /// line of the platform).
    ///
    /// # Errors
    ///
    /// Never fails for valid parameters.
    pub fn run(side: u16, regular_l: u32, seed: u64) -> Result<Self> {
        let memory = Coord::from_row_col(0, 0);
        let memory_latency = 30;
        let regular =
            WcetEstimator::new(side, memory, memory_latency, NocConfig::regular(regular_l))?;
        let proposed = WcetEstimator::new(side, memory, memory_latency, NocConfig::waw_wap())?;
        let suite = suite_traces(seed);

        let mut ratios = vec![vec![None; side as usize]; side as usize];
        let mut per_benchmark: Vec<(EembcBenchmark, f64, usize)> =
            suite.iter().map(|(b, _)| (*b, 0.0, 0usize)).collect();

        for row in 0..side {
            for col in 0..side {
                let core = Coord::from_row_col(row, col);
                if core == memory {
                    continue;
                }
                let mut sum = 0.0;
                for (index, (_, trace)) in suite.iter().enumerate() {
                    let reg = regular.core_wcet(core, trace)? as f64;
                    let prop = proposed.core_wcet(core, trace)? as f64;
                    let ratio = prop / reg;
                    sum += ratio;
                    per_benchmark[index].1 += ratio;
                    per_benchmark[index].2 += 1;
                }
                ratios[row as usize][col as usize] = Some(sum / suite.len() as f64);
            }
        }

        let per_benchmark_mean = per_benchmark
            .into_iter()
            .map(|(b, sum, count)| (b, sum / count.max(1) as f64))
            .collect();

        Ok(Self {
            side,
            memory,
            ratios,
            per_benchmark_mean,
        })
    }

    /// The ratio of the core at `R(row, col)`.
    pub fn ratio(&self, row: u16, col: u16) -> Option<f64> {
        self.ratios
            .get(row as usize)
            .and_then(|r| r.get(col as usize))
            .copied()
            .flatten()
    }

    /// Number of cores whose WCET is worse (ratio > 1) under WaW + WaP.
    pub fn cores_worse(&self) -> usize {
        self.ratios
            .iter()
            .flatten()
            .flatten()
            .filter(|&&r| r > 1.0)
            .count()
    }

    /// Number of cores whose WCET improves (ratio < 1) under WaW + WaP.
    pub fn cores_better(&self) -> usize {
        self.ratios
            .iter()
            .flatten()
            .flatten()
            .filter(|&&r| r < 1.0)
            .count()
    }

    /// The worst slowdown suffered by any core (maximum ratio).
    pub fn worst_slowdown(&self) -> f64 {
        self.ratios
            .iter()
            .flatten()
            .flatten()
            .fold(0.0f64, |acc, &r| acc.max(r))
    }

    /// The best improvement (minimum ratio).
    pub fn best_improvement(&self) -> f64 {
        self.ratios
            .iter()
            .flatten()
            .flatten()
            .fold(f64::INFINITY, |acc, &r| acc.min(r))
    }

    /// Renders the matrix like the paper's Table III.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table III — normalised WCET per core (WaW+WaP / regular), {0}x{0} mesh, memory at {1}\n",
            self.side, self.memory
        ));
        out.push_str("      ");
        for col in 0..self.side {
            out.push_str(&format!("{col:>9}"));
        }
        out.push('\n');
        for row in 0..self.side {
            out.push_str(&format!("{row:>4} |"));
            for col in 0..self.side {
                match self.ratio(row, col) {
                    Some(r) => out.push_str(&format!("{r:>9.4}")),
                    None => out.push_str(&format!("{:>9}", "mem")),
                }
            }
            out.push('\n');
        }
        out.push_str("\nPer-benchmark mean ratio across all cores:\n");
        for (benchmark, mean) in &self.per_benchmark_mean {
            out.push_str(&format!("  {:<8} {:>8.4}\n", benchmark.name(), mean));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        let table = Table3::run(8, 4, 1).unwrap();
        // 63 cores have a ratio; the memory node does not.
        let populated: usize = table.ratios.iter().flatten().flatten().count();
        assert_eq!(populated, 63);
        assert!(table.ratio(0, 0).is_none());

        // The paper reports 11 nodes slightly worse and 53 better; our platform
        // differs in absolute terms but the split must be strongly in favour of
        // WaW+WaP, with only a small set of near-memory nodes losing.
        assert!(table.cores_worse() <= 20, "worse: {}", table.cores_worse());
        assert!(
            table.cores_better() >= 43,
            "better: {}",
            table.cores_better()
        );

        // Worst slowdown stays small (paper: up to 1.5x); best improvement is
        // orders of magnitude (paper: down to 0.0002).
        assert!(
            table.worst_slowdown() < 4.0,
            "worst {}",
            table.worst_slowdown()
        );
        assert!(
            table.best_improvement() < 0.05,
            "best {}",
            table.best_improvement()
        );

        // Ratios decrease monotonically-ish with distance: the far corner is
        // far better off than the node next to the memory controller.
        let near = table.ratio(0, 1).unwrap();
        let far = table.ratio(7, 7).unwrap();
        assert!(far < near / 10.0, "far {far} vs near {near}");
    }

    #[test]
    fn smaller_mesh_also_works() {
        let table = Table3::run(4, 4, 2).unwrap();
        assert_eq!(table.side, 4);
        assert_eq!(table.per_benchmark_mean.len(), 16);
        assert!(table.best_improvement() < 1.0);
    }

    #[test]
    fn render_contains_mem_marker_and_benchmarks() {
        let table = Table3::run(4, 4, 3).unwrap();
        let text = table.render();
        assert!(text.contains("mem"));
        assert!(text.contains("matrix"));
        assert!(text.contains("canrdr"));
    }
}
