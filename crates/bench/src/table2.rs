//! Experiment E2 — Table II: WCTT values (max / mean / min) for mesh sizes
//! 2×2 … 8×8 with 1-flit packets, regular mesh vs WaW + WaP.
//!
//! Two views are produced:
//!
//! * the **analytical** bounds (the quantity the paper tabulates), computed
//!   with the chained-blocking model for the regular mesh and the weighted
//!   bandwidth-share model for WaW + WaP;
//! * optionally, **observed** worst traversal latencies measured on the
//!   cycle-accurate simulator under a saturated all-to-`R(0,0)` hotspot, which
//!   validates the ordering (regular ≫ WaW + WaP for far nodes) on small
//!   meshes.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::{WcttTable, WcttTableRow};
use wnoc_core::{Coord, Mesh, NocConfig, Result, RouterTiming};
use wnoc_sim::Simulation;

/// Observed (simulated) WCTT summary for one mesh size and one design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedRow {
    /// Mesh side.
    pub side: u16,
    /// Worst observed per-flow latency, regular design.
    pub regular_max: u64,
    /// Worst observed per-flow latency, WaW + WaP design.
    pub waw_wap_max: u64,
    /// Best flow's worst observed latency, regular design.
    pub regular_min: u64,
    /// Best flow's worst observed latency, WaW + WaP design.
    pub waw_wap_min: u64,
}

/// The complete Table II reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Analytical rows, one per mesh size.
    pub analytical: Vec<WcttTableRow>,
    /// Observed rows for the sizes that were simulated (may be empty).
    pub observed: Vec<ObservedRow>,
}

impl Table2 {
    /// The mesh sizes tabulated by the paper.
    pub const PAPER_SIZES: [u16; 7] = [2, 3, 4, 5, 6, 7, 8];

    /// Computes the analytical table for the paper's sizes.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn analytical() -> Result<Vec<WcttTableRow>> {
        Ok(WcttTable::table2(RouterTiming::CANONICAL)?.rows().to_vec())
    }

    /// Runs the saturated-hotspot simulation for the given sizes and returns
    /// the observed per-flow worst latencies.
    ///
    /// # Errors
    ///
    /// Never fails for valid sizes.
    pub fn observed(sides: &[u16], warmup: u64, measure: u64) -> Result<Vec<ObservedRow>> {
        let mut rows = Vec::new();
        for &side in sides {
            let mesh = Mesh::square(side)?;
            let hotspot = Coord::from_row_col(0, 0);
            let regular = Simulation::saturated_hotspot(
                mesh,
                NocConfig::regular(1),
                hotspot,
                1,
                warmup,
                measure,
            )?;
            let proposed = Simulation::saturated_hotspot(
                mesh,
                NocConfig::waw_wap(),
                hotspot,
                1,
                warmup,
                measure,
            )?;
            rows.push(ObservedRow {
                side,
                regular_max: regular.max(),
                waw_wap_max: proposed.max(),
                regular_min: regular.min_of_max(),
                waw_wap_min: proposed.min_of_max(),
            });
        }
        Ok(rows)
    }

    /// Runs the full experiment: analytical bounds for all paper sizes plus
    /// observed latencies for the small sizes (2–4) that simulate quickly.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn run(simulate: bool) -> Result<Self> {
        let analytical = Self::analytical()?;
        let observed = if simulate {
            Self::observed(&[2, 3, 4], 2_000, 4_000)?
        } else {
            Vec::new()
        };
        Ok(Self {
            analytical,
            observed,
        })
    }

    /// Renders both views as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table II — analytical WCTT bounds, 1-flit packets, all nodes -> R(0,0)\n");
        out.push_str(
            "size   | regular max  regular mean  regular min | waw+wap max  waw+wap mean  waw+wap min\n",
        );
        for row in &self.analytical {
            out.push_str(&format!(
                "{:<6} | {:>11}  {:>12.2}  {:>11} | {:>11}  {:>12.2}  {:>11}\n",
                row.dims.to_string(),
                row.regular.max,
                row.regular.mean,
                row.regular.min,
                row.waw_wap.max,
                row.waw_wap.mean,
                row.waw_wap.min,
            ));
        }
        if !self.observed.is_empty() {
            out.push_str("\nObserved worst traversal latencies under saturation (cycle-accurate simulator)\n");
            out.push_str("size   | regular max  regular min | waw+wap max  waw+wap min\n");
            for row in &self.observed {
                out.push_str(&format!(
                    "{:<6} | {:>11}  {:>11} | {:>11}  {:>11}\n",
                    format!("{0}x{0}", row.side),
                    row.regular_max,
                    row.regular_min,
                    row.waw_wap_max,
                    row.waw_wap_min,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_table_has_paper_shape() {
        let rows = Table2::analytical().unwrap();
        assert_eq!(rows.len(), 7);
        let last = rows.last().unwrap();
        // 8x8: regular max is orders of magnitude above WaW+WaP max.
        assert!(last.regular.max > 1_000 * last.waw_wap.max);
        // The regular min (node adjacent to the memory) is below WaW+WaP's min.
        assert!(last.regular.min < last.waw_wap.min);
    }

    #[test]
    fn observed_rows_confirm_the_ordering_on_a_small_mesh() {
        let rows = Table2::observed(&[3], 1_000, 2_000).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // Under saturation the far flows of the regular design are served far
        // worse than the best flow; WaW+WaP narrows that spread.
        assert!(row.regular_max > row.waw_wap_max / 4);
        assert!(row.regular_max >= row.regular_min);
        assert!(row.waw_wap_max >= row.waw_wap_min);
    }

    #[test]
    fn render_contains_both_sections_when_simulated() {
        let table = Table2 {
            analytical: Table2::analytical().unwrap(),
            observed: Table2::observed(&[2], 500, 1_000).unwrap(),
        };
        let text = table.render();
        assert!(text.contains("8x8"));
        assert!(text.contains("Observed"));
    }
}
