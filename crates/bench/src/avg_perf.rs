//! Experiment E6 — average performance: WaW + WaP must cost almost nothing in
//! average execution time (the paper reports < 1% degradation).
//!
//! The experiment runs the same multi-programmed EEMBC-like workload on the
//! cycle-accurate platform (operation mode, real NoC contention) under the
//! regular design and under WaW + WaP, and compares total execution times.

use serde::{Deserialize, Serialize};

use wnoc_core::{Coord, NocConfig, Result};
use wnoc_manycore::system::{ManycoreSystem, PlatformConfig};
use wnoc_manycore::trace::Trace;
use wnoc_workloads::eembc::EembcBenchmark;

/// Result of one average-performance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AveragePerformance {
    /// Execution time (cycles) under the regular design.
    pub regular_cycles: u64,
    /// Execution time (cycles) under WaW + WaP.
    pub waw_wap_cycles: u64,
    /// Messages delivered in the regular run (sanity check: both runs must
    /// deliver the same traffic).
    pub messages: u64,
}

impl AveragePerformance {
    /// Relative degradation of WaW + WaP vs the regular design
    /// (`0.01` = 1% slower; negative values mean WaW + WaP was faster).
    pub fn degradation(&self) -> f64 {
        self.waw_wap_cycles as f64 / self.regular_cycles.max(1) as f64 - 1.0
    }
}

/// Parameters of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvgPerfParams {
    /// Mesh side; the full 8×8 platform is used by the binary, tests use 4.
    pub mesh_side: u16,
    /// Number of cores loaded with a workload (placed row-major after the
    /// memory node); capped at `mesh_side² − 1`.
    pub loaded_cores: usize,
    /// Number of trace events kept per benchmark (truncation keeps run times
    /// reasonable).
    pub events_per_core: usize,
    /// Trace generation seed.
    pub seed: u64,
    /// Simulation cycle budget per run.
    pub max_cycles: u64,
}

impl Default for AvgPerfParams {
    fn default() -> Self {
        Self {
            mesh_side: 8,
            loaded_cores: 63,
            events_per_core: 120,
            seed: 7,
            max_cycles: 20_000_000,
        }
    }
}

/// Builds the multi-programmed workload: EEMBC benchmarks assigned round-robin
/// to the first `loaded_cores` non-memory nodes.
fn workloads(params: AvgPerfParams) -> Vec<(Coord, Trace)> {
    let mut placed = Vec::new();
    let benchmarks = EembcBenchmark::ALL;
    let mut index = 0usize;
    'outer: for row in 0..params.mesh_side {
        for col in 0..params.mesh_side {
            if row == 0 && col == 0 {
                continue;
            }
            if placed.len() >= params.loaded_cores {
                break 'outer;
            }
            let benchmark = benchmarks[index % benchmarks.len()];
            index += 1;
            let full = benchmark.trace(params.seed);
            let truncated: Trace = full
                .events()
                .iter()
                .copied()
                .take(params.events_per_core)
                .collect();
            placed.push((Coord::from_row_col(row, col), truncated));
        }
    }
    placed
}

/// Runs the comparison.
///
/// # Errors
///
/// Returns an error if the platform cannot be built or a run does not finish
/// within the cycle budget.
pub fn run(params: AvgPerfParams) -> Result<AveragePerformance> {
    let work = workloads(params);
    let execute = |noc: NocConfig| -> Result<(u64, u64)> {
        let platform = PlatformConfig {
            mesh_side: params.mesh_side,
            memory: Coord::from_row_col(0, 0),
            memory_service_cycles: 30,
            noc,
        };
        let mut system = ManycoreSystem::new(platform, work.clone())?;
        if !system.run_until_finished(params.max_cycles) {
            return Err(wnoc_core::Error::InvalidConfig {
                reason: format!(
                    "workload did not finish within {} cycles under {}",
                    params.max_cycles,
                    system.config().noc.label()
                ),
            });
        }
        Ok((
            system.execution_time(),
            system.network().stats().messages_delivered,
        ))
    };
    let (regular_cycles, messages) = execute(NocConfig::regular(4))?;
    let (waw_wap_cycles, _) = execute(NocConfig::waw_wap())?;
    Ok(AveragePerformance {
        regular_cycles,
        waw_wap_cycles,
        messages,
    })
}

/// Renders the result as text.
pub fn render(result: &AveragePerformance) -> String {
    format!(
        "Average performance (operation mode, EEMBC-like multiprogrammed workload)\n\
         regular wNoC : {} cycles\n\
         WaW+WaP      : {} cycles\n\
         degradation  : {:+.2}%\n\
         messages     : {}\n",
        result.regular_cycles,
        result.waw_wap_cycles,
        result.degradation() * 100.0,
        result.messages
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> AvgPerfParams {
        AvgPerfParams {
            mesh_side: 4,
            loaded_cores: 15,
            events_per_core: 40,
            seed: 7,
            max_cycles: 5_000_000,
        }
    }

    #[test]
    fn degradation_is_small() {
        let result = run(small_params()).unwrap();
        assert!(result.regular_cycles > 0);
        assert!(result.messages > 0);
        // The paper reports < 1%; with our smaller platform and shorter traces
        // we allow a slightly wider margin but the degradation must stay small.
        let degradation = result.degradation();
        assert!(
            degradation < 0.10,
            "WaW+WaP degrades average performance by {:.1}%",
            degradation * 100.0
        );
    }

    #[test]
    fn workload_placement_skips_the_memory_node() {
        let placed = workloads(small_params());
        assert_eq!(placed.len(), 15);
        assert!(placed.iter().all(|(c, _)| *c != Coord::from_row_col(0, 0)));
        assert!(placed.iter().all(|(_, t)| t.len() <= 40));
    }

    #[test]
    fn degradation_helper() {
        let r = AveragePerformance {
            regular_cycles: 1000,
            waw_wap_cycles: 1010,
            messages: 5,
        };
        assert!((r.degradation() - 0.01).abs() < 1e-9);
    }
}
