//! Bound-vs-depth sweep: buffer depth as a design axis (experiment `B1`).
//!
//! Reproduces the headline curve of the related buffer-aware wormhole
//! analyses (Mifdaoui & Ayed, arXiv:1602.01732): worst-case traversal bounds
//! *improve as router buffers deepen* and degrade towards the backpressured
//! regime as they shrink — an axis the paper's own evaluation holds fixed.
//! For the all-to-one hotspot platform on the 4×4 and 8×8 meshes, both
//! designs are swept over uniform input-buffer depths
//! {1, 2, 4, 8, ∞-equivalent}:
//!
//! * **analytic** — the paper-form bound (depth-independent), and under WaW
//!   the backpressured bound plus the buffer-aware bound
//!   ([`BufferAwareWcttModel`]) that interpolates between them;
//! * **observed** — the worst closed-loop traversal latency on the
//!   cycle-accurate simulator built with the same [`BufferConfig`].
//!
//! The table demonstrates the two qualitative claims the conformance
//! harness machine-checks campaign-wide: the buffer-aware bound tightens
//! monotonically with depth while never dropping below an observation, and
//! the observations themselves relax as buffers deepen (backpressure
//! vanishes) — wormhole WCTT tightness is bought with buffer area.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::oracle::{
    BufferAwareOracle, RegularOracle, WcttBoundModel, WeightedFlavor, WeightedOracle,
};
use wnoc_core::flow::FlowSet;
use wnoc_core::{BufferConfig, Coord, Mesh, NocConfig, Result};
use wnoc_sim::Simulation;

/// The uniform depths swept, in flits (4 is the historical default, the last
/// entry is the ∞-equivalent point).
pub const DEPTHS: [u32; 5] = [1, 2, 4, 8, BufferConfig::INFINITE_EQUIVALENT];

/// One depth sample of one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthPoint {
    /// Uniform input-buffer depth, in flits.
    pub depth: u32,
    /// Worst observed closed-loop traversal latency across all flows.
    pub observed_max: u64,
    /// Worst-flow paper-form analytic bound (depth-independent).
    pub paper_bound: u64,
    /// Worst-flow backpressured bound (WaW only; depth-independent).
    pub backpressured_bound: Option<u64>,
    /// Worst-flow buffer-aware bound at this depth (WaW only).
    pub buffer_aware_bound: Option<u64>,
}

/// The sweep of one (mesh, design) platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Mesh side.
    pub side: u16,
    /// Design label.
    pub design: String,
    /// Probe message size in regular-packetization flits.
    pub message_flits: u32,
    /// One sample per entry of [`DEPTHS`].
    pub points: Vec<DepthPoint>,
}

/// The complete bound-vs-depth table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSweepTable {
    /// One row per (mesh, design) platform.
    pub rows: Vec<SweepRow>,
}

impl BufferSweepTable {
    /// Runs the sweep: 4×4 and 8×8 all-to-one hotspot platforms, both
    /// designs, every depth of [`DEPTHS`].  Fully deterministic (closed-loop
    /// probing involves no randomness).
    ///
    /// # Errors
    ///
    /// Returns an error if a platform fails to build or drain.
    pub fn generate() -> Result<Self> {
        let mut rows = Vec::new();
        for side in [4u16, 8] {
            let mesh = Mesh::square(side)?;
            let hotspot = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, hotspot)?;
            let cycles = if side == 4 { 2_000 } else { 3_000 };
            for (config, message_flits) in
                [(NocConfig::regular(4), 4u32), (NocConfig::waw_wap(), 1)]
            {
                let mut points = Vec::with_capacity(DEPTHS.len());
                for depth in DEPTHS {
                    let buffers = BufferConfig::uniform(depth);
                    let mut sim = Simulation::with_buffers(mesh, config, &flows, &buffers)?;
                    let report = sim.run_closed_loop(&flows, message_flits, cycles)?;
                    points.push(DepthPoint {
                        depth,
                        observed_max: report.max(),
                        paper_bound: worst_paper_bound(&flows, &config, message_flits),
                        backpressured_bound: worst_weighted_bound(
                            &flows,
                            &config,
                            message_flits,
                            WeightedFlavor::Backpressured,
                        ),
                        buffer_aware_bound: worst_buffer_aware_bound(
                            &flows,
                            &config,
                            mesh,
                            &buffers,
                            message_flits,
                        ),
                    });
                }
                rows.push(SweepRow {
                    side,
                    design: config.label(),
                    message_flits,
                    points,
                });
            }
        }
        Ok(Self { rows })
    }

    /// Deterministic human-readable rendering (the golden snapshot).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Buffer depth as a design axis — bound vs depth, all-to-one hotspot R(0,0)\n");
        out.push_str(
            "(closed-loop probing; '-' where the analysis does not apply to the design)\n",
        );
        let fmt_opt = |value: Option<u64>| match value {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        for row in &self.rows {
            out.push_str(&format!(
                "\n== {}x{} {} mf={} ==\n",
                row.side, row.side, row.design, row.message_flits
            ));
            out.push_str("depth | observed max | paper bound | buffer-aware | backpressured\n");
            for point in &row.points {
                out.push_str(&format!(
                    "{:>5} | {:>12} | {:>11} | {:>12} | {:>13}\n",
                    point.depth,
                    point.observed_max,
                    point.paper_bound,
                    fmt_opt(point.buffer_aware_bound),
                    fmt_opt(point.backpressured_bound),
                ));
            }
        }
        out
    }
}

/// Worst-flow paper-form bound: the chained-blocking model under round
/// robin, the paper-flavour weighted bound under WaW.
fn worst_paper_bound(flows: &FlowSet, config: &NocConfig, message_flits: u32) -> u64 {
    match config.arbitration {
        wnoc_core::ArbitrationPolicy::RoundRobin => {
            let l = config.packetization.worst_case_contender_flits();
            let mut oracle = RegularOracle::new(flows, config, l);
            worst_bound(&mut oracle, flows, message_flits).unwrap_or(0)
        }
        wnoc_core::ArbitrationPolicy::Waw => {
            let mut oracle = WeightedOracle::with_flavor(flows, config, WeightedFlavor::Paper);
            worst_bound(&mut oracle, flows, message_flits).unwrap_or(0)
        }
    }
}

/// Worst-flow weighted bound in the given flavour (WaW designs only).
fn worst_weighted_bound(
    flows: &FlowSet,
    config: &NocConfig,
    message_flits: u32,
    flavor: WeightedFlavor,
) -> Option<u64> {
    if config.arbitration != wnoc_core::ArbitrationPolicy::Waw {
        return None;
    }
    let mut oracle = WeightedOracle::with_flavor(flows, config, flavor);
    worst_bound(&mut oracle, flows, message_flits)
}

/// Worst-flow buffer-aware bound (WaW designs only).
fn worst_buffer_aware_bound(
    flows: &FlowSet,
    config: &NocConfig,
    mesh: Mesh,
    buffers: &BufferConfig,
    message_flits: u32,
) -> Option<u64> {
    if config.arbitration != wnoc_core::ArbitrationPolicy::Waw {
        return None;
    }
    let mut oracle = BufferAwareOracle::new(flows, config, mesh, buffers.clone());
    worst_bound(&mut oracle, flows, message_flits)
}

fn worst_bound(
    oracle: &mut dyn WcttBoundModel,
    flows: &FlowSet,
    message_flits: u32,
) -> Option<u64> {
    flows
        .iter()
        .filter_map(|(id, _)| oracle.message_bound(id, message_flits))
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep (4×4 only) exercising the full pipeline; the complete
    /// table is covered by the golden snapshot in release CI.
    #[test]
    fn small_sweep_shape_and_invariants() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let config = NocConfig::waw_wap();
        let mut last_ba = u64::MAX;
        for depth in DEPTHS {
            let buffers = BufferConfig::uniform(depth);
            let mut sim = Simulation::with_buffers(mesh, config, &flows, &buffers).unwrap();
            let report = sim.run_closed_loop(&flows, 1, 1_500).unwrap();
            let ba = worst_buffer_aware_bound(&flows, &config, mesh, &buffers, 1).unwrap();
            // Dominance at every depth, monotone tightening across depths.
            assert!(report.max() <= ba, "depth {depth}: {} > {ba}", report.max());
            assert!(ba <= last_ba, "depth {depth}: bound not monotone");
            last_ba = ba;
        }
    }

    #[test]
    fn render_lists_every_depth() {
        let table = BufferSweepTable {
            rows: vec![SweepRow {
                side: 4,
                design: "WaW+WaP".to_string(),
                message_flits: 1,
                points: DEPTHS
                    .iter()
                    .map(|&depth| DepthPoint {
                        depth,
                        observed_max: 10,
                        paper_bound: 20,
                        backpressured_bound: Some(30),
                        buffer_aware_bound: Some(25),
                    })
                    .collect(),
            }],
        };
        let text = table.render();
        for depth in DEPTHS {
            assert!(text.contains(&format!("\n{depth:>5} |")), "{text}");
        }
        assert!(text.contains("WaW+WaP"));
    }
}
