//! # wnoc-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation, plus an ablation of the two proposed mechanisms.
//!
//! | Experiment | Paper artefact | Module | Binary |
//! |------------|----------------|--------|--------|
//! | E1 | Table I (arbitration weights, 2×2 mesh) | [`table1`] | `expt-table1` |
//! | E2 | Table II (WCTT vs mesh size) | [`table2`] | `expt-table2` |
//! | E3 | Table III (normalised per-core WCET, EEMBC) | [`table3`] | `expt-table3` |
//! | E4 | Figure 2(a) (3DPP WCET vs max packet size) | [`fig2`] | `expt-fig2a` |
//! | E5 | Figure 2(b) (3DPP WCET vs placement) | [`fig2`] | `expt-fig2b` |
//! | E6 | Average performance (< 1% degradation) | [`avg_perf`] | `expt-avg-perf` |
//! | E7 | Section III slot model (3·L+S vs 3·m+m) | [`slot`] | `expt-slot-model` |
//! | A1 | Ablation: WaP alone, WaW alone, both | [`ablation`] | `expt-ablation` |
//! | B1 | Buffer-depth sweep (bound vs depth, not in paper) | [`buffer_sweep`] | `expt-buffer-sweep` |
//! | V1 | Virtual-channel sweep (bound vs VC count, not in paper) | [`vc_sweep`] | `expt-vc-sweep` |
//! | Bu1 | Bursty sweep (bound vs burst + trace replay, not in paper) | [`bursty_sweep`] | `expt-bursty-sweep` |
//! | F1 | Fault sweep (degraded-mode WCTT under link/router faults, not in paper) | [`fault_sweep`] | `expt-fault-sweep` |
//! | C1 | Conformance campaign (sim vs analytic bounds) | `wnoc-conformance` | `expt-conformance` |
//!
//! Criterion benchmarks under `benches/` measure the cost of regenerating each
//! artefact and the simulator's raw throughput, so regressions in the substrate
//! are visible.
//!
//! Golden-output snapshots of every binary live under `tests/golden/`; the
//! `golden` integration test diffs the binaries' stdout against them with a
//! normalizing comparison so refactors cannot silently change the reproduced
//! paper numbers (regenerate intentionally changed outputs with
//! `UPDATE_GOLDEN=1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod avg_perf;
pub mod buffer_sweep;
pub mod bursty_sweep;
pub mod fault_sweep;
pub mod fig2;
pub mod slot;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod vc_sweep;

pub use ablation::Ablation;
pub use avg_perf::{AveragePerformance, AvgPerfParams};
pub use buffer_sweep::BufferSweepTable;
pub use bursty_sweep::BurstySweepTable;
pub use fault_sweep::FaultSweepTable;
pub use fig2::{Fig2Params, Figure2};
pub use slot::SlotModel;
pub use table1::Table1;
pub use table2::Table2;
pub use table3::Table3;
pub use vc_sweep::VcSweepTable;
