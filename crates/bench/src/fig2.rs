//! Experiments E4 and E5 — Figure 2: WCET estimates of the 16-core 3D path
//! planning (3DPP) avionics application.
//!
//! * **Figure 2(a)**: placement P0, maximum packet size L ∈ {1, 4, 8} for the
//!   regular design vs WaW + WaP.
//! * **Figure 2(b)**: maximum packet size 1, placements P0–P3.

use serde::{Deserialize, Serialize};

use wnoc_core::{Coord, Mesh, NocConfig, Result};
use wnoc_manycore::wcet::{parallel_wcet, ParallelPhase, WcetEstimator};
use wnoc_workloads::avionics::{default_scenario, TrafficModel};
use wnoc_workloads::placement::Placement;

/// One bar pair of Figure 2(a): a maximum packet size with both designs' WCET.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSizePoint {
    /// The maximum allowed packet size `L` (flits).
    pub max_packet_flits: u32,
    /// WCET estimate of the regular wNoC, in cycles.
    pub regular_wcet: u64,
    /// WCET estimate of WaW + WaP, in cycles.
    pub waw_wap_wcet: u64,
}

impl PacketSizePoint {
    /// Improvement factor of WaW + WaP over the regular design.
    pub fn improvement(&self) -> f64 {
        self.regular_wcet as f64 / self.waw_wap_wcet.max(1) as f64
    }
}

/// One bar pair of Figure 2(b): a placement with both designs' WCET.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPoint {
    /// Placement name (P0–P3).
    pub placement: String,
    /// WCET estimate of the regular wNoC (L = 1), in cycles.
    pub regular_wcet: u64,
    /// WCET estimate of WaW + WaP, in cycles.
    pub waw_wap_wcet: u64,
}

/// The Figure 2 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2 {
    /// Figure 2(a): WCET vs maximum packet size, placement P0.
    pub packet_sizes: Vec<PacketSizePoint>,
    /// Figure 2(b): WCET vs placement, L = 1.
    pub placements: Vec<PlacementPoint>,
}

/// Parameters of the Figure 2 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Params {
    /// Mesh side (8 in the paper).
    pub mesh_side: u16,
    /// Memory service latency bound, in cycles.
    pub memory_service_cycles: u64,
    /// Seed of the obstacle map.
    pub seed: u64,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Self {
            mesh_side: 8,
            memory_service_cycles: 30,
            seed: 2016,
        }
    }
}

fn phases_for(placement: &Placement, seed: u64) -> Result<Vec<ParallelPhase>> {
    let planner = default_scenario(seed)?;
    planner.parallel_phases(placement, TrafficModel::default())
}

fn app_wcet(params: Fig2Params, config: NocConfig, phases: &[ParallelPhase]) -> Result<u64> {
    let memory = Coord::from_row_col(0, 0);
    let estimator = WcetEstimator::new(
        params.mesh_side,
        memory,
        params.memory_service_cycles,
        config,
    )?;
    parallel_wcet(&estimator, phases)
}

impl Figure2 {
    /// Runs both sub-experiments.
    ///
    /// # Errors
    ///
    /// Never fails for the default parameters.
    pub fn run(params: Fig2Params) -> Result<Self> {
        let mesh = Mesh::square(params.mesh_side)?;
        let memory = Coord::from_row_col(0, 0);
        let placements = Placement::paper_set(&mesh, memory)?;

        // Figure 2(a): placement P0, sweep the maximum packet size.
        let p0_phases = phases_for(&placements[0], params.seed)?;
        let mut packet_sizes = Vec::new();
        for l in [1u32, 4, 8] {
            let regular = app_wcet(params, NocConfig::regular(l), &p0_phases)?;
            let proposed = app_wcet(params, NocConfig::waw_wap(), &p0_phases)?;
            packet_sizes.push(PacketSizePoint {
                max_packet_flits: l,
                regular_wcet: regular,
                waw_wap_wcet: proposed,
            });
        }

        // Figure 2(b): L = 1, sweep the placement.
        let mut placement_points = Vec::new();
        for placement in &placements {
            let phases = phases_for(placement, params.seed)?;
            let regular = app_wcet(params, NocConfig::regular(1), &phases)?;
            let proposed = app_wcet(params, NocConfig::waw_wap(), &phases)?;
            placement_points.push(PlacementPoint {
                placement: placement.name().to_string(),
                regular_wcet: regular,
                waw_wap_wcet: proposed,
            });
        }

        Ok(Self {
            packet_sizes,
            placements: placement_points,
        })
    }

    /// Variability (max / min WCET across placements) of a design in the
    /// Figure 2(b) data: the paper reports over 6× for the regular wNoC and
    /// roughly 20% for WaW + WaP.
    pub fn placement_variability(&self, waw_wap: bool) -> f64 {
        let values: Vec<u64> = self
            .placements
            .iter()
            .map(|p| {
                if waw_wap {
                    p.waw_wap_wcet
                } else {
                    p.regular_wcet
                }
            })
            .collect();
        let max = values.iter().max().copied().unwrap_or(0) as f64;
        let min = values.iter().min().copied().unwrap_or(1).max(1) as f64;
        max / min
    }

    /// Renders both panels as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Figure 2(a) — 3DPP WCET estimate vs maximum packet size (placement P0)\n");
        out.push_str("L      | regular wNoC | WaW+WaP   | improvement\n");
        for point in &self.packet_sizes {
            out.push_str(&format!(
                "L{:<5} | {:>12} | {:>9} | {:>10.2}x\n",
                point.max_packet_flits,
                point.regular_wcet,
                point.waw_wap_wcet,
                point.improvement()
            ));
        }
        out.push_str("\nFigure 2(b) — 3DPP WCET estimate vs placement (L = 1)\n");
        out.push_str("place  | regular wNoC | WaW+WaP\n");
        for point in &self.placements {
            out.push_str(&format!(
                "{:<6} | {:>12} | {:>9}\n",
                point.placement, point.regular_wcet, point.waw_wap_wcet
            ));
        }
        out.push_str(&format!(
            "\nvariability across placements: regular {:.2}x, WaW+WaP {:.2}x\n",
            self.placement_variability(false),
            self.placement_variability(true)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig2Params {
        Fig2Params {
            mesh_side: 8,
            memory_service_cycles: 30,
            seed: 2016,
        }
    }

    #[test]
    fn figure2a_improvement_grows_with_packet_size() {
        let fig = Figure2::run(small_params()).unwrap();
        assert_eq!(fig.packet_sizes.len(), 3);
        // WaW+WaP wins for every packet size, and its advantage grows with L
        // (paper: 1.4x at L1 up to 3.9x at L8).
        let improvements: Vec<f64> = fig.packet_sizes.iter().map(|p| p.improvement()).collect();
        assert!(improvements[0] > 1.0, "L1 improvement {}", improvements[0]);
        assert!(
            improvements[2] > improvements[0],
            "L8 ({}) should beat L1 ({})",
            improvements[2],
            improvements[0]
        );
        // The proposed design is insensitive to L.
        let wap: Vec<u64> = fig.packet_sizes.iter().map(|p| p.waw_wap_wcet).collect();
        assert_eq!(wap[0], wap[1]);
        assert_eq!(wap[1], wap[2]);
    }

    #[test]
    fn figure2b_placement_variability_shrinks() {
        let fig = Figure2::run(small_params()).unwrap();
        assert_eq!(fig.placements.len(), 4);
        let regular_var = fig.placement_variability(false);
        let proposed_var = fig.placement_variability(true);
        // The paper reports >6x vs ~1.2x; our platform differs but the ordering
        // and the rough magnitudes must hold.
        assert!(
            regular_var > 1.5 * proposed_var,
            "regular {regular_var} vs proposed {proposed_var}"
        );
        assert!(proposed_var < 2.0, "proposed variability {proposed_var}");
        // WaW+WaP achieves a lower WCET than the regular design for every
        // placement.
        for point in &fig.placements {
            assert!(
                point.waw_wap_wcet < point.regular_wcet,
                "{}: {} vs {}",
                point.placement,
                point.waw_wap_wcet,
                point.regular_wcet
            );
        }
    }

    #[test]
    fn render_mentions_every_placement_and_packet_size() {
        let fig = Figure2::run(small_params()).unwrap();
        let text = fig.render();
        for name in ["P0", "P1", "P2", "P3", "L1", "L4", "L8", "variability"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
