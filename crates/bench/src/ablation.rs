//! Experiment A1 (ours) — ablation of the two mechanisms: how much of the WCTT
//! improvement comes from WaP (minimum-size packets) and how much from WaW
//! (weighted arbitration)?
//!
//! The paper always evaluates the two together; this ablation computes the
//! Table-II style worst-case WCTT of the 8×8 all-to-`R(0,0)` scenario for the
//! four combinations, with the message size of a cache-line response (4 flits).

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::{RegularWcttModel, WeightedWcttModel};
use wnoc_core::flow::FlowSet;
use wnoc_core::weights::WeightTable;
use wnoc_core::{Coord, Mesh, Result, RouterTiming};

/// WCTT summary of one design point of the ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable design label.
    pub design: String,
    /// Worst per-flow WCTT bound.
    pub max: u64,
    /// Mean per-flow WCTT bound.
    pub mean: f64,
    /// Best per-flow WCTT bound.
    pub min: u64,
}

/// The full ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablation {
    /// Mesh side used.
    pub side: u16,
    /// Message size in regular-packetization flits.
    pub message_flits: u32,
    /// One point per design combination.
    pub points: Vec<AblationPoint>,
}

fn summarise(design: &str, values: &[u64]) -> AblationPoint {
    let max = values.iter().max().copied().unwrap_or(0);
    let min = values.iter().min().copied().unwrap_or(0);
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len().max(1) as f64;
    AblationPoint {
        design: design.to_string(),
        max,
        mean,
        min,
    }
}

impl Ablation {
    /// Runs the ablation for a `side × side` mesh and a message of
    /// `message_flits` flits (4 = one cache line), with maximum packet size
    /// `max_packet_flits` for the designs that use regular packetization.
    ///
    /// # Errors
    ///
    /// Never fails for valid parameters.
    pub fn run(side: u16, message_flits: u32, max_packet_flits: u32) -> Result<Self> {
        let mesh = Mesh::square(side)?;
        let memory = Coord::from_row_col(0, 0);
        let flows = FlowSet::all_to_one(&mesh, memory)?;
        let weights = WeightTable::from_flow_set(&flows);
        let timing = RouterTiming::CANONICAL;

        // Baseline: round robin + regular packetization (contenders of size L).
        let mut baseline = RegularWcttModel::new(&flows, timing, max_packet_flits);
        // WaP only: round robin, but every packet in the network is one flit.
        let mut wap_only = RegularWcttModel::new(&flows, timing, 1);
        // WaW only: weighted arbitration, packets stay L flits long.
        let waw_only = WeightedWcttModel::new(weights.clone(), timing, max_packet_flits);
        // Full proposal: weighted arbitration + single-flit slices.
        let full = WeightedWcttModel::new(weights, timing, 1);

        let mut baseline_values = Vec::new();
        let mut wap_values = Vec::new();
        let mut waw_values = Vec::new();
        let mut full_values = Vec::new();
        for (id, _flow) in flows.iter() {
            let route = flows.route(id).expect("route exists");
            baseline_values.push(baseline.route_wctt(route, message_flits));
            // Under WaP the message is sliced into single-flit packets (one
            // extra slice for the replicated control information).
            let slices = message_flits + u32::from(message_flits > 1);
            wap_values.push(wap_only.message_wctt(route, &vec![1; slices as usize]));
            waw_values.push(waw_only.message_wctt(route, 1));
            full_values.push(full.message_wctt(route, slices));
        }

        Ok(Self {
            side,
            message_flits,
            points: vec![
                summarise("regular (RR + L-flit packets)", &baseline_values),
                summarise("WaP only (RR + 1-flit packets)", &wap_values),
                summarise("WaW only (weighted + L-flit packets)", &waw_values),
                summarise("WaW + WaP", &full_values),
            ],
        })
    }

    /// Looks up a point by its design label prefix.
    pub fn point(&self, prefix: &str) -> Option<&AblationPoint> {
        self.points.iter().find(|p| p.design.starts_with(prefix))
    }

    /// Renders the ablation as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Ablation — {0}x{0} mesh, all nodes -> R(0,0), {1}-flit messages\n",
            self.side, self.message_flits
        ));
        out.push_str(
            "design                                  |        max |       mean |    min\n",
        );
        for point in &self.points {
            out.push_str(&format!(
                "{:<39} | {:>10} | {:>10.1} | {:>6}\n",
                point.design, point.max, point.mean, point.min
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_mechanism_helps_and_the_combination_wins() {
        let ablation = Ablation::run(8, 4, 4).unwrap();
        let baseline = ablation.point("regular").unwrap().max;
        let wap_only = ablation.point("WaP only").unwrap().max;
        let waw_only = ablation.point("WaW only").unwrap().max;
        let full = ablation.point("WaW + WaP").unwrap().max;

        // WaP alone shrinks every *contender* slot to one flit, but under plain
        // round robin the sender's own message is now several packets that each
        // re-arbitrate, so the end-to-end bound of the worst flow stays in the
        // same order of magnitude as the baseline — WaP needs WaW to pay off.
        assert!(wap_only > baseline / 10);
        assert!(wap_only < 10 * baseline);
        // WaW alone removes the exponential unfairness entirely.
        assert!(waw_only < baseline / 100);
        // The combination is the best of all four for the worst-served flow.
        assert!(full <= waw_only);
        assert!(full <= wap_only);
        assert!(full < baseline / 1000);
    }

    #[test]
    fn ablation_has_four_points() {
        let ablation = Ablation::run(4, 4, 4).unwrap();
        assert_eq!(ablation.points.len(), 4);
        let text = ablation.render();
        assert!(text.contains("WaW + WaP"));
        assert!(text.contains("WaP only"));
    }
}
