//! Experiment E1 — Table I: arbitration weights of router `R(1,1)` in a 2×2
//! mesh, plain round robin vs WaW.

use serde::{Deserialize, Serialize};

use wnoc_core::weights::WeightTable;
use wnoc_core::{Coord, Mesh, Result};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightRow {
    /// The paper's label for the (input, output) pair, e.g. `W(X-,PME)`.
    pub pair: String,
    /// Bandwidth share under plain round robin ("Regular Mesh" column).
    pub round_robin: f64,
    /// Bandwidth share under WaW ("Weighted Mesh" column).
    pub waw: f64,
}

/// The complete Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// The router the weights are reported for.
    pub router: Coord,
    /// The rows, sorted by output then input port.
    pub rows: Vec<WeightRow>,
}

impl Table1 {
    /// Computes the table for router `R(1,1)` of a 2×2 mesh under the
    /// all-to-all flow assumption, exactly as in the paper.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept for API uniformity.
    pub fn run() -> Result<Self> {
        let mesh = Mesh::square(2)?;
        let router = Coord::from_row_col(1, 1);
        let weights = WeightTable::all_to_all(&mesh)?;
        let mut rows = Vec::new();
        for (input, output, _quota) in weights.pairs(router) {
            rows.push(WeightRow {
                pair: format!(
                    "W({},{})",
                    input.paper_input_label(),
                    output.paper_output_label()
                ),
                round_robin: weights.round_robin_share(router, input, output),
                waw: weights.weight(router, input, output),
            });
        }
        Ok(Self { router, rows })
    }

    /// Looks up a row by its pair label.
    pub fn row(&self, pair: &str) -> Option<&WeightRow> {
        self.rows.iter().find(|r| r.pair == pair)
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table I — arbitration weights for {} in a 2x2 mesh\n",
            self.router
        ));
        out.push_str("pair           | regular mesh | weighted mesh (WaW)\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<14} | {:>12.2} | {:>19.2}\n",
                row.pair, row.round_robin, row.waw
            ));
        }
        out
    }
}

/// Sanity helper used by tests and the binary: the WaW weights of every output
/// port of the router sum to one.
pub fn weights_sum_to_one(table: &Table1) -> bool {
    use std::collections::HashMap;
    let mut sums: HashMap<String, f64> = HashMap::new();
    for row in &table.rows {
        let output = row.pair.split(',').nth(1).unwrap_or("").to_string();
        *sums.entry(output).or_insert(0.0) += row.waw;
    }
    sums.values().all(|s| (s - 1.0).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_values() {
        let table = Table1::run().unwrap();
        // Table I of the paper.
        let expect = [
            ("W(PME,X-)", 1.0, 1.0),
            ("W(PME,Y-)", 0.5, 0.5),
            ("W(X+,PME)", 0.5, 1.0 / 3.0),
            ("W(X+,Y-)", 0.5, 0.5),
            ("W(Y+,PME)", 0.5, 2.0 / 3.0),
        ];
        for (pair, rr, waw) in expect {
            let row = table.row(pair).unwrap_or_else(|| panic!("missing {pair}"));
            assert!(
                (row.round_robin - rr).abs() < 1e-9,
                "{pair} rr {}",
                row.round_robin
            );
            assert!((row.waw - waw).abs() < 1e-9, "{pair} waw {}", row.waw);
        }
    }

    #[test]
    fn weights_normalise() {
        let table = Table1::run().unwrap();
        assert!(weights_sum_to_one(&table));
    }

    #[test]
    fn render_mentions_all_pairs() {
        let table = Table1::run().unwrap();
        let text = table.render();
        for row in &table.rows {
            assert!(text.contains(&row.pair));
        }
    }
}
