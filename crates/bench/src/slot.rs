//! Experiment E7 — the Section III worked example: worst-case latency at a
//! single output port contended by four input ports, regular packetization
//! (`3·L + S`) vs WaP (`3·m + m`), both analytically and observed on a single
//! simulated router.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::slot::{contended_port_latency, wap_improvement_factor};
use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Mesh, NocConfig, Result};
use wnoc_sim::Simulation;

/// One row of the slot-model experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotPoint {
    /// Maximum packet size `L` in flits.
    pub max_packet_flits: u32,
    /// Analytical worst-case latency with regular packetization (`3·L + S`).
    pub regular_latency: u64,
    /// Analytical worst-case latency with WaP (`3·m + m`, `m` = 1).
    pub wap_latency: u64,
    /// Improvement factor.
    pub improvement: f64,
}

/// The slot-model experiment: the analytical sweep plus one simulated
/// cross-check of a 4-way contended ejection port.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotModel {
    /// Analytical sweep over maximum packet sizes.
    pub points: Vec<SlotPoint>,
    /// Observed worst traversal latency of a 4-flit message through a 4-way
    /// contended hotspot under the regular design (simulated).
    pub observed_regular: u64,
    /// Same under WaW + WaP.
    pub observed_wap: u64,
}

impl SlotModel {
    /// Runs the analytical sweep (contending inputs fixed at 4, as in the
    /// paper's example) and a small simulated cross-check on a 3×3 mesh whose
    /// centre node is a hotspot reached from four directions.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn run() -> Result<Self> {
        let contenders = 4;
        let points = [2u32, 4, 8, 16]
            .iter()
            .map(|&l| SlotPoint {
                max_packet_flits: l,
                regular_latency: contended_port_latency(contenders, l, l),
                wap_latency: contended_port_latency(contenders, 1, 1),
                improvement: wap_improvement_factor(contenders, l, l, 1),
            })
            .collect();

        // Simulated cross-check: the centre of a 3x3 mesh is flooded from its
        // four neighbours; the observed worst latency of a 4-flit message is
        // much larger under regular packetization than under WaW+WaP.
        let mesh = Mesh::square(3)?;
        let hotspot = Coord::from_row_col(1, 1);
        let measure = |config: NocConfig| -> Result<u64> {
            let flows = FlowSet::from_pairs(
                &mesh,
                [(0u16, 1u16), (1, 0), (1, 2), (2, 1)]
                    .iter()
                    .map(|&(r, c)| {
                        (
                            mesh.node_id(Coord::from_row_col(r, c))
                                .expect("inside mesh"),
                            mesh.node_id(hotspot).expect("inside mesh"),
                        )
                    }),
            )?;
            let mut sim = Simulation::new(mesh, config, &flows)?;
            let report = sim.run_saturated(&flows, 4, 1_000, 2_000)?;
            Ok(report.max())
        };
        let observed_regular = measure(NocConfig::regular(4))?;
        let observed_wap = measure(NocConfig::waw_wap())?;

        Ok(Self {
            points,
            observed_regular,
            observed_wap,
        })
    }

    /// Renders the experiment as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Section III slot model — 4 contending inputs at one output port\n");
        out.push_str("L      | regular (3L+S) | WaP (3m+m) | improvement\n");
        for p in &self.points {
            out.push_str(&format!(
                "L{:<5} | {:>14} | {:>10} | {:>10.2}x\n",
                p.max_packet_flits, p.regular_latency, p.wap_latency, p.improvement
            ));
        }
        out.push_str(&format!(
            "\nObserved on a simulated 4-way hotspot (4-flit messages): regular {} cycles, WaW+WaP {} cycles\n",
            self.observed_regular, self.observed_wap
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_points_match_the_formula() {
        let slot = SlotModel::run().unwrap();
        for p in &slot.points {
            assert_eq!(
                p.regular_latency,
                3 * u64::from(p.max_packet_flits) + u64::from(p.max_packet_flits)
            );
            assert_eq!(p.wap_latency, 4);
            assert!(p.improvement > 1.0);
        }
        // Improvement grows with L.
        assert!(slot.points.last().unwrap().improvement > slot.points[0].improvement);
    }

    #[test]
    fn simulated_hotspot_reflects_the_slot_model() {
        let slot = SlotModel::run().unwrap();
        assert!(slot.observed_regular > 0);
        assert!(slot.observed_wap > 0);
        let text = slot.render();
        assert!(text.contains("improvement"));
    }
}
