//! Bound-vs-VC sweep: virtual channels as a design axis (experiment `V1`).
//!
//! Sweeps the per-port virtual-channel count {1, 2, 3, 4} crossed with both
//! static flow → VC assignment rules over the all-to-one hotspot platform on
//! the 4×4 and 8×8 meshes under the regular round-robin design, printing
//! observed closed-loop worst latencies next to the chained-blocking bound
//! and the priority-preemptive bound of Nikolić & Indrusiak
//! (arXiv:1605.07888):
//!
//! * **analytic** — the paper-form chained-blocking bound (VC-independent;
//!   only sound as a *message* bound up to one maximum packet) and the
//!   worst finite priority-preemptive bound, whose per-flow value depends on
//!   the VC priority a flow is assigned;
//! * **observed** — the worst closed-loop traversal latency on the
//!   cycle-accurate simulator built with the same [`VcConfig`].
//!
//! Flows whose higher-priority interference diverges under closed-loop
//! saturation carry the saturation sentinel (no finite bound exists for
//! them); the table reports how many flows per configuration are saturated
//! that way, and checks dominance for every finite-bounded flow.

use serde::{Deserialize, Serialize};

use wnoc_core::analysis::oracle::{RegularOracle, WcttBoundModel};
use wnoc_core::analysis::preemptive::{PreemptiveOracle, SATURATION_SENTINEL};
use wnoc_core::flow::FlowSet;
use wnoc_core::vc::{VcAssignment, VcConfig};
use wnoc_core::{BufferConfig, Coord, Mesh, NocConfig, Result};
use wnoc_sim::Simulation;

/// The VC configurations swept, in rendering order: the single-queue paper
/// design, then counts 2–4 under both assignment rules.
pub fn swept_configs() -> Vec<VcConfig> {
    let mut configs = vec![VcConfig::single()];
    for count in 2..=4u32 {
        for assignment in [VcAssignment::FlowIndex, VcAssignment::Distance] {
            configs.push(VcConfig::new(count, assignment).expect("swept VC counts are in range"));
        }
    }
    configs
}

/// One VC sample of one platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcPoint {
    /// The VC configuration label (`vc=1`, `vc=3/idx`, …).
    pub label: String,
    /// Worst observed closed-loop traversal latency across all flows.
    pub observed_max: u64,
    /// Worst-flow chained-blocking bound (VC-independent).
    pub regular_bound: u64,
    /// Worst finite priority-preemptive bound, or `None` when every flow is
    /// saturated.
    pub preemptive_max_finite: Option<u64>,
    /// Flows whose preemptive bound is the saturation sentinel (closed-loop
    /// saturation of a strictly-higher-priority VC admits no finite bound).
    pub saturated_flows: usize,
    /// Finite-bounded flows whose observation exceeded their preemptive
    /// bound — must be zero (the golden pins it).
    pub dominance_violations: usize,
}

/// The sweep of one mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcSweepRow {
    /// Mesh side.
    pub side: u16,
    /// Design label.
    pub design: String,
    /// Probe message size in regular-packetization flits.
    pub message_flits: u32,
    /// One sample per entry of [`swept_configs`].
    pub points: Vec<VcPoint>,
}

/// The complete bound-vs-VC table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcSweepTable {
    /// One row per mesh.
    pub rows: Vec<VcSweepRow>,
}

impl VcSweepTable {
    /// Runs the sweep: 4×4 and 8×8 all-to-one hotspot platforms under the
    /// regular design (`L = 4`, one-packet probes), every configuration of
    /// [`swept_configs`].  Fully deterministic (closed-loop probing involves
    /// no randomness).
    ///
    /// # Errors
    ///
    /// Returns an error if a platform fails to build or drain.
    pub fn generate() -> Result<Self> {
        let mut rows = Vec::new();
        let config = NocConfig::regular(4);
        let message_flits = 4u32;
        for side in [4u16, 8] {
            let mesh = Mesh::square(side)?;
            let hotspot = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, hotspot)?;
            let buffers = BufferConfig::uniform(config.input_buffer_flits);
            let cycles = if side == 4 { 2_000 } else { 3_000 };
            let mut points = Vec::new();
            for vcs in swept_configs() {
                let mut sim = Simulation::with_vcs(mesh, config, &flows, &buffers, vcs)?;
                let report = sim.run_closed_loop(&flows, message_flits, cycles)?;
                points.push(sample_point(
                    &flows,
                    &config,
                    &buffers,
                    vcs,
                    message_flits,
                    &report.per_flow_max(),
                    report.max(),
                ));
            }
            rows.push(VcSweepRow {
                side,
                design: config.label(),
                message_flits,
                points,
            });
        }
        Ok(Self { rows })
    }

    /// Deterministic human-readable rendering (the golden snapshot).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Virtual channels as a design axis — bound vs VC count, all-to-one hotspot R(0,0)\n",
        );
        out.push_str(
            "(closed-loop probing; 'sat' counts flows with no finite bound under \
             closed-loop saturation of a higher-priority VC)\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "\n== {}x{} {} mf={} ==\n",
                row.side, row.side, row.design, row.message_flits
            ));
            out.push_str(
                "vc config | observed max | regular bound | preemptive max | sat | violations\n",
            );
            for point in &row.points {
                let preemptive = match point.preemptive_max_finite {
                    Some(bound) => bound.to_string(),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "{:>9} | {:>12} | {:>13} | {:>14} | {:>3} | {:>10}\n",
                    point.label,
                    point.observed_max,
                    point.regular_bound,
                    preemptive,
                    point.saturated_flows,
                    point.dominance_violations
                ));
            }
        }
        out
    }
}

/// Computes one table point from a finished run.
fn sample_point(
    flows: &FlowSet,
    config: &NocConfig,
    buffers: &BufferConfig,
    vcs: VcConfig,
    message_flits: u32,
    per_flow_max: &[(wnoc_core::FlowId, u64)],
    observed_max: u64,
) -> VcPoint {
    let l = config.packetization.worst_case_contender_flits();
    let mut regular = RegularOracle::new(flows, config, l);
    let mut preemptive = PreemptiveOracle::new(flows, config, buffers, vcs);
    let regular_bound = flows
        .iter()
        .filter_map(|(id, _)| regular.message_bound(id, message_flits))
        .max()
        .unwrap_or(0);
    let mut max_finite = None;
    let mut saturated = 0usize;
    for (id, _) in flows.iter() {
        match preemptive.message_bound(id, message_flits) {
            Some(bound) if bound >= SATURATION_SENTINEL => saturated += 1,
            Some(bound) => max_finite = Some(max_finite.map_or(bound, |m: u64| m.max(bound))),
            None => {}
        }
    }
    let mut violations = 0usize;
    for &(flow, observed) in per_flow_max {
        if let Some(bound) = preemptive.message_bound(flow, message_flits) {
            if bound < SATURATION_SENTINEL && observed > bound {
                violations += 1;
            }
        }
    }
    VcPoint {
        label: vcs.label(),
        observed_max,
        regular_bound,
        preemptive_max_finite: max_finite,
        saturated_flows: saturated,
        dominance_violations: violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_config_in_order() {
        let configs = swept_configs();
        assert_eq!(configs.len(), 7);
        assert_eq!(configs[0], VcConfig::single());
        let labels: Vec<String> = configs.iter().map(VcConfig::label).collect();
        assert_eq!(
            labels,
            [
                "vc=1",
                "vc=2/idx",
                "vc=2/dist",
                "vc=3/idx",
                "vc=3/dist",
                "vc=4/idx",
                "vc=4/dist"
            ]
        );
    }

    /// A reduced sweep (4×4 only) exercising the full pipeline; the complete
    /// table is covered by the golden snapshot in release CI.
    #[test]
    fn small_sweep_invariants() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let config = NocConfig::regular(4);
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        for vcs in [
            VcConfig::single(),
            VcConfig::new(2, VcAssignment::FlowIndex).unwrap(),
            VcConfig::new(3, VcAssignment::Distance).unwrap(),
        ] {
            let mut sim = Simulation::with_vcs(mesh, config, &flows, &buffers, vcs).unwrap();
            let report = sim.run_closed_loop(&flows, 4, 1_500).unwrap();
            let point = sample_point(
                &flows,
                &config,
                &buffers,
                vcs,
                4,
                &report.per_flow_max(),
                report.max(),
            );
            assert_eq!(point.dominance_violations, 0, "{}", point.label);
            assert!(point.observed_max > 0, "{}", point.label);
            if vcs.is_single() {
                // The single-queue design has no higher-priority VC to
                // saturate, and the preemptive bound reduces to the regular
                // chained-blocking bound at the calibration depth.
                assert_eq!(point.saturated_flows, 0);
                assert_eq!(point.preemptive_max_finite, Some(point.regular_bound));
            }
        }
    }

    #[test]
    fn render_lists_every_config() {
        let table = VcSweepTable {
            rows: vec![VcSweepRow {
                side: 4,
                design: "regular".to_string(),
                message_flits: 4,
                points: swept_configs()
                    .iter()
                    .map(|vcs| VcPoint {
                        label: vcs.label(),
                        observed_max: 10,
                        regular_bound: 20,
                        preemptive_max_finite: Some(20),
                        saturated_flows: 0,
                        dominance_violations: 0,
                    })
                    .collect(),
            }],
        };
        let text = table.render();
        for vcs in swept_configs() {
            assert!(text.contains(&vcs.label()), "{text}");
        }
    }
}
