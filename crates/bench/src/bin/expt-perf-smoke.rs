//! Performance smoke test of the simulation kernel: runs a fixed-seed
//! conformance campaign (closed-loop probing across the whole scenario
//! space), measures end-to-end throughput in scenarios per second — plus the
//! closed-loop kernel throughput in simulated cycles per second — and the
//! process' peak RSS, and writes the result as `BENCH_sim.json` so the bench
//! trajectory accumulates comparable data points.
//!
//! Usage:
//!
//! ```text
//! expt-perf-smoke [--scenarios N] [--seed S] [--threads T] [--samples K]
//!                 [--out PATH] [--baseline PATH]
//! ```
//!
//! Defaults: 50 scenarios, seed 7, one thread (thread count changes wall
//! time, so comparable data points pin it), 3 samples, output
//! `BENCH_sim.json`.  The campaign runs `K` times and the **median**
//! throughput is reported and gated — shared CI runners jitter enough that a
//! single sample flakes; all raw samples are printed so a noisy run is
//! diagnosable from the job log.  With `--baseline PATH` the run exits
//! non-zero if the median regressed more than 20% below the committed
//! baseline's `scenarios_per_sec` — the CI `perf-smoke` job gates on this.
//! Baselines are tied to a hardware class; regenerate
//! `perf/BENCH_sim.baseline.json` when the runner class changes, not to
//! paper over a slowdown.

use std::time::Instant;

use wnoc_conformance::Campaign;

/// Peak resident set size in kilobytes, from `/proc/self/status` (`VmHWM`).
/// Returns 0 where procfs is unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Absolute form of `path` for failure hints: a hint quoting a CWD-relative
/// path is useless once CI has changed directories, so resolve it eagerly
/// (falling back to `cwd/path` when the file does not exist yet).
fn absolute(path: &str) -> String {
    std::fs::canonicalize(path)
        .ok()
        .or_else(|| std::env::current_dir().ok().map(|cwd| cwd.join(path)))
        .map_or_else(|| path.to_owned(), |p| p.display().to_string())
}

/// Extracts a numeric field from the flat JSON this binary writes.
fn json_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = json.find(&key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut scenarios: usize = 50;
    let mut seed: u64 = 7;
    let mut threads: usize = 1;
    let mut samples: usize = 3;
    let mut out = String::from("BENCH_sim.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--scenarios" => {
                scenarios = value("--scenarios")
                    .parse()
                    .expect("--scenarios takes a number");
            }
            "--seed" => seed = value("--seed").parse().expect("--seed takes a number"),
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number");
            }
            "--samples" => {
                samples = value("--samples")
                    .parse()
                    .expect("--samples takes a number");
                assert!(samples > 0, "--samples must be at least 1");
            }
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: expt-perf-smoke [--scenarios N] \
                     [--seed S] [--threads T] [--samples K] [--out PATH] [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let campaign = Campaign::new(seed, scenarios);
    // Median of `samples` runs: a single sample on a shared runner flakes.
    let mut rates: Vec<f64> = Vec::with_capacity(samples);
    let mut simulated_cycles = 0u64;
    for sample in 0..samples {
        let start = Instant::now();
        let report = match campaign.run(threads) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("perf-smoke campaign aborted: {error}");
                std::process::exit(1);
            }
        };
        let elapsed = start.elapsed().as_secs_f64();
        if !report.passed() {
            eprintln!(
                "perf-smoke campaign recorded violations:\n{}",
                report.render()
            );
            std::process::exit(1);
        }
        // Identical every sample (the campaign is deterministic).
        simulated_cycles = report.simulated_cycles();
        let rate = scenarios as f64 / elapsed.max(1e-9);
        println!(
            "perf-smoke: sample {}/{samples}: {rate:.2} scenarios/sec ({elapsed:.3}s)",
            sample + 1
        );
        rates.push(rate);
    }
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let scenarios_per_sec = sorted[sorted.len() / 2];
    // The median sample's wall time, so `scenarios / elapsed_seconds`
    // remains consistent with `scenarios_per_sec` (as in single-sample
    // baselines).
    let elapsed = scenarios as f64 / scenarios_per_sec.max(1e-9);
    // Closed-loop kernel throughput: simulated cycles per wall second at the
    // median sample (the quantity the event-horizon kernel optimises).
    let cycles_per_sec = simulated_cycles as f64 / elapsed.max(1e-9);

    let rss = peak_rss_kb();
    let raw = rates
        .iter()
        .map(|r| format!("{r:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"scenarios\": {scenarios},\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \
         \"samples\": {samples},\n  \"raw_scenarios_per_sec\": [{raw}],\n  \
         \"elapsed_seconds\": {elapsed:.3},\n  \"scenarios_per_sec\": {scenarios_per_sec:.2},\n  \
         \"simulated_cycles\": {simulated_cycles},\n  \"cycles_per_sec\": {cycles_per_sec:.0},\n  \
         \"peak_rss_kb\": {rss}\n}}\n"
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "perf-smoke: {scenarios} scenarios, seed {seed}, {threads} thread(s), \
         median of {samples}: {scenarios_per_sec:.2} scenarios/sec \
         ({cycles_per_sec:.0} cycles/sec closed-loop), peak RSS {rss} kB -> {out}"
    );

    if let Some(path) = baseline {
        let reference = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let reference_rate = json_number(&reference, "scenarios_per_sec")
            .unwrap_or_else(|| panic!("baseline {path} lacks scenarios_per_sec"));
        let floor = 0.8 * reference_rate;
        println!(
            "perf-smoke: baseline {reference_rate:.2} scenarios/sec \
             (floor {floor:.2}) from {path}"
        );
        if scenarios_per_sec < floor {
            eprintln!(
                "perf-smoke: median throughput regressed >20%: {scenarios_per_sec:.2} < \
                 {floor:.2} scenarios/sec (baseline {reference_rate:.2}; raw samples [{raw}])\n\
                 perf-smoke: this run's bench JSON: {}\n\
                 perf-smoke: committed baseline:    {}\n\
                 perf-smoke: a legitimate hardware-class change means copying the bench JSON \
                 over the baseline; output-shape changes are accepted via \
                 ./scripts/regen-golden.sh, never by editing baselines",
                absolute(&out),
                absolute(&path)
            );
            std::process::exit(1);
        }
    }
}
