//! Bound-vs-depth sweep (`B1`): buffer depth as a first-class design axis.
//!
//! Sweeps uniform router input-buffer depths {1, 2, 4, 8, ∞-equivalent} over
//! the all-to-one hotspot platform on the 4×4 and 8×8 meshes, for both the
//! regular design and WaW + WaP, printing observed closed-loop worst
//! latencies next to the paper-form, buffer-aware and backpressured analytic
//! bounds (see `wnoc_bench::buffer_sweep`).  No arguments; the output is
//! fully deterministic and golden-snapshot-tested.

use wnoc_bench::buffer_sweep::BufferSweepTable;

fn main() {
    match BufferSweepTable::generate() {
        Ok(table) => print!("{}", table.render()),
        Err(error) => {
            eprintln!("buffer sweep failed: {error}");
            std::process::exit(1);
        }
    }
}
