//! Bound-vs-VC sweep (`V1`): virtual channels as a first-class design axis.
//!
//! Sweeps per-port VC counts {1, 2, 3, 4} crossed with both static flow → VC
//! assignment rules over the all-to-one hotspot platform on the 4×4 and 8×8
//! meshes under the regular design, printing observed closed-loop worst
//! latencies next to the chained-blocking and priority-preemptive analytic
//! bounds (see `wnoc_bench::vc_sweep`).  No arguments; the output is fully
//! deterministic and golden-snapshot-tested.

use wnoc_bench::vc_sweep::VcSweepTable;

fn main() {
    match VcSweepTable::generate() {
        Ok(table) => print!("{}", table.render()),
        Err(error) => {
            eprintln!("vc sweep failed: {error}");
            std::process::exit(1);
        }
    }
}
