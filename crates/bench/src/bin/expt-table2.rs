//! Regenerates Table II: analytical WCTT bounds for mesh sizes 2×2…8×8 plus a
//! simulated validation of the ordering on small meshes.
//!
//! Pass `--no-sim` to skip the cycle-accurate validation runs.

fn main() {
    let simulate = !std::env::args().any(|a| a == "--no-sim");
    let table = wnoc_bench::Table2::run(simulate).expect("table 2 computation");
    print!("{}", table.render());
}
