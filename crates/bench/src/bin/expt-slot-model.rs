//! Regenerates the Section III worked example: worst-case latency at a 4-way
//! contended output port, regular packetization vs WaP.

fn main() {
    let slot = wnoc_bench::SlotModel::run().expect("slot model computation");
    print!("{}", slot.render());
}
