//! Regenerates Table III: per-core WCET of the EEMBC-like suite with WaW+WaP
//! normalised to the regular wNoC (8×8 mesh, memory at R(0,0)).

fn main() {
    let table = wnoc_bench::Table3::run(8, 4, 1).expect("table 3 computation");
    print!("{}", table.render());
    println!(
        "\ncores worse: {}   cores better: {}   worst slowdown: {:.2}x   best improvement: {:.4}",
        table.cores_worse(),
        table.cores_better(),
        table.worst_slowdown(),
        table.best_improvement()
    );
}
