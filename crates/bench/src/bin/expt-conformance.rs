//! Conformance campaign: cross-validates the cycle-accurate simulator against
//! every analytic WCTT bound on a randomized, seeded scenario campaign, run on
//! the parallel campaign runner.
//!
//! Usage: `expt-conformance [--scenarios N] [--seed S] [--threads T]
//!                           [--buffer-depths | --vc-sweep | --bursty-sweep
//!                            | --fault-sweep]
//!                           [--report PATH]`
//!
//! Defaults: 200 scenarios, seed 7, one worker per available core.  With
//! `--buffer-depths` the campaign sweeps the buffer-depth dimension as well
//! (uniform depths {1, 2, 4, 8, ∞-equivalent} plus seeded heterogeneous
//! per-port assignments); with `--vc-sweep` it sweeps the virtual-channel
//! dimension (VC counts 1–4 crossed with both static flow → VC assignment
//! rules) instead; with `--bursty-sweep` it samples bursty arrival-curve
//! scenarios checked against the graph-based buffer-aware oracle (see
//! `docs/ORACLES.md`); with `--fault-sweep` it injects sampled link/router
//! failures — cycle-0 activations are held to freshly built degraded-mode
//! oracles over the up*/down* rerouted flows, mid-run activations must
//! drain without deadlock (see `docs/ORACLES.md`); with `--report PATH` the
//! machine-readable JSON
//! report is written to PATH (the nightly CI artifact).  The stdout summary
//! depends only on `(scenarios, seed, dimension)` — never on the worker
//! count — so it is snapshot-testable; timing goes to stderr.  Exits
//! non-zero if any dominance or ordering violation is found.

use std::time::Instant;

use wnoc_conformance::Campaign;

fn main() {
    // This binary gates CI, so misconfiguration must be loud: unknown flags
    // are an error, never silently replaced by defaults.
    let mut scenarios: usize = 200;
    let mut seed: u64 = 7;
    let mut threads: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut buffer_depths = false;
    let mut vc_sweep = false;
    let mut bursty_sweep = false;
    let mut fault_sweep = false;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--scenarios" => {
                scenarios = value("--scenarios")
                    .parse()
                    .expect("--scenarios takes a number");
            }
            "--seed" => seed = value("--seed").parse().expect("--seed takes a number"),
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number");
            }
            "--buffer-depths" => buffer_depths = true,
            "--vc-sweep" => vc_sweep = true,
            "--bursty-sweep" => bursty_sweep = true,
            "--fault-sweep" => fault_sweep = true,
            "--report" => report_path = Some(value("--report")),
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: \
                     expt-conformance [--scenarios N] [--seed S] [--threads T] \
                     [--buffer-depths | --vc-sweep | --bursty-sweep | --fault-sweep] \
                     [--report PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if [buffer_depths, vc_sweep, bursty_sweep, fault_sweep]
        .iter()
        .filter(|&&f| f)
        .count()
        > 1
    {
        eprintln!(
            "--buffer-depths, --vc-sweep, --bursty-sweep and --fault-sweep are \
             mutually exclusive"
        );
        std::process::exit(2);
    }

    let campaign = if buffer_depths {
        Campaign::buffer_sweep(seed, scenarios)
    } else if vc_sweep {
        Campaign::vc_sweep(seed, scenarios)
    } else if bursty_sweep {
        Campaign::bursty_sweep(seed, scenarios)
    } else if fault_sweep {
        Campaign::fault_sweep(seed, scenarios)
    } else {
        Campaign::new(seed, scenarios)
    };
    let start = Instant::now();
    let report = match campaign.run(threads) {
        Ok(report) => report,
        Err(error) => {
            // The error carries the failing scenario's label plus the full
            // diagnostic (a stalled run reports its stuck cycle and
            // buffered-flit count).
            eprintln!("conformance campaign aborted: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "campaign of {scenarios} scenarios took {:.2?} on {threads} thread(s)",
        start.elapsed()
    );

    if let Some(path) = report_path {
        std::fs::write(&path, report.render_json())
            .unwrap_or_else(|e| panic!("cannot write report {path}: {e}"));
        eprintln!("machine-readable report written to {path}");
    }

    print!("{}", report.render());
    if !report.passed() {
        std::process::exit(1);
    }
}
