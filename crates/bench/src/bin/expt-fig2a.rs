//! Regenerates Figure 2(a): WCET of the 16-core 3DPP avionics application for
//! maximum packet sizes L1/L4/L8, regular wNoC vs WaW+WaP (placement P0).

use wnoc_bench::{Fig2Params, Figure2};

fn main() {
    let figure = Figure2::run(Fig2Params::default()).expect("figure 2 computation");
    println!("Figure 2(a) — 3DPP WCET vs maximum packet size (placement P0)\n");
    println!("L      | regular wNoC | WaW+WaP   | improvement");
    for point in &figure.packet_sizes {
        println!(
            "L{:<5} | {:>12} | {:>9} | {:>10.2}x",
            point.max_packet_flits,
            point.regular_wcet,
            point.waw_wap_wcet,
            point.improvement()
        );
    }
}
