//! Regenerates Figure 2(b): WCET of the 16-core 3DPP avionics application under
//! placements P0–P3 (maximum packet size 1).

use wnoc_bench::{Fig2Params, Figure2};

fn main() {
    let figure = Figure2::run(Fig2Params::default()).expect("figure 2 computation");
    println!("Figure 2(b) — 3DPP WCET vs placement (L = 1)\n");
    println!("place  | regular wNoC | WaW+WaP");
    for point in &figure.placements {
        println!(
            "{:<6} | {:>12} | {:>9}",
            point.placement, point.regular_wcet, point.waw_wap_wcet
        );
    }
    println!(
        "\nvariability across placements: regular {:.2}x, WaW+WaP {:.2}x",
        figure.placement_variability(false),
        figure.placement_variability(true)
    );
}
