//! Bound-vs-burst sweep (`Bu1`): arrival phasing as a first-class axis.
//!
//! Sweeps the arrival-curve burst depth {0, 1, 2, 4, 6} (plus a jittered
//! point) over the all-to-one hotspot platform on the 4×4 and 8×8 meshes
//! under the WaW + WaP design, printing observed open-loop end-to-end worst
//! latencies next to the buffer-aware base bound and the graph-based
//! buffer-aware bound, then replays the recorded EEMBC and avionics workload
//! traces through the same open-loop driver (see `wnoc_bench::bursty_sweep`).
//! No arguments; the output is fully deterministic and
//! golden-snapshot-tested.

use wnoc_bench::bursty_sweep::BurstySweepTable;

fn main() {
    match BurstySweepTable::generate() {
        Ok(table) => print!("{}", table.render()),
        Err(error) => {
            eprintln!("bursty sweep failed: {error}");
            std::process::exit(1);
        }
    }
}
