//! Design-space exploration over a banked-memory manycore platform, driven
//! by the incremental analysis engine
//! ([`wnoc_core::analysis::IncrementalAnalysis`]).
//!
//! The platform scales the paper's Section V evaluation to the regime where
//! incremental analysis matters: 64 threads on a 16×16 mesh (the paper's
//! 16-thread placements tiled into each 8×8 quadrant) with four memory
//! banks at the quadrant centres, request/response flows between every
//! thread and its **nearest** bank, under the regular round-robin design.
//! (On the paper's single-controller 8×8 platform every response flow shares
//! the controller's output trunk, so one placement move legitimately changes
//! almost every bound and a from-scratch rebuild is nearly optimal — see the
//! `analysis_incremental` criterion bench, which keeps that platform as the
//! worst case.  Banked memory makes interference sets sparse, which is
//! exactly when memoized terms pay.)  The explorer hill-climbs over two
//! knobs —
//!
//! * **placement**: move one thread to a free node and re-pair it with its
//!   nearest bank (two `MoveFlow` mutations, request and response);
//! * **buffer plan**: set one `(router, input port)` depth to 1, 2, 4 or 8
//!   flits (one `SetBufferDepth` mutation);
//!
//! with seeded restarts cycling the paper's placements P0–P3 as starting
//! points, and archives every non-dominated candidate under two objectives:
//! worst per-thread round-trip WCTT (request + response message bound of the
//! `preemptive` analysis) and total buffer cost (sum of all input-buffer
//! depths).  Every candidate is evaluated through the engine's memoized
//! terms — a mutation recomputes only the flows whose interference sets
//! changed — which is what makes million-candidate budgets tractable; the
//! differential proptest (`incremental_equivalence`) plus this binary's
//! closing differential sweep pin the bounds bit-identical to from-scratch
//! oracles.
//!
//! The Pareto front is then **spot-verified in the simulator**: front
//! candidates run the event-horizon closed loop and every dominating
//! analysis bound must cover the worst observation (0 violations).
//!
//! Usage:
//!
//! ```text
//! expt-dse [--candidates N] [--seed S] [--restarts R] [--spot K]
//!          [--bench] [--scratch-sample M] [--out PATH] [--baseline PATH]
//! ```
//!
//! Defaults: 1 000 000 candidates, seed 7, 4 restarts, 5 spot checks.  The
//! default mode prints a deterministic report (golden-snapshotted as
//! `tests/golden/expt-dse.txt`; timing lines carry `took` so the snapshot
//! filters them).  `--bench` additionally replays a sample of the identical
//! candidate walk through a from-scratch mirror — every candidate rebuilds
//! the flow set and the full oracle suite, the per-scenario work of the
//! conformance campaigns — and writes `BENCH_dse.json`; the run fails below
//! 10× speedup, and with `--baseline PATH` also on a >20% candidates/sec
//! regression against the committed baseline.  A preemptive-only scratch
//! rate (rebuilding just the oracle the objective queries) is reported
//! alongside for scale.

use std::collections::HashSet;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use wnoc_core::analysis::oracle::{oracle_suite_with_vcs, WcttBoundModel};
use wnoc_core::analysis::{Analysis, IncrementalAnalysis, Mutation, PreemptiveOracle};
use wnoc_core::flow::FlowSet;
use wnoc_core::port::Port;
use wnoc_core::vc::VcConfig;
use wnoc_core::{BufferConfig, Coord, FlowId, Mesh, NocConfig, NodeId};
use wnoc_sim::Simulation;
use wnoc_workloads::Placement;

/// Mesh side of the banked manycore platform.
const SIDE: u16 = 16;
/// Threads per candidate: the paper's 16-thread placement tiled into each
/// of the four 8×8 quadrants.
const THREADS: usize = 64;
/// Request message size offered by each thread, in flits.
const REQUEST_FLITS: u32 = 1;
/// Response message size returned by the memory bank, in flits.
const RESPONSE_FLITS: u32 = 4;
/// Buffer depths the explorer may assign per `(router, input port)`.
const DEPTH_CHOICES: [u32; 4] = [1, 2, 4, 8];
/// Closed-loop probing cycles per spot-verified candidate.
const SPOT_CYCLES: u64 = 3_000;
/// Scalarization weights `(w_wctt, w_cost)`, cycled per restart so different
/// restarts walk towards different regions of the front.
const WEIGHTS: [(u128, u128); 4] = [(1, 0), (4, 1), (1, 1), (1, 4)];

/// The four memory banks: quadrant centres of the mesh.
fn bank_coords() -> Vec<Coord> {
    let near = SIDE / 4;
    let far = SIDE - 1 - SIDE / 4;
    vec![
        Coord::from_row_col(near, near),
        Coord::from_row_col(near, far),
        Coord::from_row_col(far, near),
        Coord::from_row_col(far, far),
    ]
}

/// The bank a thread at `core` talks to: nearest by Manhattan distance,
/// lowest bank index on ties.
fn nearest_bank(banks: &[Coord], core: Coord) -> Coord {
    *banks
        .iter()
        .min_by_key(|b| u32::from(b.x.abs_diff(core.x)) + u32::from(b.y.abs_diff(core.y)))
        .expect("at least one bank")
}

/// Tiles a paper placement (drawn on the top-left 8×8 block) into all four
/// quadrants of the mesh: 64 cores, each quadrant a translated copy.
fn tile_quadrants(cores: &[Coord]) -> Vec<Coord> {
    let half = SIDE / 2;
    let mut tiled = Vec::with_capacity(4 * cores.len());
    for &(dx, dy) in &[(0, 0), (half, 0), (0, half), (half, half)] {
        for &core in cores {
            tiled.push(Coord::new(core.x + dx, core.y + dy));
        }
    }
    tiled
}

/// Relocates seed cores that collide with a bank node to the nearest free
/// node (deterministic: by Manhattan distance, then row-major order).
fn sanitize_placement(banks: &[Coord], cores: &[Coord]) -> Vec<Coord> {
    let bank_set: HashSet<Coord> = banks.iter().copied().collect();
    let mut taken: HashSet<Coord> = cores
        .iter()
        .copied()
        .filter(|c| !bank_set.contains(c))
        .collect();
    let mut fixed = Vec::with_capacity(cores.len());
    for &core in cores {
        if !bank_set.contains(&core) {
            fixed.push(core);
            continue;
        }
        let mut best: Option<(u32, Coord)> = None;
        for row in 0..SIDE {
            for col in 0..SIDE {
                let c = Coord::from_row_col(row, col);
                if bank_set.contains(&c) || taken.contains(&c) {
                    continue;
                }
                let d = u32::from(c.x.abs_diff(core.x)) + u32::from(c.y.abs_diff(core.y));
                if best.map_or(true, |(bd, _)| d < bd) {
                    best = Some((d, c));
                }
            }
        }
        let (_, c) = best.expect("free node exists");
        taken.insert(c);
        fixed.push(c);
    }
    fixed
}

/// One non-dominated candidate: objectives plus enough state to rebuild it.
#[derive(Clone)]
struct ParetoPoint {
    /// Worst per-thread round-trip WCTT bound (cycles).
    wctt: u64,
    /// Total buffer cost (sum of all input-buffer depths, flits).
    cost: u64,
    /// Flow endpoints of the candidate.
    pairs: Vec<(NodeId, NodeId)>,
    /// Buffer plan of the candidate.
    buffers: BufferConfig,
}

/// Inserts `point` if no archived point weakly dominates it; drops newly
/// dominated points.  Returns whether the archive changed.
fn archive_insert(archive: &mut Vec<ParetoPoint>, point: ParetoPoint) -> bool {
    if archive
        .iter()
        .any(|p| p.wctt <= point.wctt && p.cost <= point.cost)
    {
        return false;
    }
    archive.retain(|p| !(point.wctt <= p.wctt && point.cost <= p.cost));
    archive.push(point);
    true
}

/// The worst per-thread round-trip bound of the engine's current design.
fn round_trip_wctt(engine: &mut IncrementalAnalysis) -> u64 {
    let mut worst = 0u64;
    for thread in 0..THREADS {
        let request = engine
            .message_bound(Analysis::Preemptive, FlowId(2 * thread), REQUEST_FLITS)
            .expect("request flow bound");
        let response = engine
            .message_bound(Analysis::Preemptive, FlowId(2 * thread + 1), RESPONSE_FLITS)
            .expect("response flow bound");
        worst = worst.max(request.saturating_add(response));
    }
    worst
}

/// Request/response pairs of a placement, each thread against its nearest
/// bank.
fn placement_pairs(mesh: &Mesh, banks: &[Coord], cores: &[Coord]) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(2 * cores.len());
    for &core in cores {
        let bank = nearest_bank(banks, core);
        let core_id = mesh.node_id(core).expect("core on mesh");
        let bank_id = mesh.node_id(bank).expect("bank on mesh");
        pairs.push((core_id, bank_id));
        pairs.push((bank_id, core_id));
    }
    pairs
}

/// One proposed mutation step, with enough context to revert it.
enum Step {
    /// Thread `thread` moved `from` → `to` (two flow moves, re-pairing the
    /// thread with the bank nearest to its new position).
    Move {
        thread: usize,
        from: Coord,
        to: Coord,
    },
    /// Depth of `(node, port)` changed `from` → `to` flits.
    Depth {
        node: NodeId,
        port: Port,
        from: u32,
        to: u32,
    },
}

/// Proposes one step from `rng`: 70% placement moves, 30% depth changes.
/// `None` when 32 draws found no free target node (practically never on the
/// 16×16 platform).  Shared by the engine climber and the from-scratch
/// mirror so both consume identical random streams.
fn propose_step(
    mesh: &Mesh,
    placement: &[Coord],
    blocked: &HashSet<Coord>,
    buffers: &BufferConfig,
    rng: &mut ChaCha8Rng,
) -> Option<Step> {
    if rng.gen_range(0u32..10) < 7 {
        let thread = rng.gen_range(0usize..THREADS);
        for _ in 0..32 {
            let to = Coord::new(rng.gen_range(0..SIDE), rng.gen_range(0..SIDE));
            if !blocked.contains(&to) {
                return Some(Step::Move {
                    thread,
                    from: placement[thread],
                    to,
                });
            }
        }
        None
    } else {
        let node = NodeId(rng.gen_range(0usize..mesh.router_count()));
        let port = Port::ALL[rng.gen_range(0usize..Port::ALL.len())];
        let to = DEPTH_CHOICES[rng.gen_range(0usize..DEPTH_CHOICES.len())];
        Some(Step::Depth {
            node,
            port,
            from: buffers.depth(node, port),
            to,
        })
    }
}

/// The hill-climbing state of one restart.
struct Climber {
    engine: IncrementalAnalysis,
    placement: Vec<Coord>,
    /// Nodes a move may not target: occupied cores plus the bank nodes.
    blocked: HashSet<Coord>,
    banks: Vec<Coord>,
    /// Running total buffer cost (kept by delta; rebuilding it per candidate
    /// would dwarf the incremental evaluation).
    cost: u64,
    /// Current scalarized score under the restart's weights.
    score: u128,
    weights: (u128, u128),
}

impl Climber {
    fn new(
        mesh: &Mesh,
        config: &NocConfig,
        banks: &[Coord],
        cores: &[Coord],
        weights: (u128, u128),
    ) -> Self {
        let pairs = placement_pairs(mesh, banks, cores);
        let flows = FlowSet::from_pairs(mesh, pairs).expect("placement flows");
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        let mut engine = IncrementalAnalysis::new(&flows, config, &buffers, VcConfig::single())
            .expect("valid seed design");
        let cost = u64::from(config.input_buffer_flits)
            * mesh.router_count() as u64
            * Port::ALL.len() as u64;
        let wctt = round_trip_wctt(&mut engine);
        let score = weights.0 * u128::from(wctt) + weights.1 * u128::from(cost);
        let mut blocked: HashSet<Coord> = cores.iter().copied().collect();
        blocked.extend(banks.iter().copied());
        Self {
            engine,
            placement: cores.to_vec(),
            blocked,
            banks: banks.to_vec(),
            cost,
            score,
            weights,
        }
    }

    fn propose(&self, mesh: &Mesh, rng: &mut ChaCha8Rng) -> Option<Step> {
        propose_step(
            mesh,
            &self.placement,
            &self.blocked,
            self.engine.buffers(),
            rng,
        )
    }

    fn apply_move(&mut self, thread: usize, core: Coord) {
        let mesh = *self.engine.flows().mesh();
        let bank = nearest_bank(&self.banks, core);
        let bank_id = mesh.node_id(bank).expect("bank on mesh");
        let core_id = mesh.node_id(core).expect("core on mesh");
        self.engine
            .apply(&Mutation::MoveFlow {
                id: FlowId(2 * thread),
                src: core_id,
                dst: bank_id,
            })
            .expect("legal request move");
        self.engine
            .apply(&Mutation::MoveFlow {
                id: FlowId(2 * thread + 1),
                src: bank_id,
                dst: core_id,
            })
            .expect("legal response move");
        self.blocked.remove(&self.placement[thread]);
        self.blocked.insert(core);
        self.placement[thread] = core;
    }

    /// Applies `step`, evaluates the candidate, and keeps or reverts it by
    /// hill-climbing on the scalarized score.  Returns the candidate's
    /// objectives (evaluated either way — rejected candidates still feed the
    /// Pareto archive).
    fn step(&mut self, step: &Step) -> (u64, u64, bool) {
        match *step {
            Step::Move { thread, to, .. } => self.apply_move(thread, to),
            Step::Depth {
                node,
                port,
                to,
                from,
                ..
            } => {
                self.engine
                    .apply(&Mutation::SetBufferDepth {
                        node,
                        port,
                        depth: to,
                    })
                    .expect("legal depth");
                self.cost = self.cost - u64::from(from) + u64::from(to);
            }
        }
        let wctt = round_trip_wctt(&mut self.engine);
        let cost = self.cost;
        let score = self.weights.0 * u128::from(wctt) + self.weights.1 * u128::from(cost);
        let accept = score <= self.score;
        if accept {
            self.score = score;
        } else {
            match *step {
                Step::Move { thread, from, .. } => self.apply_move(thread, from),
                Step::Depth {
                    node,
                    port,
                    from,
                    to,
                    ..
                } => {
                    self.engine
                        .apply(&Mutation::SetBufferDepth {
                            node,
                            port,
                            depth: from,
                        })
                        .expect("legal depth revert");
                    self.cost = self.cost - u64::from(to) + u64::from(from);
                }
            }
        }
        (wctt, cost, accept)
    }
}

/// The from-scratch mirror of [`Climber`]: identical proposal stream and
/// accept logic (the bounds are bit-identical, so the walk is the same), but
/// no engine — candidate state is plain endpoint pairs and a buffer plan,
/// and every evaluation rebuilds analysis state from scratch.
struct Mirror {
    placement: Vec<Coord>,
    blocked: HashSet<Coord>,
    banks: Vec<Coord>,
    pairs: Vec<(NodeId, NodeId)>,
    buffers: BufferConfig,
    cost: u64,
    score: u128,
    weights: (u128, u128),
}

impl Mirror {
    fn new(
        mesh: &Mesh,
        config: &NocConfig,
        banks: &[Coord],
        cores: &[Coord],
        weights: (u128, u128),
        seed_wctt: u64,
    ) -> Self {
        let pairs = placement_pairs(mesh, banks, cores);
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        let cost = u64::from(config.input_buffer_flits)
            * mesh.router_count() as u64
            * Port::ALL.len() as u64;
        let score = weights.0 * u128::from(seed_wctt) + weights.1 * u128::from(cost);
        let mut blocked: HashSet<Coord> = cores.iter().copied().collect();
        blocked.extend(banks.iter().copied());
        Self {
            placement: cores.to_vec(),
            blocked,
            banks: banks.to_vec(),
            pairs,
            buffers,
            cost,
            score,
            weights,
        }
    }

    fn apply_move(&mut self, mesh: &Mesh, thread: usize, core: Coord) {
        let bank = nearest_bank(&self.banks, core);
        let bank_id = mesh.node_id(bank).expect("bank on mesh");
        let core_id = mesh.node_id(core).expect("core on mesh");
        self.pairs[2 * thread] = (core_id, bank_id);
        self.pairs[2 * thread + 1] = (bank_id, core_id);
        self.blocked.remove(&self.placement[thread]);
        self.blocked.insert(core);
        self.placement[thread] = core;
    }

    /// Applies `step`, evaluates through `evaluate` (the from-scratch
    /// rebuild under measurement), and keeps or reverts exactly like the
    /// engine climber.
    fn step(
        &mut self,
        mesh: &Mesh,
        step: &Step,
        evaluate: impl Fn(&[(NodeId, NodeId)], &BufferConfig) -> u64,
    ) -> (u64, u64, bool) {
        match *step {
            Step::Move { thread, to, .. } => self.apply_move(mesh, thread, to),
            Step::Depth {
                node,
                port,
                to,
                from,
                ..
            } => {
                self.buffers = self.buffers.with_buffer_depth(mesh, node, port, to);
                self.cost = self.cost - u64::from(from) + u64::from(to);
            }
        }
        let wctt = evaluate(&self.pairs, &self.buffers);
        let cost = self.cost;
        let score = self.weights.0 * u128::from(wctt) + self.weights.1 * u128::from(cost);
        let accept = score <= self.score;
        if accept {
            self.score = score;
        } else {
            match *step {
                Step::Move { thread, from, .. } => self.apply_move(mesh, thread, from),
                Step::Depth {
                    node,
                    port,
                    from,
                    to,
                    ..
                } => {
                    self.buffers = self.buffers.with_buffer_depth(mesh, node, port, from);
                    self.cost = self.cost - u64::from(to) + u64::from(from);
                }
            }
        }
        (wctt, cost, accept)
    }
}

/// Spot-verifies one Pareto point in the event-horizon simulator: every
/// analysis claiming observation safety for the probe size must bound every
/// flow's worst observed traversal.  Returns `(violations, worst_observed)`.
fn spot_verify(config: &NocConfig, point: &ParetoPoint) -> (usize, u64) {
    let mesh = Mesh::square(SIDE).expect("platform mesh");
    let flows = FlowSet::from_pairs(&mesh, point.pairs.iter().copied()).expect("front flows");
    let mut sim = Simulation::with_vcs(mesh, *config, &flows, &point.buffers, VcConfig::single())
        .expect("front platform");
    let report = sim
        .run_closed_loop(&flows, RESPONSE_FLITS, SPOT_CYCLES)
        .expect("closed loop runs");
    let mut suite = oracle_suite_with_vcs(&flows, config, mesh, &point.buffers, VcConfig::single())
        .expect("oracle suite");
    let mut violations = 0usize;
    let mut worst = 0u64;
    for (flow, observed) in report.per_flow_max() {
        if flows.route(flow).is_none() {
            continue;
        }
        worst = worst.max(observed);
        for oracle in &mut suite {
            if !oracle.dominates_observation() || !oracle.dominates_message(RESPONSE_FLITS) {
                continue;
            }
            let Some(bound) = oracle.message_bound(flow, RESPONSE_FLITS) else {
                continue;
            };
            if observed > bound {
                violations += 1;
                eprintln!(
                    "spot-check violation: flow {flow} observed {observed} > {} bound {bound}",
                    oracle.name()
                );
            }
        }
    }
    (violations, worst)
}

/// Differential pin on the final engine state: every exported bound must be
/// bit-identical to a freshly built oracle suite.  Returns the comparison
/// count.
fn differential_sweep(engine: &mut IncrementalAnalysis) -> usize {
    let flows = engine.flows().clone();
    let config = *engine.config();
    let mesh = *flows.mesh();
    let buffers = engine.buffers().clone();
    let vcs = engine.vcs();
    let mut suite =
        oracle_suite_with_vcs(&flows, &config, mesh, &buffers, vcs).expect("oracle suite");
    let mut comparisons = 0usize;
    for oracle in &mut suite {
        let analysis = Analysis::from_name(oracle.name()).expect("known oracle");
        for index in 0..flows.len() {
            let id = FlowId(index);
            for size in [REQUEST_FLITS, RESPONSE_FLITS] {
                assert_eq!(
                    engine.packet_bound(analysis, id, size),
                    oracle.packet_bound(id, size),
                    "packet bound diverged: {} {id} size {size}",
                    oracle.name()
                );
                assert_eq!(
                    engine.message_bound(analysis, id, size),
                    oracle.message_bound(id, size),
                    "message bound diverged: {} {id} size {size}",
                    oracle.name()
                );
                comparisons += 2;
            }
        }
    }
    comparisons
}

/// Full recompute of a candidate: rebuild the flow set and the whole oracle
/// suite — the per-scenario work of the conformance campaigns, and the
/// from-scratch equivalent of the all-analysis state the engine keeps
/// consistent at every candidate — then answer the objective from it.
fn scratch_suite_round_trip(
    mesh: &Mesh,
    config: &NocConfig,
    pairs: &[(NodeId, NodeId)],
    buffers: &BufferConfig,
) -> u64 {
    let flows = FlowSet::from_pairs(mesh, pairs.iter().copied()).expect("scratch flows");
    let mut suite = oracle_suite_with_vcs(&flows, config, *mesh, buffers, VcConfig::single())
        .expect("scratch suite");
    let oracle = suite
        .iter_mut()
        .find(|o| o.name() == "preemptive")
        .expect("suite has preemptive oracle");
    let mut worst = 0u64;
    for thread in 0..THREADS {
        let request = oracle
            .message_bound(FlowId(2 * thread), REQUEST_FLITS)
            .expect("request bound");
        let response = oracle
            .message_bound(FlowId(2 * thread + 1), RESPONSE_FLITS)
            .expect("response bound");
        worst = worst.max(request.saturating_add(response));
    }
    worst
}

/// Narrow from-scratch comparator: rebuild only the preemptive oracle (the
/// single analysis the objective queries).  Reported alongside the suite
/// rate so the cheaper comparator is visible too.
fn scratch_preemptive_round_trip(
    mesh: &Mesh,
    config: &NocConfig,
    pairs: &[(NodeId, NodeId)],
    buffers: &BufferConfig,
) -> u64 {
    let flows = FlowSet::from_pairs(mesh, pairs.iter().copied()).expect("scratch flows");
    let mut oracle = PreemptiveOracle::new(&flows, config, buffers, VcConfig::single());
    let mut worst = 0u64;
    for thread in 0..THREADS {
        let request = oracle
            .message_bound(FlowId(2 * thread), REQUEST_FLITS)
            .expect("request bound");
        let response = oracle
            .message_bound(FlowId(2 * thread + 1), RESPONSE_FLITS)
            .expect("response bound");
        worst = worst.max(request.saturating_add(response));
    }
    worst
}

/// Peak resident set size in kilobytes, from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Absolute form of `path` for failure hints: a hint quoting a CWD-relative
/// path is useless once CI has changed directories, so resolve it eagerly
/// (falling back to `cwd/path` when the file does not exist yet).
fn absolute(path: &str) -> String {
    std::fs::canonicalize(path)
        .ok()
        .or_else(|| std::env::current_dir().ok().map(|cwd| cwd.join(path)))
        .map_or_else(|| path.to_owned(), |p| p.display().to_string())
}

/// Extracts a numeric field from the flat JSON this binary writes.
fn json_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = json.find(&key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut candidates: u64 = 1_000_000;
    let mut seed: u64 = 7;
    let mut restarts: usize = 4;
    let mut spot: usize = 5;
    let mut bench = false;
    let mut scratch_sample: u64 = 200;
    let mut out = String::from("BENCH_dse.json");
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--candidates" => {
                candidates = value("--candidates")
                    .parse()
                    .expect("--candidates takes a number");
            }
            "--seed" => seed = value("--seed").parse().expect("--seed takes a number"),
            "--restarts" => {
                restarts = value("--restarts")
                    .parse()
                    .expect("--restarts takes a number");
                assert!(restarts > 0, "--restarts must be at least 1");
            }
            "--spot" => spot = value("--spot").parse().expect("--spot takes a number"),
            "--bench" => bench = true,
            "--scratch-sample" => {
                scratch_sample = value("--scratch-sample")
                    .parse()
                    .expect("--scratch-sample takes a number");
                assert!(scratch_sample > 0, "--scratch-sample must be at least 1");
            }
            "--out" => out = value("--out"),
            "--baseline" => baseline = Some(value("--baseline")),
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: expt-dse [--candidates N] [--seed S] \
                     [--restarts R] [--spot K] [--bench] [--scratch-sample M] [--out PATH] \
                     [--baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mesh = Mesh::square(SIDE).expect("platform mesh");
    let config = NocConfig::regular(4);
    let banks = bank_coords();
    let placements =
        Placement::paper_set(&mesh, Coord::from_row_col(0, 0)).expect("paper placements");

    let bank_list = banks
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "dse: {SIDE}x{SIDE} {} mesh, banks at {bank_list}, {THREADS} threads \
         (nearest bank), request {REQUEST_FLITS}f / response {RESPONSE_FLITS}f",
        config.label()
    );
    println!(
        "dse: objectives (round-trip preemptive WCTT, total buffer flits); \
         {candidates} candidates over {restarts} restart(s), seed {seed}"
    );

    let mut archive: Vec<ParetoPoint> = Vec::new();
    let mut evaluated = 0u64;
    let mut accepted = 0u64;
    let started = Instant::now();
    let mut final_engine: Option<IncrementalAnalysis> = None;
    for restart in 0..restarts {
        let placement = &placements[restart % placements.len()];
        let cores = sanitize_placement(&banks, &tile_quadrants(placement.cores()));
        let weights = WEIGHTS[restart % WEIGHTS.len()];
        let mut climber = Climber::new(&mesh, &config, &banks, &cores, weights);
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        println!(
            "dse: restart {restart}: seeded from placement {} with weights \
             (wctt x{}, cost x{})",
            placement.name(),
            weights.0,
            weights.1
        );
        let budget = candidates / restarts as u64
            + u64::from(restart < (candidates % restarts as u64) as usize);
        let mut steps = 0u64;
        while steps < budget {
            let Some(step) = climber.propose(&mesh, &mut rng) else {
                continue;
            };
            let (wctt, cost, kept) = climber.step(&step);
            steps += 1;
            evaluated += 1;
            accepted += u64::from(kept);
            archive_insert(
                &mut archive,
                ParetoPoint {
                    wctt,
                    cost,
                    pairs: climber.engine.flows().pairs(),
                    buffers: climber.engine.buffers().clone(),
                },
            );
        }
        final_engine = Some(climber.engine);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let candidates_per_sec = evaluated as f64 / elapsed.max(1e-9);
    println!("dse: exploration took {elapsed:.3}s ({candidates_per_sec:.0} candidates/sec)");
    println!(
        "dse: {evaluated} candidates evaluated, {accepted} accepted, \
         {} non-dominated",
        archive.len()
    );

    archive.sort_by_key(|p| (p.wctt, p.cost));
    println!("pareto front (round-trip WCTT x total buffer flits):");
    for point in &archive {
        println!("  wctt {:>6}  cost {:>5}", point.wctt, point.cost);
    }

    // Spot-verify the front in the simulator — the acceptance bar is zero
    // dominance violations.
    let checks = spot.min(archive.len());
    let mut violations = 0usize;
    for point in archive.iter().take(checks) {
        let (bad, worst) = spot_verify(&config, point);
        violations += bad;
        println!(
            "spot-check: wctt {:>6} cost {:>5} -> observed max {worst}, {bad} violations",
            point.wctt, point.cost
        );
    }
    println!("spot-check: {checks} candidates verified, {violations} violations");

    let mut engine = final_engine.expect("at least one restart ran");
    let comparisons = differential_sweep(&mut engine);
    println!(
        "differential: incremental bounds bit-identical to from-scratch oracles \
         ({comparisons} comparisons)"
    );

    if violations > 0 {
        eprintln!("dse: spot checks found {violations} dominance violations");
        std::process::exit(1);
    }

    if !bench {
        return;
    }

    // From-scratch comparators replay the start of restart 0's walk — same
    // proposal stream, same accept decisions (the bounds are bit-identical)
    // — through the engine-free mirror, so the timed loop contains exactly
    // what a non-incremental explorer would run per candidate.
    let cores = sanitize_placement(&banks, &tile_quadrants(placements[0].cores()));
    let seed_wctt = {
        let mut seed_climber = Climber::new(&mesh, &config, &banks, &cores, WEIGHTS[0]);
        round_trip_wctt(&mut seed_climber.engine)
    };

    let mut mirror = Mirror::new(&mesh, &config, &banks, &cores, WEIGHTS[0], seed_wctt);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let suite_started = Instant::now();
    let mut done = 0u64;
    while done < scratch_sample {
        let Some(step) = propose_step(
            &mesh,
            &mirror.placement,
            &mirror.blocked,
            &mirror.buffers,
            &mut rng,
        ) else {
            continue;
        };
        mirror.step(&mesh, &step, |pairs, buffers| {
            scratch_suite_round_trip(&mesh, &config, pairs, buffers)
        });
        done += 1;
    }
    let suite_elapsed = suite_started.elapsed().as_secs_f64();
    let scratch_suite_per_sec = done as f64 / suite_elapsed.max(1e-9);

    let mut mirror = Mirror::new(&mesh, &config, &banks, &cores, WEIGHTS[0], seed_wctt);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let preemptive_started = Instant::now();
    let mut done = 0u64;
    while done < scratch_sample {
        let Some(step) = propose_step(
            &mesh,
            &mirror.placement,
            &mirror.blocked,
            &mirror.buffers,
            &mut rng,
        ) else {
            continue;
        };
        mirror.step(&mesh, &step, |pairs, buffers| {
            scratch_preemptive_round_trip(&mesh, &config, pairs, buffers)
        });
        done += 1;
    }
    let preemptive_elapsed = preemptive_started.elapsed().as_secs_f64();
    let scratch_preemptive_per_sec = done as f64 / preemptive_elapsed.max(1e-9);

    let speedup = candidates_per_sec / scratch_suite_per_sec.max(1e-9);
    let speedup_preemptive = candidates_per_sec / scratch_preemptive_per_sec.max(1e-9);
    println!(
        "bench: scratch suite rebuild took {suite_elapsed:.3}s \
         ({scratch_suite_per_sec:.0} candidates/sec) -> speedup {speedup:.1}x"
    );
    println!(
        "bench: scratch preemptive-only rebuild took {preemptive_elapsed:.3}s \
         ({scratch_preemptive_per_sec:.0} candidates/sec) -> speedup {speedup_preemptive:.1}x"
    );

    let rss = peak_rss_kb();
    let json = format!(
        "{{\n  \"candidates\": {evaluated},\n  \"seed\": {seed},\n  \"restarts\": {restarts},\n  \
         \"elapsed_seconds\": {elapsed:.3},\n  \"candidates_per_sec\": {candidates_per_sec:.0},\n  \
         \"scratch_suite_candidates_per_sec\": {scratch_suite_per_sec:.0},\n  \
         \"scratch_preemptive_candidates_per_sec\": {scratch_preemptive_per_sec:.0},\n  \
         \"speedup\": {speedup:.1},\n  \"speedup_vs_preemptive_only\": {speedup_preemptive:.1},\n  \
         \"pareto_points\": {},\n  \"spot_checks\": {checks},\n  \
         \"spot_violations\": {violations},\n  \"peak_rss_kb\": {rss}\n}}\n",
        archive.len()
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "bench: {evaluated} candidates at {candidates_per_sec:.0}/sec, speedup {speedup:.1}x, \
         peak RSS {rss} kB -> {out}"
    );

    if speedup < 10.0 {
        eprintln!(
            "bench: incremental speedup {speedup:.1}x below the 10x floor \
             (this run's bench JSON: {})",
            absolute(&out)
        );
        std::process::exit(1);
    }
    if let Some(path) = baseline {
        let reference = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let reference_rate = json_number(&reference, "candidates_per_sec")
            .unwrap_or_else(|| panic!("baseline {path} lacks candidates_per_sec"));
        let floor = 0.8 * reference_rate;
        println!(
            "bench: baseline {reference_rate:.0} candidates/sec (floor {floor:.0}) from {path}"
        );
        if candidates_per_sec < floor {
            eprintln!(
                "bench: throughput regressed >20%: {candidates_per_sec:.0} < {floor:.0} \
                 candidates/sec (baseline {reference_rate:.0})\n\
                 bench: this run's bench JSON: {}\n\
                 bench: committed baseline:    {}\n\
                 bench: a legitimate hardware-class change means copying the bench JSON \
                 over the baseline; output-shape changes are accepted via \
                 ./scripts/regen-golden.sh, never by editing baselines",
                absolute(&out),
                absolute(&path)
            );
            std::process::exit(1);
        }
    }
}
