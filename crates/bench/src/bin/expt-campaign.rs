//! Sharded, checkpointed conformance campaign: partitions the scenario space
//! into contiguous shard ranges, runs each shard as an independent worker
//! *process*, and merges the checkpointed partial reports into a final
//! report byte-identical to the single-process `expt-conformance` run.
//!
//! Usage: `expt-campaign --dir DIR [--scenarios N] [--seed S] [--shards K]
//!                       [--workers W]
//!                       [--buffer-depths | --vc-sweep | --bursty-sweep | --fault-sweep]
//!                       [--report PATH] [--fresh] [--halt-after-shards N]
//!                       [--shard-timeout-secs T]`
//!
//! Exit codes: 0 on a clean pass, 1 on violations or campaign errors, 2 on
//! usage errors, 3 when `--halt-after-shards` stopped the invocation early
//! (the directory is resumable — re-invoke with the same flags to continue).
//!
//! Defaults: 200 scenarios, seed 7, one shard and one worker per available
//! core.  `DIR` is the campaign directory holding per-shard checkpoints
//! (`shard-NNN.partial.json` + `shard-NNN.manifest.json`); re-invoking on an
//! interrupted directory validates every checkpoint and re-runs only the
//! missing or corrupt shards, so a killed campaign resumes from the last
//! completed shard.  A directory written by a *different* campaign
//! configuration is rejected (pass `--fresh` to wipe it).
//!
//! `--halt-after-shards N` stops the invocation after N shards complete
//! (killing in-flight workers) and exits with code 3 — a deterministic
//! "campaign died" for resume tests and the CI smoke.
//!
//! The stdout summary (shard table + conformance report) depends only on
//! `(scenarios, seed, dimension, shards)` — never on worker count, shard
//! completion order, or how many invocations it took — so it is
//! snapshot-testable; paths and timing go to stderr.  Exits non-zero if any
//! dominance or ordering violation is found.
//!
//! `--shard-timeout-secs T` arms the per-shard watchdog: a worker still
//! running after T seconds is killed and its shard retried once; a second
//! overrun aborts the campaign (exit 1) naming the shard — completed shards
//! stay checkpointed, so a plain re-invocation resumes.
//!
//! The internal flag `--worker-shard K` is how the orchestrator invokes
//! itself as a shard worker; it is not part of the user interface.

use std::process::{Command, Stdio};
use std::time::Instant;

use wnoc_conformance::{Campaign, Fleet};

fn main() {
    // This binary gates CI, so misconfiguration must be loud: unknown flags
    // are an error, never silently replaced by defaults.
    let default_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut dir: Option<String> = None;
    let mut scenarios: usize = 200;
    let mut seed: u64 = 7;
    let mut shards: usize = default_parallelism;
    let mut workers: usize = default_parallelism;
    let mut buffer_depths = false;
    let mut vc_sweep = false;
    let mut bursty_sweep = false;
    let mut fault_sweep = false;
    let mut report_path: Option<String> = None;
    let mut fresh = false;
    let mut halt_after: Option<usize> = None;
    let mut shard_timeout_secs: Option<u64> = None;
    let mut worker_shard: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(value("--dir")),
            "--scenarios" => {
                scenarios = value("--scenarios")
                    .parse()
                    .expect("--scenarios takes a number");
            }
            "--seed" => seed = value("--seed").parse().expect("--seed takes a number"),
            "--shards" => {
                shards = value("--shards").parse().expect("--shards takes a number");
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .expect("--workers takes a number");
            }
            "--buffer-depths" => buffer_depths = true,
            "--vc-sweep" => vc_sweep = true,
            "--bursty-sweep" => bursty_sweep = true,
            "--fault-sweep" => fault_sweep = true,
            "--report" => report_path = Some(value("--report")),
            "--fresh" => fresh = true,
            "--halt-after-shards" => {
                halt_after = Some(
                    value("--halt-after-shards")
                        .parse()
                        .expect("--halt-after-shards takes a number"),
                );
            }
            "--shard-timeout-secs" => {
                shard_timeout_secs = Some(
                    value("--shard-timeout-secs")
                        .parse()
                        .expect("--shard-timeout-secs takes a number of seconds"),
                );
            }
            "--worker-shard" => {
                worker_shard = Some(
                    value("--worker-shard")
                        .parse()
                        .expect("--worker-shard takes a number"),
                );
            }
            unknown => {
                eprintln!(
                    "unknown argument {unknown}; usage: \
                     expt-campaign --dir DIR [--scenarios N] [--seed S] \
                     [--shards K] [--workers W] \
                     [--buffer-depths | --vc-sweep | --bursty-sweep | --fault-sweep] \
                     [--report PATH] [--fresh] [--halt-after-shards N] \
                     [--shard-timeout-secs T]\n\
                     exit codes: 0 pass, 1 violations or campaign error, \
                     2 usage error, 3 halted early by --halt-after-shards \
                     (resumable — re-invoke with the same flags)"
                );
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("expt-campaign requires --dir DIR (the campaign checkpoint directory)");
        std::process::exit(2);
    };
    if [buffer_depths, vc_sweep, bursty_sweep, fault_sweep]
        .iter()
        .filter(|&&f| f)
        .count()
        > 1
    {
        eprintln!(
            "--buffer-depths, --vc-sweep, --bursty-sweep and --fault-sweep are \
             mutually exclusive"
        );
        std::process::exit(2);
    }

    let campaign = if buffer_depths {
        Campaign::buffer_sweep(seed, scenarios)
    } else if vc_sweep {
        Campaign::vc_sweep(seed, scenarios)
    } else if bursty_sweep {
        Campaign::bursty_sweep(seed, scenarios)
    } else if fault_sweep {
        Campaign::fault_sweep(seed, scenarios)
    } else {
        Campaign::new(seed, scenarios)
    };
    let mut fleet = Fleet::new(campaign, shards, &dir);
    if let Some(secs) = shard_timeout_secs {
        fleet = fleet.with_shard_timeout(std::time::Duration::from_secs(secs));
    }

    // Worker mode: run exactly one shard, commit its checkpoint, exit.
    // Spawned by the orchestrator below with the same campaign flags.
    if let Some(index) = worker_shard {
        if let Err(error) = fleet.run_shard(index) {
            eprintln!("shard {index} worker failed: {error}");
            std::process::exit(1);
        }
        return;
    }

    if let Err(error) = fleet.prepare_dir(fresh) {
        eprintln!("cannot use campaign directory {dir}: {error}");
        std::process::exit(1);
    }

    // Orchestrator: re-invoke this binary as one worker process per
    // incomplete shard, at most `workers` at a time.  Workers inherit
    // stderr (diagnostics) but not stdout (kept snapshot-clean).
    let exe = std::env::current_exe().expect("cannot locate own executable");
    let start = Instant::now();
    let spawn = |range: &wnoc_conformance::ShardRange| {
        let mut command = Command::new(&exe);
        command
            .arg("--dir")
            .arg(&dir)
            .arg("--scenarios")
            .arg(scenarios.to_string())
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--shards")
            .arg(shards.to_string())
            .arg("--worker-shard")
            .arg(range.index.to_string())
            .stdout(Stdio::null());
        if buffer_depths {
            command.arg("--buffer-depths");
        }
        if vc_sweep {
            command.arg("--vc-sweep");
        }
        if bursty_sweep {
            command.arg("--bursty-sweep");
        }
        if fault_sweep {
            command.arg("--fault-sweep");
        }
        command.spawn()
    };
    let summary = match fleet.run_with(workers, halt_after, spawn) {
        Ok(summary) => summary,
        Err(error) => {
            eprintln!("campaign fleet aborted: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "fleet ran {} shard(s), reused {} checkpointed shard(s), took {:.2?} \
         on {workers} worker(s)",
        summary.ran.len(),
        summary.reused.len(),
        start.elapsed()
    );

    print!("{}", fleet.render_status(&summary));
    if summary.halted {
        eprintln!("campaign halted after {} shard(s); re-run to resume", {
            summary.ran.len()
        });
        std::process::exit(3);
    }

    let report = match fleet.merge() {
        Ok(report) => report,
        Err(error) => {
            eprintln!("campaign merge failed: {error}");
            std::process::exit(1);
        }
    };

    if let Some(path) = report_path {
        std::fs::write(&path, report.render_json())
            .unwrap_or_else(|e| panic!("cannot write report {path}: {e}"));
        eprintln!("machine-readable report written to {path}");
    }

    print!("{}", report.render());
    if !report.passed() {
        std::process::exit(1);
    }
}
