//! Regenerates Table I: arbitration weights of router R(1,1) in a 2×2 mesh.

fn main() {
    let table = wnoc_bench::Table1::run().expect("table 1 computation");
    print!("{}", table.render());
}
