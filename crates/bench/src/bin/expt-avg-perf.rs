//! Measures the average-performance impact of WaW+WaP on the cycle-accurate
//! platform (operation mode).  Pass `--small` for a quick 4×4 run.

use wnoc_bench::avg_perf::{render, run, AvgPerfParams};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let params = if small {
        AvgPerfParams {
            mesh_side: 4,
            loaded_cores: 15,
            events_per_core: 60,
            ..AvgPerfParams::default()
        }
    } else {
        AvgPerfParams::default()
    };
    let result = run(params).expect("average performance run");
    print!("{}", render(&result));
}
