//! Degraded-mode WCTT sweep (`F1`): link/router faults as a design concern.
//!
//! Injects pinned permanent faults (1–3 severed links, one dead router)
//! into the all-to-one hotspot platform on the 4×4 and 8×8 meshes, reroutes
//! the survivors over the up*/down* spanning forest and prints observed
//! closed-loop worst latencies next to the healthy XY bound and the freshly
//! built degraded bound, then repeats the faults with mid-run activation to
//! pin the epoch-flush/retransmission drain invariant (see
//! `wnoc_bench::fault_sweep`).  No arguments; the output is fully
//! deterministic and golden-snapshot-tested.

use wnoc_bench::fault_sweep::FaultSweepTable;

fn main() {
    match FaultSweepTable::generate() {
        Ok(table) => print!("{}", table.render()),
        Err(error) => {
            eprintln!("fault sweep failed: {error}");
            std::process::exit(1);
        }
    }
}
