//! Ablation of the two mechanisms (WaP alone, WaW alone, both) on the 8×8
//! all-to-memory scenario.

fn main() {
    let ablation = wnoc_bench::Ablation::run(8, 4, 4).expect("ablation computation");
    print!("{}", ablation.render());
}
