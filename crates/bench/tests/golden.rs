//! Golden-output snapshot tests for every `expt-*` binary: refactors cannot
//! silently change the reproduced paper numbers.
//!
//! Each test runs the binary (the exact build under test, via
//! `CARGO_BIN_EXE_*`), normalizes its stdout (line endings, trailing
//! whitespace, volatile lines such as timings) and diffs it against the
//! snapshot under `tests/golden/`.  To regenerate snapshots after an
//! intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release -p wnoc-bench --test golden -- --include-ignored
//! ```
//!
//! The two heaviest binaries are `#[ignore]`d in debug builds (a debug
//! simulator run takes minutes); CI runs them in release via
//! `--include-ignored`.

use std::path::PathBuf;
use std::process::Command;

/// Lines that may legitimately differ between runs (timings, thread counts).
fn is_volatile(line: &str) -> bool {
    ["took ", "elapsed", "thread(s)"]
        .iter()
        .any(|pattern| line.contains(pattern))
}

/// Normalizes output for a stable diff: unified line endings, no trailing
/// whitespace, volatile lines dropped.
fn normalize(raw: &str) -> String {
    let mut lines: Vec<String> = raw
        .replace("\r\n", "\n")
        .lines()
        .map(|line| line.trim_end().to_owned())
        .filter(|line| !is_volatile(line))
        .collect();
    while lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    lines.join("\n") + "\n"
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Runs `binary` with `args` and compares normalized stdout against the
/// snapshot `tests/golden/<name>.txt`.
fn check_golden(name: &str, binary: &str, args: &[&str]) {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {binary}: {e}"));
    assert!(
        output.status.success(),
        "{name} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = normalize(&String::from_utf8_lossy(&output.stdout));

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    let expected = normalize(&expected);
    if actual != expected {
        // A compact line diff beats a giant string assert.
        let mut diff = String::new();
        for (index, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
            if want != got {
                diff.push_str(&format!("line {}:\n  -{want}\n  +{got}\n", index + 1));
            }
        }
        let (want_count, got_count) = (expected.lines().count(), actual.lines().count());
        if want_count != got_count {
            diff.push_str(&format!(
                "line count changed: {want_count} -> {got_count}\n"
            ));
        }
        panic!(
            "{name} output drifted from tests/golden/{name}.txt \
             (run ./scripts/regen-golden.sh to accept an intentional change, \
             which regenerates every golden including the kernel digests):\n{diff}"
        );
    }
}

#[test]
fn golden_expt_table1() {
    check_golden("expt-table1", env!("CARGO_BIN_EXE_expt-table1"), &[]);
}

#[test]
fn golden_expt_table2() {
    check_golden("expt-table2", env!("CARGO_BIN_EXE_expt-table2"), &[]);
}

#[test]
fn golden_expt_table3() {
    check_golden("expt-table3", env!("CARGO_BIN_EXE_expt-table3"), &[]);
}

#[test]
fn golden_expt_fig2a() {
    check_golden("expt-fig2a", env!("CARGO_BIN_EXE_expt-fig2a"), &[]);
}

#[test]
fn golden_expt_fig2b() {
    check_golden("expt-fig2b", env!("CARGO_BIN_EXE_expt-fig2b"), &[]);
}

#[test]
fn golden_expt_slot_model() {
    check_golden(
        "expt-slot-model",
        env!("CARGO_BIN_EXE_expt-slot-model"),
        &[],
    );
}

#[test]
fn golden_expt_ablation() {
    check_golden("expt-ablation", env!("CARGO_BIN_EXE_expt-ablation"), &[]);
}

/// ~40 s in a debug build; CI covers it in release with `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_avg_perf() {
    check_golden("expt-avg-perf", env!("CARGO_BIN_EXE_expt-avg-perf"), &[]);
}

/// A small seeded campaign; the summary depends only on `(scenarios, seed)`,
/// not on the worker count.  Slow in debug, covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_conformance() {
    check_golden(
        "expt-conformance",
        env!("CARGO_BIN_EXE_expt-conformance"),
        &["--scenarios", "25", "--seed", "7", "--threads", "2"],
    );
}

/// The same campaign over the virtual-channel dimension: pins both the VC
/// sampler and the priority-preemptive verdicts.  Slow in debug, covered in
/// release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_conformance_vc_sweep() {
    check_golden(
        "expt-conformance-vc-sweep",
        env!("CARGO_BIN_EXE_expt-conformance"),
        &[
            "--scenarios",
            "25",
            "--seed",
            "7",
            "--threads",
            "2",
            "--vc-sweep",
        ],
    );
}

/// The same campaign over the buffer-depth dimension: pins both the depth
/// sampler and the buffer-aware verdicts.  Slow in debug, covered in release
/// by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_conformance_buffer_depths() {
    check_golden(
        "expt-conformance-buffer-depths",
        env!("CARGO_BIN_EXE_expt-conformance"),
        &[
            "--scenarios",
            "25",
            "--seed",
            "7",
            "--threads",
            "2",
            "--buffer-depths",
        ],
    );
}

/// The sharded fleet runner on the same 25-scenario campaign: pins the
/// deterministic shard table *and* the merged report, which must stay
/// byte-for-byte the `expt-conformance` report.  The campaign directory is
/// volatile (a temp dir) but the snapshot is not: stdout contains no paths,
/// and `--fresh` pins every attempts counter at 1.  Slow in debug, covered
/// in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_campaign() {
    let dir = std::env::temp_dir().join(format!("wnoc-golden-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().expect("utf-8 temp dir").to_owned();
    check_golden(
        "expt-campaign",
        env!("CARGO_BIN_EXE_expt-campaign"),
        &[
            "--dir",
            &dir_arg,
            "--fresh",
            "--scenarios",
            "25",
            "--seed",
            "7",
            "--shards",
            "4",
            "--workers",
            "2",
        ],
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A seeded hill-climb on the banked 16×16 platform: pins the proposal
/// stream, the accept decisions, the Pareto front, the simulator spot
/// checks, and the closing differential sweep (incremental bounds must stay
/// bit-identical to from-scratch oracles).  Timing lines carry `took` and
/// are filtered.  Slow in debug, covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_dse() {
    check_golden(
        "expt-dse",
        env!("CARGO_BIN_EXE_expt-dse"),
        &["--candidates", "10000", "--seed", "7"],
    );
}

/// Depth-1 8×8 closed loops are slow in debug; covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_buffer_sweep() {
    check_golden(
        "expt-buffer-sweep",
        env!("CARGO_BIN_EXE_expt-buffer-sweep"),
        &[],
    );
}

/// 8×8 multi-VC closed loops are slow in debug; covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_vc_sweep() {
    check_golden("expt-vc-sweep", env!("CARGO_BIN_EXE_expt-vc-sweep"), &[]);
}

/// The same campaign over the bursty arrival-curve dimension: pins the
/// bursty sampler, the open-loop driver and the graph-based buffer-aware
/// verdicts.  Slow in debug, covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_conformance_bursty_sweep() {
    check_golden(
        "expt-conformance-bursty-sweep",
        env!("CARGO_BIN_EXE_expt-conformance"),
        &[
            "--scenarios",
            "25",
            "--seed",
            "7",
            "--threads",
            "2",
            "--bursty-sweep",
        ],
    );
}

/// The same campaign over the fault-injection dimension: pins the fault
/// sampler, the up*/down* reroute, the degraded-oracle verdicts and the
/// mid-run drain checks — plus the v4 checkpoint tag via the fleet path.
/// Slow in debug, covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_conformance_fault_sweep() {
    check_golden(
        "expt-conformance-fault-sweep",
        env!("CARGO_BIN_EXE_expt-conformance"),
        &[
            "--scenarios",
            "25",
            "--seed",
            "7",
            "--threads",
            "2",
            "--fault-sweep",
        ],
    );
}

/// The pinned degraded-mode WCTT sweep (`F1`): severed links and a dead
/// router on 4×4/8×8 hotspots, tree reroute, degraded bounds and the
/// mid-run activation drain counters.  Slow in debug, covered in release by
/// CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_fault_sweep() {
    check_golden(
        "expt-fault-sweep",
        env!("CARGO_BIN_EXE_expt-fault-sweep"),
        &[],
    );
}

/// Open-loop 8×8 bursty runs plus the workload trace replays are slow in
/// debug; covered in release by CI.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn golden_expt_bursty_sweep() {
    check_golden(
        "expt-bursty-sweep",
        env!("CARGO_BIN_EXE_expt-bursty-sweep"),
        &[],
    );
}
