//! Fault-injection and resume tests for the sharded campaign runner
//! (`expt-campaign`): a SIGKILL'd worker, a truncated checkpoint, and a
//! halted campaign must all resume to a final report *byte-identical* to the
//! single-process run, re-running only the shards that were actually
//! incomplete (observed via per-shard attempt counters and checkpoint
//! mtimes).
//!
//! The kill window is deterministic: `WNOC_FLEET_TEST_STALL_MS` makes a
//! worker stall between computing its outcomes and committing its
//! checkpoint, so the test can kill it when the shard is provably mid-flight
//! (attempt recorded, nothing committed).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

use wnoc_conformance::Campaign;

const EXE: &str = env!("CARGO_BIN_EXE_expt-campaign");
const STALL_ENV: &str = wnoc_conformance::fleet::STALL_ENV;
const STALL_ONCE_ENV: &str = wnoc_conformance::fleet::STALL_ONCE_ENV;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wnoc-fleet-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The orchestrator invocation every test uses: seeded campaign, explicit
/// shard count, single worker (the container may have one core; a fixed
/// worker count also makes completion order reproducible).
fn campaign_cmd(dir: &Path, scenarios: usize, shards: usize) -> Command {
    let mut cmd = Command::new(EXE);
    cmd.arg("--dir")
        .arg(dir)
        .arg("--scenarios")
        .arg(scenarios.to_string())
        .arg("--seed")
        .arg("7")
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--workers")
        .arg("1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// The single-process reference report, straight from the library.
fn reference_json(scenarios: usize) -> String {
    Campaign::new(7, scenarios).run(2).unwrap().render_json()
}

fn attempts(dir: &Path, shard: usize) -> usize {
    std::fs::read_to_string(dir.join(format!("shard-{shard:03}.attempts")))
        .map(|text| text.lines().count())
        .unwrap_or(0)
}

fn manifest_mtime(dir: &Path, shard: usize) -> SystemTime {
    std::fs::metadata(dir.join(format!("shard-{shard:03}.manifest.json")))
        .and_then(|meta| meta.modified())
        .unwrap_or_else(|e| panic!("shard {shard} manifest mtime: {e}"))
}

/// Kills a worker with SIGKILL mid-shard (attempt recorded, checkpoint not
/// yet committed), then resumes: the final report must be byte-identical to
/// the single-process run and only the killed shard may have re-run.
#[test]
fn sigkilled_worker_resumes_byte_identically() {
    let dir = temp_dir("sigkill");
    const SCENARIOS: usize = 6;
    const SHARDS: usize = 3;

    // A lone worker process for shard 0, stalled between compute and commit.
    let mut worker = Command::new(EXE)
        .arg("--dir")
        .arg(&dir)
        .arg("--scenarios")
        .arg(SCENARIOS.to_string())
        .arg("--seed")
        .arg("7")
        .arg("--shards")
        .arg(SHARDS.to_string())
        .arg("--worker-shard")
        .arg("0")
        .env(STALL_ENV, "30000")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stalled worker");

    // Wait for the shard to be provably mid-flight: the attempt line is the
    // first thing a worker writes, the checkpoint pair is the last.
    let deadline = Instant::now() + Duration::from_secs(60);
    while attempts(&dir, 0) == 0 {
        assert!(Instant::now() < deadline, "worker never started its shard");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !dir.join("shard-000.manifest.json").exists(),
        "stall window missed: worker committed before the kill"
    );
    worker.kill().expect("SIGKILL the worker");
    worker.wait().expect("reap the worker");

    // The kill left shard 0 attempted but uncommitted.
    assert_eq!(attempts(&dir, 0), 1);
    assert!(!dir.join("shard-000.partial.json").exists());
    assert!(!dir.join("shard-000.manifest.json").exists());

    // Resume: the orchestrator re-runs shard 0 (second attempt) and runs the
    // never-attempted shards once each.
    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--report")
        .arg(dir.join("report.json"))
        .output()
        .expect("run campaign");
    assert!(
        output.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(attempts(&dir, 0), 2, "killed shard re-ran");
    assert_eq!(attempts(&dir, 1), 1);
    assert_eq!(attempts(&dir, 2), 1);

    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(SCENARIOS), "byte-identical report");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncates one committed partial report: resume must detect the digest
/// mismatch, re-run exactly that shard (attempt counters), leave the intact
/// shards' checkpoints untouched (mtimes), and reproduce the single-process
/// bytes.
#[test]
fn truncated_partial_reruns_only_that_shard() {
    let dir = temp_dir("truncate");
    const SCENARIOS: usize = 6;
    const SHARDS: usize = 3;

    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .output()
        .expect("run campaign");
    assert!(
        output.status.success(),
        "initial campaign failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let intact_mtime_0 = manifest_mtime(&dir, 0);
    let intact_mtime_2 = manifest_mtime(&dir, 2);

    // Corrupt shard 1's partial behind the manifest's back.
    let partial = dir.join("shard-001.partial.json");
    let bytes = std::fs::read(&partial).unwrap();
    std::fs::write(&partial, &bytes[..bytes.len() / 2]).unwrap();

    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--report")
        .arg(dir.join("report.json"))
        .output()
        .expect("resume campaign");
    assert!(
        output.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Only the corrupt shard re-ran...
    assert_eq!(attempts(&dir, 0), 1);
    assert_eq!(attempts(&dir, 1), 2, "corrupt shard re-ran");
    assert_eq!(attempts(&dir, 2), 1);
    // ...and the intact checkpoints were reused, not rewritten.
    assert_eq!(manifest_mtime(&dir, 0), intact_mtime_0);
    assert_eq!(manifest_mtime(&dir, 2), intact_mtime_2);

    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(SCENARIOS), "byte-identical report");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--halt-after-shards` simulates the whole campaign dying (exit 3,
/// in-flight workers killed); a plain re-invocation finishes the job and
/// reproduces the single-process bytes.
#[test]
fn halted_campaign_resumes_byte_identically() {
    let dir = temp_dir("halt");
    const SCENARIOS: usize = 6;
    const SHARDS: usize = 3;

    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--halt-after-shards")
        .arg("1")
        .output()
        .expect("run halted campaign");
    assert_eq!(
        output.status.code(),
        Some(3),
        "halt exits 3:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--report")
        .arg(dir.join("report.json"))
        .output()
        .expect("resume campaign");
    assert!(
        output.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let status = String::from_utf8_lossy(&output.stdout);
    assert!(status.contains("reused"), "resume reuses the halted shard");

    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(SCENARIOS), "byte-identical report");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Watchdog recovery: every shard's *first* attempt hangs (stall-once env),
/// the per-shard timeout kills it, and the automatic retry — which does not
/// stall — completes the campaign byte-identically.  Attempt counters prove
/// each shard ran exactly twice.
#[test]
fn watchdog_kills_hung_worker_and_retry_succeeds() {
    let dir = temp_dir("watchdog-retry");
    const SCENARIOS: usize = 4;
    const SHARDS: usize = 2;

    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--shard-timeout-secs")
        .arg("2")
        .arg("--report")
        .arg(dir.join("report.json"))
        .env(STALL_ONCE_ENV, "60000")
        .output()
        .expect("run campaign under watchdog");
    assert!(
        output.status.success(),
        "watchdog retry failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    for shard in 0..SHARDS {
        assert_eq!(attempts(&dir, shard), 2, "shard {shard} was killed once");
    }

    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(SCENARIOS), "byte-identical report");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Watchdog escalation: a worker that hangs on *every* attempt is killed
/// twice and the campaign aborts with the permanent shard failure (exit 1,
/// stderr names the shard); nothing about the directory prevents a later
/// resume once the hang is fixed.
#[test]
fn watchdog_double_timeout_fails_the_shard_permanently() {
    let dir = temp_dir("watchdog-fail");
    const SCENARIOS: usize = 2;
    const SHARDS: usize = 1;

    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--shard-timeout-secs")
        .arg("1")
        .env(STALL_ENV, "60000")
        .output()
        .expect("run campaign with a permanently hung worker");
    assert_eq!(
        output.status.code(),
        Some(1),
        "double timeout exits 1:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("shard 000 failed permanently"),
        "stderr names the failed shard: {stderr}"
    );
    assert_eq!(attempts(&dir, 0), 2, "both attempts were recorded");

    // The hang "fixed" (env cleared), a plain re-invocation completes.
    let output = campaign_cmd(&dir, SCENARIOS, SHARDS)
        .arg("--report")
        .arg(dir.join("report.json"))
        .output()
        .expect("resume campaign");
    assert!(
        output.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(SCENARIOS), "byte-identical report");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A campaign directory written by a different configuration is rejected
/// outright (exit 1, no merge); `--fresh` wipes it and starts over.
#[test]
fn stale_directory_is_rejected_and_fresh_wipes_it() {
    let dir = temp_dir("stale");
    let output = campaign_cmd(&dir, 4, 2).output().expect("run campaign");
    assert!(output.status.success());

    // Same directory, different scenario count: refused, nothing merged.
    let output = campaign_cmd(&dir, 5, 2).output().expect("run stale");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("config mismatch"), "stderr: {stderr}");

    // --fresh discards the old campaign and runs the new one.
    let output = campaign_cmd(&dir, 5, 2)
        .arg("--fresh")
        .arg("--report")
        .arg(dir.join("report.json"))
        .output()
        .expect("run fresh");
    assert!(
        output.status.success(),
        "fresh run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(5));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty campaign is a no-op fleet, not an error, and still matches the
/// single-process report bytes.
#[test]
fn empty_campaign_merges_to_the_empty_report() {
    let dir = temp_dir("empty");
    let output = campaign_cmd(&dir, 0, 4)
        .arg("--report")
        .arg(dir.join("report.json"))
        .output()
        .expect("run empty campaign");
    assert!(
        output.status.success(),
        "empty campaign failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert_eq!(report, reference_json(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The issue's acceptance bar: the full seed-7 200-scenario campaign is
/// byte-identical to the single-process run for shard counts {1, 2, 4, 7}.
/// Minutes of simulation in a debug build; CI covers it in release with
/// `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug; run in release")]
fn acceptance_200_scenarios_all_shard_counts() {
    const SCENARIOS: usize = 200;
    let reference = reference_json(SCENARIOS);
    for shards in [1usize, 2, 4, 7] {
        let dir = temp_dir(&format!("accept-{shards}"));
        let output = campaign_cmd(&dir, SCENARIOS, shards)
            .arg("--report")
            .arg(dir.join("report.json"))
            .output()
            .expect("run campaign");
        assert!(
            output.status.success(),
            "{shards}-shard campaign failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert_eq!(report, reference, "{shards} shards byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
