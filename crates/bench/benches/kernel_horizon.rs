//! Criterion bench: the event-horizon kernel against its dense per-cycle
//! reference, on the two traffic regimes that bracket its design space.
//!
//! * **dense traffic** — a saturated 8×8 hotspot, where something moves at
//!   every router every cycle, so the horizon is `now + 1` essentially
//!   always and the event-horizon machinery can only add overhead.  The
//!   horizon kernel must stay within a few percent of the dense reference
//!   here (the PR gate is 5% against `main`).
//! * **sparse closed-loop probing** — a single flow crossing a 12×12 mesh
//!   with one outstanding message, where almost every cycle is inert for
//!   almost every component: blocked-router skipping, horizon jumps and the
//!   contention-free worm fast-forward dominate, and the horizon kernel
//!   should win by an order of magnitude.
//!
//! Golden-free by design: wall-clock benches have no stable output to pin.
//! The bit-for-bit equivalence of the two kernels is pinned elsewhere
//! (`kernel_equivalence`, `differential`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Mesh, NocConfig};
use wnoc_sim::network::Network;
use wnoc_sim::Simulation;

/// Saturated hotspot stepping: every cycle is busy, horizon ≈ `now + 1`.
fn bench_dense_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_horizon/dense_hotspot_8x8");
    let cycles_per_iter = 1_000u64;
    group.throughput(Throughput::Elements(cycles_per_iter));
    group.sample_size(20);
    for (label, dense) in [("horizon", false), ("dense-reference", true)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mesh = Mesh::square(8).unwrap();
            let hotspot = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, hotspot).unwrap();
            b.iter_batched(
                || {
                    let mut network = Network::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
                    network.set_dense_kernel(dense);
                    let dst = mesh.node_id(hotspot).unwrap();
                    for flow in flows.flows() {
                        for _ in 0..6 {
                            network.offer(flow.src, dst, 4).unwrap();
                        }
                    }
                    network
                },
                |mut network| {
                    for _ in 0..cycles_per_iter {
                        network.step();
                    }
                    black_box(network.stats().flits_delivered)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Sparse probing: one flow, one outstanding message, a 12×12 mesh of idle
/// routers — the regime the horizon kernel (jumps, blocked-router skipping,
/// worm fast-forward) was built for.
fn bench_sparse_probing(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_horizon/sparse_probe_12x12");
    let probe_cycles = 4_000u64;
    group.throughput(Throughput::Elements(probe_cycles));
    group.sample_size(20);
    let mesh = Mesh::square(12).unwrap();
    let flows = FlowSet::from_pairs(
        &mesh,
        vec![(
            mesh.node_id(Coord::from_row_col(11, 11)).unwrap(),
            mesh.node_id(Coord::from_row_col(0, 0)).unwrap(),
        )],
    )
    .unwrap();
    for (label, dense) in [("horizon", false), ("dense-reference", true)] {
        for (design_label, config, message_flits) in [
            ("regular4", NocConfig::regular(4), 4u32),
            ("waw_wap", NocConfig::waw_wap(), 1u32),
        ] {
            group.bench_function(BenchmarkId::new(label, design_label), |b| {
                b.iter_batched(
                    || {
                        // Construction is excluded: the regimes differ in
                        // *stepping* cost, and a 12×12 build would drown it.
                        let mut sim = Simulation::new(mesh, config, &flows).unwrap();
                        sim.set_dense_kernel(dense);
                        sim
                    },
                    |mut sim| {
                        let report = sim
                            .run_closed_loop(&flows, message_flits, probe_cycles)
                            .unwrap();
                        black_box(report.max())
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dense_traffic, bench_sparse_probing);
criterion_main!(benches);
