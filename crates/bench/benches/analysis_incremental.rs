//! Criterion bench: the incremental analysis engine against from-scratch
//! oracle construction — per-oracle warm-cache query cost, the DSE
//! mutate-and-evaluate hot path, and the scratch comparator it must beat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wnoc_core::analysis::oracle::WcttBoundModel;
use wnoc_core::analysis::{Analysis, IncrementalAnalysis, Mutation, PreemptiveOracle};
use wnoc_core::flow::FlowSet;
use wnoc_core::port::Port;
use wnoc_core::vc::VcConfig;
use wnoc_core::{BufferConfig, Coord, FlowId, Mesh, NocConfig, NodeId};
use wnoc_workloads::Placement;

const REQUEST_FLITS: u32 = 1;
const RESPONSE_FLITS: u32 = 4;

/// The paper's 16-thread memory-controller platform (P0 on the 8×8 mesh).
fn paper_platform() -> (Mesh, FlowSet, NocConfig, BufferConfig) {
    let mesh = Mesh::square(8).unwrap();
    let memory = Coord::from_row_col(0, 0);
    let placements = Placement::paper_set(&mesh, memory).unwrap();
    let memory_id = mesh.node_id(memory).unwrap();
    let mut pairs = Vec::new();
    for &core in placements[0].cores() {
        let core_id = mesh.node_id(core).unwrap();
        pairs.push((core_id, memory_id));
        pairs.push((memory_id, core_id));
    }
    let flows = FlowSet::from_pairs(&mesh, pairs).unwrap();
    let config = NocConfig::regular(4);
    let buffers = BufferConfig::uniform(config.input_buffer_flits);
    (mesh, flows, config, buffers)
}

fn engine(flows: &FlowSet, config: &NocConfig, buffers: &BufferConfig) -> IncrementalAnalysis {
    IncrementalAnalysis::new(flows, config, buffers, VcConfig::single()).unwrap()
}

/// Worst round-trip bound over all 16 threads — the DSE objective.
fn round_trip(engine: &mut IncrementalAnalysis) -> u64 {
    let mut worst = 0u64;
    for thread in 0..16 {
        let request = engine
            .message_bound(Analysis::Preemptive, FlowId(2 * thread), REQUEST_FLITS)
            .unwrap();
        let response = engine
            .message_bound(Analysis::Preemptive, FlowId(2 * thread + 1), RESPONSE_FLITS)
            .unwrap();
        worst = worst.max(request.saturating_add(response));
    }
    worst
}

/// Warm-cache query cost, one bench per oracle the engine serves.
fn bench_per_oracle_query(c: &mut Criterion) {
    let (_mesh, flows, config, buffers) = paper_platform();
    let mut group = c.benchmark_group("incremental/query_warm");
    for analysis in [
        Analysis::Regular,
        Analysis::Ubd,
        Analysis::Preemptive,
        Analysis::Slot,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.name()),
            &analysis,
            |b, &analysis| {
                let mut eng = engine(&flows, &config, &buffers);
                round_trip(&mut eng);
                b.iter(|| {
                    black_box(
                        eng.message_bound(analysis, black_box(FlowId(5)), RESPONSE_FLITS)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// The DSE hot path: move one thread (two flow moves), re-evaluate the full
/// objective, move it back.
fn bench_move_eval(c: &mut Criterion) {
    let (mesh, flows, config, buffers) = paper_platform();
    let memory_id = mesh.node_id(Coord::from_row_col(0, 0)).unwrap();
    let home = flows.pairs()[0].0;
    let away = mesh.node_id(Coord::new(7, 7)).unwrap();
    c.bench_function("incremental/move_thread_and_evaluate", |b| {
        let mut eng = engine(&flows, &config, &buffers);
        round_trip(&mut eng);
        b.iter(|| {
            for &core in [away, home].iter() {
                eng.apply(&Mutation::MoveFlow {
                    id: FlowId(0),
                    src: core,
                    dst: memory_id,
                })
                .unwrap();
                eng.apply(&Mutation::MoveFlow {
                    id: FlowId(1),
                    src: memory_id,
                    dst: core,
                })
                .unwrap();
                black_box(round_trip(&mut eng));
            }
        })
    });
}

/// Depth mutations are global-factor updates under round robin: no per-flow
/// terms are invalidated and re-evaluation stays all-hits.
fn bench_depth_eval(c: &mut Criterion) {
    let (_mesh, flows, config, buffers) = paper_platform();
    c.bench_function("incremental/set_depth_and_evaluate", |b| {
        let mut eng = engine(&flows, &config, &buffers);
        round_trip(&mut eng);
        b.iter(|| {
            for depth in [2u32, 4] {
                eng.apply(&Mutation::SetBufferDepth {
                    node: NodeId(9),
                    port: Port::Local,
                    depth,
                })
                .unwrap();
                black_box(round_trip(&mut eng));
            }
        })
    });
}

/// Mutation cost alone: the two flow moves of a thread move, without
/// re-evaluating the objective.
fn bench_move_only(c: &mut Criterion) {
    let (mesh, flows, config, buffers) = paper_platform();
    let memory_id = mesh.node_id(Coord::from_row_col(0, 0)).unwrap();
    let home = flows.pairs()[0].0;
    let away = mesh.node_id(Coord::new(7, 7)).unwrap();
    c.bench_function("incremental/move_thread_only", |b| {
        let mut eng = engine(&flows, &config, &buffers);
        round_trip(&mut eng);
        b.iter(|| {
            for &core in [away, home].iter() {
                eng.apply(&Mutation::MoveFlow {
                    id: FlowId(0),
                    src: core,
                    dst: memory_id,
                })
                .unwrap();
                eng.apply(&Mutation::MoveFlow {
                    id: FlowId(1),
                    src: memory_id,
                    dst: core,
                })
                .unwrap();
            }
        })
    });
}

/// Full recompute as the campaigns define it: rebuild the flow set and the
/// whole oracle suite, evaluate the objective from the rebuilt state.
fn bench_scratch_suite_eval(c: &mut Criterion) {
    let (mesh, flows, config, buffers) = paper_platform();
    let pairs = flows.pairs();
    c.bench_function("incremental/scratch_suite_build_and_evaluate", |b| {
        b.iter(|| {
            let fresh = FlowSet::from_pairs(&mesh, pairs.iter().copied()).unwrap();
            let mut suite = wnoc_core::analysis::oracle_suite_with_vcs(
                &fresh,
                &config,
                mesh,
                &buffers,
                VcConfig::single(),
            )
            .unwrap();
            let oracle = suite.iter_mut().find(|o| o.name() == "preemptive").unwrap();
            let mut worst = 0u64;
            for thread in 0..16 {
                let request = oracle
                    .message_bound(FlowId(2 * thread), REQUEST_FLITS)
                    .unwrap();
                let response = oracle
                    .message_bound(FlowId(2 * thread + 1), RESPONSE_FLITS)
                    .unwrap();
                worst = worst.max(request.saturating_add(response));
            }
            black_box(worst)
        })
    });
}

/// The from-scratch comparator the speedup gate measures against: rebuild
/// the flow set and the preemptive oracle, evaluate the full objective.
fn bench_scratch_eval(c: &mut Criterion) {
    let (mesh, flows, config, buffers) = paper_platform();
    let pairs = flows.pairs();
    c.bench_function("incremental/scratch_build_and_evaluate", |b| {
        b.iter(|| {
            let fresh = FlowSet::from_pairs(&mesh, pairs.iter().copied()).unwrap();
            let mut oracle = PreemptiveOracle::new(&fresh, &config, &buffers, VcConfig::single());
            let mut worst = 0u64;
            for thread in 0..16 {
                let request = oracle
                    .message_bound(FlowId(2 * thread), REQUEST_FLITS)
                    .unwrap();
                let response = oracle
                    .message_bound(FlowId(2 * thread + 1), RESPONSE_FLITS)
                    .unwrap();
                worst = worst.max(request.saturating_add(response));
            }
            black_box(worst)
        })
    });
}

criterion_group!(
    benches,
    bench_per_oracle_query,
    bench_move_eval,
    bench_move_only,
    bench_depth_eval,
    bench_scratch_eval,
    bench_scratch_suite_eval
);
criterion_main!(benches);
