//! Criterion bench: cost of the Figure 2 experiments — planning the 3D path,
//! deriving the per-phase traces and estimating the parallel WCET.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wnoc_core::{Coord, Mesh, NocConfig};
use wnoc_manycore::wcet::{parallel_wcet, WcetEstimator};
use wnoc_workloads::avionics::{default_scenario, TrafficModel};
use wnoc_workloads::placement::Placement;

fn bench_planning(c: &mut Criterion) {
    let planner = default_scenario(2016).unwrap();
    c.bench_function("fig2/plan_3d_path", |b| {
        b.iter(|| {
            let outcome = planner.plan();
            black_box(outcome.expanded_cells)
        })
    });
}

fn bench_phase_derivation(c: &mut Criterion) {
    let planner = default_scenario(2016).unwrap();
    let mesh = Mesh::square(8).unwrap();
    let memory = Coord::from_row_col(0, 0);
    let placements = Placement::paper_set(&mesh, memory).unwrap();
    c.bench_function("fig2/derive_parallel_phases", |b| {
        b.iter(|| {
            let phases = planner
                .parallel_phases(black_box(&placements[0]), TrafficModel::default())
                .unwrap();
            black_box(phases.len())
        })
    });
}

fn bench_parallel_wcet(c: &mut Criterion) {
    let planner = default_scenario(2016).unwrap();
    let mesh = Mesh::square(8).unwrap();
    let memory = Coord::from_row_col(0, 0);
    let placements = Placement::paper_set(&mesh, memory).unwrap();
    let phases = planner
        .parallel_phases(&placements[0], TrafficModel::default())
        .unwrap();
    let mut group = c.benchmark_group("fig2/parallel_wcet");
    for (label, config) in [
        ("regular_l4", NocConfig::regular(4)),
        ("waw_wap", NocConfig::waw_wap()),
    ] {
        let estimator = WcetEstimator::new(8, memory, 30, config).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(parallel_wcet(&estimator, black_box(&phases)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_planning,
    bench_phase_derivation,
    bench_parallel_wcet
);
criterion_main!(benches);
