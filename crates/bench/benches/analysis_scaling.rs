//! Criterion bench: scaling of the analytical WCTT models with mesh size —
//! chained-blocking recursion (regular) vs weighted bandwidth-share model
//! (WaW + WaP) — plus the WaW weight-table derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wnoc_core::analysis::{RegularWcttModel, WeightedWcttModel};
use wnoc_core::flow::FlowSet;
use wnoc_core::routing::{RoutingAlgorithm, XyRouting};
use wnoc_core::weights::WeightTable;
use wnoc_core::{Coord, Mesh, RouterTiming};

fn bench_regular_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/regular_corner_wctt");
    for side in [4u16, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let mesh = Mesh::square(side).unwrap();
            let memory = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, memory).unwrap();
            let corner = XyRouting
                .route(&mesh, Coord::new(side - 1, side - 1), memory)
                .unwrap();
            b.iter(|| {
                let mut model = RegularWcttModel::new(&flows, RouterTiming::CANONICAL, 1);
                black_box(model.route_wctt(black_box(&corner), 1))
            })
        });
    }
    group.finish();
}

fn bench_weighted_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/weighted_corner_wctt");
    for side in [4u16, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let mesh = Mesh::square(side).unwrap();
            let memory = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, memory).unwrap();
            let weights = WeightTable::from_flow_set(&flows);
            let model = WeightedWcttModel::new(weights, RouterTiming::CANONICAL, 1);
            let corner = XyRouting
                .route(&mesh, Coord::new(side - 1, side - 1), memory)
                .unwrap();
            b.iter(|| black_box(model.packet_wctt(black_box(&corner))))
        });
    }
    group.finish();
}

fn bench_weight_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/weight_table_from_flows");
    group.sample_size(20);
    for side in [4u16, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let mesh = Mesh::square(side).unwrap();
            let flows =
                FlowSet::to_and_from_endpoints(&mesh, &[Coord::from_row_col(0, 0)]).unwrap();
            b.iter(|| black_box(WeightTable::from_flow_set(black_box(&flows))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_regular_model,
    bench_weighted_model,
    bench_weight_table
);
criterion_main!(benches);
