//! Criterion bench: cost of the Table III experiment (per-core EEMBC WCET
//! ratios) and of the underlying WCET estimator construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wnoc_bench::Table3;
use wnoc_core::{Coord, NocConfig};
use wnoc_manycore::wcet::WcetEstimator;
use wnoc_workloads::eembc::EembcBenchmark;

fn bench_estimator_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/estimator_new");
    group.sample_size(20);
    for (label, config) in [
        ("regular", NocConfig::regular(4)),
        ("waw_wap", NocConfig::waw_wap()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let est = WcetEstimator::new(8, Coord::from_row_col(0, 0), 30, black_box(config))
                    .unwrap();
                black_box(est.mesh().router_count())
            })
        });
    }
    group.finish();
}

fn bench_core_wcet(c: &mut Criterion) {
    let estimator =
        WcetEstimator::new(8, Coord::from_row_col(0, 0), 30, NocConfig::waw_wap()).unwrap();
    let trace = EembcBenchmark::Matrix.trace(1);
    c.bench_function("table3/core_wcet_single", |b| {
        b.iter(|| {
            black_box(
                estimator
                    .core_wcet(black_box(Coord::from_row_col(7, 7)), &trace)
                    .unwrap(),
            )
        })
    });
}

fn bench_full_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/full");
    group.sample_size(10);
    group.bench_function("8x8_16_benchmarks", |b| {
        b.iter(|| {
            let table = Table3::run(8, 4, 1).unwrap();
            black_box(table.cores_better())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimator_construction,
    bench_core_wcet,
    bench_full_table3
);
criterion_main!(benches);
