//! Criterion bench: cost of regenerating Table II (analytical WCTT bounds for
//! every mesh size, both designs) and of the per-size analytical rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wnoc_core::analysis::table::FlowScenario;
use wnoc_core::analysis::WcttTable;
use wnoc_core::RouterTiming;

fn bench_full_table(c: &mut Criterion) {
    c.bench_function("table2/analytical_full", |b| {
        b.iter(|| {
            let table = WcttTable::table2(black_box(RouterTiming::CANONICAL)).unwrap();
            black_box(table.rows().len())
        })
    });
}

fn bench_per_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/analytical_row");
    for side in [2u16, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            b.iter(|| {
                let row = WcttTable::row(
                    black_box(side),
                    FlowScenario::paper_default(),
                    RouterTiming::CANONICAL,
                    1,
                )
                .unwrap();
                black_box(row.regular.max)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_table, bench_per_size);
criterion_main!(benches);
