//! Criterion bench: raw throughput of the cycle-accurate simulator substrate —
//! cycles per second of an 8×8 network under hotspot load, and the average
//! performance experiment on the 4×4 platform.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use wnoc_bench::avg_perf::{run, AvgPerfParams};
use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Mesh, NocConfig};
use wnoc_sim::network::Network;

fn bench_network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/hotspot_steps");
    let cycles_per_iter = 1_000u64;
    group.throughput(Throughput::Elements(cycles_per_iter));
    group.sample_size(20);
    for (label, config) in [
        ("regular", NocConfig::regular(4)),
        ("waw_wap", NocConfig::waw_wap()),
    ] {
        group.bench_function(label, |b| {
            let mesh = Mesh::square(8).unwrap();
            let hotspot = Coord::from_row_col(0, 0);
            let flows = FlowSet::all_to_one(&mesh, hotspot).unwrap();
            b.iter_batched(
                || {
                    let mut network = Network::new(mesh, config, &flows).unwrap();
                    // Pre-load traffic so every step has work to do.
                    let dst = mesh.node_id(hotspot).unwrap();
                    for flow in flows.flows() {
                        for _ in 0..4 {
                            network.offer(flow.src, dst, 4).unwrap();
                        }
                    }
                    network
                },
                |mut network| {
                    for _ in 0..cycles_per_iter {
                        network.step();
                    }
                    black_box(network.stats().flits_delivered)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_avg_perf_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/avg_perf_4x4");
    group.sample_size(10);
    group.bench_function("both_designs", |b| {
        b.iter(|| {
            let result = run(AvgPerfParams {
                mesh_side: 4,
                loaded_cores: 15,
                events_per_core: 30,
                seed: 7,
                max_cycles: 5_000_000,
            })
            .unwrap();
            black_box(result.waw_wap_cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network_step, bench_avg_perf_small);
criterion_main!(benches);
