//! Benchmark of the conformance campaign runner: single-threaded vs parallel
//! execution of the same seeded scenario campaign.
//!
//! The parallel runner pulls scenario indices from a shared atomic cursor, so
//! its speedup over the single-threaded run (reported by comparing the two
//! benchmark lines) tracks the available cores even though individual
//! scenarios vary wildly in cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wnoc_conformance::Campaign;

/// Seed and size of the benchmarked campaign: large enough that the runner's
/// scheduling matters, small enough for a tight iteration loop.  Debug builds
/// (`cargo test` runs every `harness = false` bench once as a smoke test)
/// shrink the campaign so the tier-1 suite stays fast.
const SEED: u64 = 7;
#[cfg(debug_assertions)]
const SCENARIOS: usize = 4;
#[cfg(not(debug_assertions))]
const SCENARIOS: usize = 24;

fn campaign_runner(c: &mut Criterion) {
    let campaign = Campaign::new(SEED, SCENARIOS);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("conformance_campaign");
    let mut thread_counts = vec![1usize, cores];
    thread_counts.dedup();
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let report = campaign.run(threads).expect("campaign");
                    assert!(report.passed());
                    report.scenario_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, campaign_runner);
criterion_main!(benches);
