//! Steady-state allocation audit: after construction and one warm-up wave,
//! [`Network::step`] must perform **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; the test drives
//! identical traffic waves through a 6×6 WaW+WaP mesh and counts allocator
//! hits during the second wave's drain loop.  Offering messages is allowed to
//! allocate (the packetizer builds packet descriptors, the arena slab grows
//! towards its high-water mark); *stepping* is not — every queue is a
//! preallocated ring, router decisions go through reusable scratch buffers,
//! and statistics tables only touch keys created during the warm-up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Mesh, NocConfig};
use wnoc_sim::network::Network;

/// Counts allocator hits (alloc/realloc) while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the system allocator; the
// only addition is a relaxed counter bump with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Offers one identical wave of hotspot traffic: four 4-flit messages per
/// flow, every flow of the all-to-one set.
fn offer_wave(noc: &mut Network, flows: &FlowSet) {
    for flow in flows.flows() {
        for _ in 0..4 {
            noc.offer(flow.src, flow.dst, 4).unwrap();
        }
    }
}

#[test]
fn steady_state_stepping_does_not_allocate() {
    // Sanity-check the harness first, inside the same test: the counter and
    // the arm flag are process-global statics, so a second #[test] touching
    // them would race under libtest's parallel execution.  An intentional
    // allocation while armed must be counted, otherwise a broken counter
    // would vacuously pass the zero-allocation assertion below.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let probe: Vec<u64> = Vec::with_capacity(32);
    ARMED.store(false, Ordering::SeqCst);
    drop(probe);
    assert!(
        ALLOCATIONS.load(Ordering::SeqCst) > 0,
        "counting allocator failed to observe an ordinary allocation"
    );

    let mesh = Mesh::square(6).unwrap();
    let hotspot = Coord::from_row_col(0, 0);
    let flows = FlowSet::all_to_one(&mesh, hotspot).unwrap();
    let mut noc = Network::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
    let mut sink = Vec::new();

    // Warm-up: the arena slab, scratch buffers, delivery buffer, tracker and
    // stats tables all grow to their steady-state footprint here.
    offer_wave(&mut noc, &flows);
    assert!(noc.run_until_drained(1_000_000), "warm-up wave must drain");
    noc.drain_delivered_into(&mut sink);
    let slab_high_water = noc.arena().capacity();

    // Identical second wave.  The offers themselves may allocate (packet
    // descriptors); the slab must not regrow, and from here on every `step`
    // runs on recycled memory.
    offer_wave(&mut noc, &flows);
    assert_eq!(
        noc.arena().capacity(),
        slab_high_water,
        "arena slab regrew on an identical wave"
    );

    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let drained = noc.run_until_drained(1_000_000);
    ARMED.store(false, Ordering::SeqCst);

    assert!(drained, "steady-state wave must drain");
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocations, 0,
        "Network::step allocated {allocations} times after warm-up"
    );

    // The measured window did real work: the second wave was delivered.
    noc.drain_delivered_into(&mut sink);
    assert_eq!(sink.len(), 2 * 4 * flows.len());
    assert!(noc.arena().is_empty());

    // Sparse phase: a lone worm crossing the drained mesh is delivered by
    // the event-horizon machinery — blocked-router skipping, horizon
    // advancement and the contention-free worm fast-forward — and none of it
    // may allocate either (the fast-forward scratch is preallocated at
    // construction).  Offering happens outside the armed window, as above.
    let fast_forwards_before = noc.fast_forwards();
    let corner = flows
        .flows()
        .iter()
        .map(|f| f.src)
        .max()
        .expect("hotspot set has sources");
    let dst = mesh.node_id(hotspot).unwrap();
    noc.offer(corner, dst, 4).unwrap();

    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let drained = noc.run_until_drained(100_000);
    ARMED.store(false, Ordering::SeqCst);

    assert!(drained, "sparse worm must drain");
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocations, 0,
        "horizon scheduling allocated {allocations} times on the sparse phase"
    );
    assert!(
        noc.fast_forwards() > fast_forwards_before,
        "the lone worm should have been delivered by the fast-forward"
    );
    noc.drain_delivered_into(&mut sink);
    assert_eq!(sink.len(), 2 * 4 * flows.len() + 1);
    assert!(noc.arena().is_empty());
}
