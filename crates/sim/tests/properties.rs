//! Property-based tests of the cycle-accurate simulator: conservation,
//! wormhole integrity and determinism under randomised traffic.

use proptest::prelude::*;

use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Mesh, NocConfig, NodeId};
use wnoc_sim::network::Network;
use wnoc_sim::traffic::{RandomTraffic, TrafficPattern};

fn config_strategy() -> impl Strategy<Value = NocConfig> {
    prop_oneof![
        Just(NocConfig::regular(1)),
        Just(NocConfig::regular(4)),
        Just(NocConfig::regular(8)),
        Just(NocConfig::waw_wap()),
        Just(NocConfig::wap_only()),
        Just(NocConfig::waw_only(4)),
    ]
}

fn build(side: u16, config: NocConfig) -> Network {
    let mesh = Mesh::square(side).unwrap();
    let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
    Network::new(mesh, config, &flows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message offered to the network is eventually delivered in full,
    /// for any design point and any batch of random messages: no flit is ever
    /// lost or duplicated.
    #[test]
    fn all_offered_messages_are_delivered(
        config in config_strategy(),
        seed in any::<u64>(),
        message_count in 1usize..40,
        size in 1u32..6,
    ) {
        let side = 4u16;
        let mut network = build(side, config);
        let mesh = Mesh::square(side).unwrap();
        let nodes = mesh.router_count() as u64;
        let mut offered_messages = 0u64;
        let mut state = seed;
        for _ in 0..message_count {
            // Simple deterministic LCG so the test is reproducible from `seed`.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = NodeId((state >> 16) as usize % nodes as usize);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let dst = NodeId((state >> 16) as usize % nodes as usize);
            if src == dst {
                continue;
            }
            network.offer(src, dst, size).unwrap();
            offered_messages += 1;
        }
        prop_assert!(network.run_until_drained(200_000));
        let stats = network.stats();
        prop_assert_eq!(stats.messages_delivered, offered_messages);
        prop_assert_eq!(stats.flits_injected, stats.flits_delivered);
        prop_assert_eq!(stats.packets_injected, stats.packets_delivered);
    }

    /// Under WaP every delivered packet is a single flit, and the number of
    /// flits on the wire for an n-flit message matches the analytical slicing
    /// (25% overhead for 4-flit cache lines).
    #[test]
    fn wap_wire_occupancy_matches_packetizer(size in 1u32..9, seed in any::<u64>()) {
        let mut network = build(4, NocConfig::waw_wap());
        let mesh = Mesh::square(4).unwrap();
        let nodes = mesh.router_count();
        let src = NodeId(1 + (seed as usize % (nodes - 1)));
        let dst = NodeId(0);
        prop_assume!(src != dst);
        network.offer(src, dst, size).unwrap();
        prop_assert!(network.run_until_drained(50_000));
        let stats = network.stats();
        let geometry = wnoc_core::PhitGeometry::PAPER;
        let payload_bits = (size * geometry.link_width_bits).saturating_sub(geometry.control_bits);
        let expected = u64::from(geometry.wap_slices(payload_bits));
        prop_assert_eq!(stats.flits_delivered, expected);
        prop_assert_eq!(stats.packets_delivered, expected);
    }

    /// The simulator is deterministic: the same configuration and the same
    /// random-traffic seed produce identical statistics.
    #[test]
    fn random_traffic_runs_are_deterministic(seed in any::<u64>(), rate in 1u32..20) {
        let run = || {
            let mesh = Mesh::square(4).unwrap();
            let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
            let mut network = Network::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
            let mut traffic = RandomTraffic::new(
                mesh,
                TrafficPattern::UniformRandom,
                f64::from(rate) / 100.0,
                2,
                seed,
            )
            .unwrap();
            for cycle in 0..300 {
                for msg in traffic.messages_for_cycle(cycle) {
                    network.offer(msg.src, msg.dst, msg.size_flits).unwrap();
                }
                network.step();
            }
            network.run_until_drained(100_000);
            let stats = network.stats();
            (
                stats.messages_delivered,
                stats.flits_delivered,
                stats.overall_traversal_latency().max,
                stats.overall_traversal_latency().sum,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Latency sanity: every delivered message's traversal latency is at least
    /// its hop count and its end-to-end latency is at least its traversal
    /// latency.
    #[test]
    fn latencies_respect_physical_lower_bounds(config in config_strategy(), seed in any::<u64>()) {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let mut network = Network::new(mesh, config, &flows).unwrap();
        let nodes = mesh.router_count() as u64;
        let src_index = 1 + (seed % (nodes - 1)) as usize;
        let src = NodeId(src_index);
        let dst = NodeId(0);
        network.offer(src, dst, 2).unwrap();
        prop_assert!(network.run_until_drained(50_000));
        let flow = network.flow_id(src, dst);
        let stats = network.stats();
        let traversal = stats.flow_traversal_latency(flow).unwrap();
        let end_to_end = stats.flow_message_latency(flow).unwrap();
        let hops = mesh
            .coord_of(src)
            .unwrap()
            .manhattan_distance(Coord::from_row_col(0, 0));
        prop_assert!(traversal.min >= u64::from(hops));
        prop_assert!(end_to_end.max >= traversal.max);
    }
}
