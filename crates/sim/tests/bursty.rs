//! Bursty arrival-curve driver pins: deterministic scheduling, conservation
//! of the offered load, and kernel equivalence of the open-loop replay.

use proptest::prelude::*;

use wnoc_core::flow::FlowSet;
use wnoc_core::{ArrivalCurve, Coord, Mesh, NocConfig};
use wnoc_sim::Simulation;

fn hotspot_flows(side: u16) -> (Mesh, FlowSet) {
    let mesh = Mesh::square(side).unwrap();
    let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
    (mesh, flows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The arrival-curve source is deterministic per seed and conserves the
    /// offered load: every flow injects exactly the envelope's message count
    /// over the release window — `b` front-loaded messages plus one per
    /// sustained gap — and the network delivers all of them.
    #[test]
    fn bursty_source_is_deterministic_and_conserves_offered_load(
        side in 3u16..=4,
        burst in 0u32..=6,
        gap in 100u32..=400,
        cv_step in 0u32..=2,
        message_flits in 1u32..=4,
        seed in any::<u64>(),
    ) {
        let cv = 25 * cv_step;
        let cycles = 2_000u64;
        let curve = ArrivalCurve::bursty(burst, gap).with_jitter(cv);
        let (mesh, flows) = hotspot_flows(side);
        let run = || {
            let mut sim = Simulation::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
            let report = sim.run_bursty(&flows, message_flits, &curve, cycles, seed).unwrap();
            let offered = sim.stats().messages_offered;
            let delivered = sim.stats().messages_delivered;
            (report, offered, delivered)
        };
        let (report, offered, delivered) = run();
        let per_flow = curve.message_count(cycles);
        prop_assert_eq!(offered, per_flow * flows.len() as u64, "offered load off the envelope");
        prop_assert_eq!(delivered, offered, "undelivered messages after drain");
        for (id, _) in flows.iter() {
            let stats = report.per_flow.get(&id);
            prop_assert_eq!(
                stats.map_or(0, |s| s.count),
                per_flow,
                "flow {:?} latency sample count off the envelope",
                id
            );
        }
        // Bit-for-bit reproducible from the same seed.
        let (again, _, _) = run();
        prop_assert_eq!(report, again);
    }
}

/// The open-loop replay must be bit-for-bit identical under the dense
/// per-cycle reference scheduler and the event-horizon kernel — releases are
/// fixed in absolute cycles, so the two kernels see the same offer sequence.
#[test]
fn bursty_runs_are_kernel_equivalent() {
    let (mesh, flows) = hotspot_flows(4);
    let curve = ArrivalCurve::bursty(4, 200).with_jitter(30);
    let run = |dense: bool| {
        let mut sim = Simulation::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
        sim.set_dense_kernel(dense);
        sim.run_bursty(&flows, 3, &curve, 3_000, 42).unwrap()
    };
    assert_eq!(run(false), run(true));
}

/// With no burst and a gap far above the service time, every message flies
/// alone: open-loop end-to-end latencies collapse onto the closed-loop
/// traversal-style regime (no self-queueing), and the report covers every
/// flow.
#[test]
fn burst_free_schedule_sees_no_self_queueing() {
    let (mesh, flows) = hotspot_flows(3);
    let curve = ArrivalCurve::periodic(1_500);
    let mut sim = Simulation::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
    let report = sim.run_bursty(&flows, 2, &curve, 6_000, 7).unwrap();
    assert_eq!(report.per_flow_max().len(), flows.len());
    // A lone 2-flit message on a ≤ 5-hop route is delivered within a few
    // dozen cycles; any self-queueing would add whole gap-sized stalls.
    assert!(
        report.max() < 200,
        "unexpected queueing: max {}",
        report.max()
    );
}
