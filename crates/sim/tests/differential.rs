//! Differential oracle for the event-horizon kernel: random scenarios run
//! through **both** schedulers — the horizon kernel and the dense per-cycle
//! reference retained behind [`Network::set_dense_kernel`] — must produce
//! identical [`SaturatedReport`]s, identical aggregate statistics and
//! identical per-port flit counts.
//!
//! This is the safety net for all future kernel work: any scheduling change
//! that drifts from the dense reference (a router woken a cycle late, a WaW
//! counter missing an idle replenishment, a worm fast-forward mis-accounting
//! a credit) shows up here as a report diff with the full sampled scenario
//! attached.  On failure the scenario descriptor is also written to
//! `target/differential-failure.txt` so the nightly `deep-conformance` CI job
//! can upload it as an artifact.
//!
//! The sampling is deterministic (the vendored proptest shim derives its RNG
//! stream from the property name), so a failure reproduces on every run.
//! `DIFFERENTIAL_CASES` overrides the case count (the nightly job runs a
//! deeper sweep than the default tier-1 budget).

use proptest::prelude::*;

use wnoc_core::config::RouterTiming;
use wnoc_core::flow::FlowSet;
use wnoc_core::vc::{VcAssignment, VcConfig};
use wnoc_core::{
    BufferConfig, Coord, Direction, Error, FaultPlan, Mesh, NocConfig, RetransmitPolicy,
};
use wnoc_sim::network::Network;
use wnoc_sim::{RandomTraffic, SaturatedReport, Simulation, TrafficPattern};

/// One sampled differential case, printable for reproduction.
#[derive(Debug, Clone, Copy)]
struct Case {
    side: u16,
    design: u32,
    family: u32,
    message_flits: u32,
    driver: u32,
    link_cycles: u32,
    vcs: u32,
    /// Fault dimension: 0 none, 1 one mid-run link fault, 2 one cycle-0
    /// link fault, 3 two staggered link faults (two epoch flushes).
    faults: u32,
    salt: u64,
}

impl Case {
    fn config(&self) -> NocConfig {
        let config = match self.design % 6 {
            0 | 1 => NocConfig::waw_wap(),
            2 => NocConfig::regular(1),
            3 => NocConfig::regular(2),
            4 => NocConfig::regular(4),
            _ => NocConfig::regular(8),
        };
        // Multi-cycle links exercise the link-ring horizons (and gate the
        // worm fast-forward, which is a latency-1 closed form).
        config.with_timing(RouterTiming::new(1, self.link_cycles, 1).expect("positive timing"))
    }

    /// The VC configuration: count 1–4, the assignment rule salted.  Multi-VC
    /// networks disable the worm fast-forward and route through the per-VC
    /// priority arbiter, so this dimension exercises scheduling paths the
    /// single-queue sweep never reaches.
    fn vc_config(&self) -> VcConfig {
        if self.vcs <= 1 {
            return VcConfig::single();
        }
        let assignment = if self.salt % 2 == 0 {
            VcAssignment::FlowIndex
        } else {
            VcAssignment::Distance
        };
        VcConfig::new(self.vcs, assignment).expect("vc count in range")
    }

    fn flows(&self, mesh: &Mesh) -> FlowSet {
        let nodes = u64::from(self.side) * u64::from(self.side);
        let pick = self.salt % nodes;
        let coord = Coord::new(
            (pick % u64::from(self.side)) as u16,
            (pick / u64::from(self.side)) as u16,
        );
        match self.family % 3 {
            0 => FlowSet::all_to_one(mesh, coord).expect("coord inside mesh"),
            1 => FlowSet::one_to_all(mesh, coord).expect("coord inside mesh"),
            _ => FlowSet::to_and_from_endpoints(mesh, &[coord]).expect("coord inside mesh"),
        }
    }

    /// The sampled fault plan: directed link faults only, so the mesh can
    /// partition (a severed pair is a legitimate outcome both kernels must
    /// agree on) but drivers that offer unconditionally can still run.
    fn fault_plan(&self, mesh: &Mesh) -> Option<FaultPlan> {
        if self.faults == 0 {
            return None;
        }
        let links = mesh.links();
        let pick = |offset: u64| {
            let index = (self.salt.wrapping_mul(31).wrapping_add(offset)) % links.len() as u64;
            let link = links[index as usize];
            (link.from, link.direction)
        };
        let mut plan = FaultPlan::new();
        match self.faults {
            1 => {
                let (coord, dir) = pick(0);
                plan.fail_link(coord, dir, 37);
            }
            2 => {
                let (coord, dir) = pick(0);
                plan.fail_link(coord, dir, 0);
            }
            _ => {
                let (first, first_dir) = pick(0);
                let (second, second_dir) = pick(7);
                plan.fail_link(first, first_dir, 13);
                plan.fail_link(second, second_dir, 53);
            }
        }
        Some(plan)
    }

    /// Runs the case under one scheduler and returns every observable the
    /// differential compares.  The driver result is compared as a `Result`:
    /// a faulted case may legitimately fail to drain or sever a pair, and
    /// both kernels must agree on the exact error too.
    fn run(&self, dense: bool) -> (Result<SaturatedReport, Error>, Vec<u64>, Vec<u64>) {
        let mesh = Mesh::square(self.side).expect("side in range");
        let config = self.config();
        let flows = self.flows(&mesh);
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        let mut sim = Simulation::with_vcs(mesh, config, &flows, &buffers, self.vc_config())
            .expect("valid platform");
        sim.set_dense_kernel(dense);
        if let Some(plan) = self.fault_plan(&mesh) {
            sim.install_fault_plan(plan, RetransmitPolicy::default())
                .expect("sampled plan fits the mesh");
        }
        let report = match self.driver % 3 {
            0 => sim.run_closed_loop(&flows, self.message_flits, 250),
            1 => sim.run_saturated(&flows, self.message_flits, 80, 160),
            _ => {
                let mut traffic = RandomTraffic::new(
                    mesh,
                    TrafficPattern::UniformRandom,
                    0.08,
                    self.message_flits,
                    self.salt,
                )
                .expect("valid generator");
                sim.run_traffic_report(&mut traffic, 200, 50_000)
            }
        };
        let stats = sim.stats();
        let aggregates = vec![
            stats.cycles,
            stats.messages_offered,
            stats.messages_delivered,
            stats.packets_injected,
            stats.packets_delivered,
            stats.flits_injected,
            stats.flits_delivered,
            stats.messages_retransmitted,
            stats.messages_undeliverable,
            stats.flits_purged,
        ];
        let ports = port_counts(sim.network(), &mesh);
        (report, aggregates, ports)
    }
}

/// Every per-(router, output) flit counter, in deterministic order.
fn port_counts(network: &Network, mesh: &Mesh) -> Vec<u64> {
    let mut counts = Vec::new();
    for coord in mesh.routers() {
        for port in wnoc_core::Port::ALL {
            counts.push(network.port_flits(coord, port));
        }
    }
    counts
}

/// Case budget: quick under the tier-1 debug run, deeper in release and
/// deeper still when the nightly job raises `DIFFERENTIAL_CASES`.
fn cases() -> u32 {
    if let Ok(value) = std::env::var("DIFFERENTIAL_CASES") {
        return value.parse().expect("DIFFERENTIAL_CASES is a number");
    }
    if cfg!(debug_assertions) {
        6
    } else {
        32
    }
}

/// Persists the failing case for the CI artifact upload, then panics.
fn fail(case: &Case, what: &str) -> ! {
    let description = format!("differential kernel mismatch: {what}\ncase: {case:?}\n");
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/differential-failure.txt");
    let _ = std::fs::write(&path, &description);
    panic!("{description}(descriptor written to {})", path.display());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Horizon and dense schedulers agree on every observable, for any
    /// platform, design, message size, driver discipline and fault plan.
    #[test]
    fn horizon_and_dense_kernels_are_bit_identical(
        side in 2u16..=8,
        design in 0u32..6,
        family in 0u32..3,
        message_flits in 1u32..=8,
        driver in 0u32..3,
        link_cycles in 1u32..=3,
        vcs in 1u32..=4,
        faults in 0u32..4,
        salt in 0u64..1_000,
    ) {
        let case = Case { side, design, family, message_flits, driver, link_cycles, vcs, faults, salt };
        let (horizon_report, horizon_stats, horizon_ports) = case.run(false);
        let (dense_report, dense_stats, dense_ports) = case.run(true);
        if horizon_report != dense_report {
            fail(&case, "SaturatedReport diverged");
        }
        if horizon_stats != dense_stats {
            fail(&case, "aggregate NetworkStats diverged");
        }
        if horizon_ports != dense_ports {
            fail(&case, "per-port flit counters diverged");
        }
        // The equality itself is the property; some short saturated windows
        // legitimately record nothing, so emptiness is not asserted.
        prop_assert_eq!(horizon_stats.len(), 10);
    }
}

/// Pinned regression: multi-cycle links on the single-flow closed loop.
/// The worm fast-forward is a latency-1 closed form and must gate itself
/// off here (an early version applied it anyway and delivered probes at
/// roughly half the true latency).
#[test]
fn multi_cycle_links_match_dense() {
    let case = Case {
        side: 5,
        design: 2,
        family: 0,
        message_flits: 1,
        driver: 0,
        link_cycles: 2,
        vcs: 1,
        faults: 0,
        salt: 24, // hotspot (4, 4): the single corner-to-corner-ish probe
    };
    let horizon = case.run(false);
    let dense = case.run(true);
    assert_eq!(horizon, dense, "latency-2 links diverged");
}

/// Pinned regression: the multi-VC hotspot where every ring of the ejection
/// port is contended and the strict-priority VC arbiter interleaves worms
/// every cycle.  Both schedulers must walk the identical per-VC credit and
/// hold state (the horizon kernel may never fast-forward here).
#[test]
fn multi_vc_hotspot_matches_dense() {
    for vcs in 2u32..=4 {
        for salt in [24u64, 25] {
            // salt parity flips the assignment rule (index vs distance).
            let case = Case {
                side: 4,
                design: 4,
                family: 0,
                message_flits: 4,
                driver: 0,
                link_cycles: 1,
                vcs,
                faults: 0,
                salt,
            };
            let horizon = case.run(false);
            let dense = case.run(true);
            assert_eq!(horizon, dense, "multi-VC divergence for {case:?}");
            assert!(
                !horizon.0.as_ref().expect("hotspot drains").is_empty(),
                "the hotspot must complete probes for {case:?}"
            );
        }
    }
}

/// Pinned regression: a fault epoch flush that truncates a worm mid-flight.
/// A long message is strung across the mesh when the activation fires, so the
/// flush must purge flits from router rings *and* the link pipeline, NACK the
/// tail, and retransmit the whole message over the up*/down* tree — with the
/// dense and event-horizon kernels agreeing on every observable (the horizon
/// kernel settles its lazy arbiter idle-debt against the frozen pre-purge
/// request fronts before the purge; an off-by-one there shows up here).
#[test]
fn midrun_worm_truncation_matches_dense() {
    for config in [NocConfig::regular(4), NocConfig::waw_wap()] {
        let mesh = Mesh::square(5).unwrap();
        let flows = FlowSet::from_pairs(
            &mesh,
            vec![(
                mesh.node_id(Coord::from_row_col(0, 4)).unwrap(),
                mesh.node_id(Coord::from_row_col(0, 0)).unwrap(),
            )],
        )
        .unwrap();
        // The 8-flit worm injects at cycle 1 and straddles (0, 2) when the
        // link under it dies at cycle 6.
        let plan = {
            let mut plan = FaultPlan::new();
            plan.fail_link(Coord::from_row_col(0, 2), Direction::West, 6);
            plan
        };
        let run = |dense: bool| {
            let mut sim = Simulation::new(mesh, config, &flows).unwrap();
            sim.set_dense_kernel(dense);
            sim.install_fault_plan(plan.clone(), RetransmitPolicy::default())
                .unwrap();
            let report = sim.run_closed_loop(&flows, 8, 2_000);
            let stats = sim.stats().clone();
            let ports = port_counts(sim.network(), &mesh);
            (
                report,
                stats.cycles,
                stats.messages_retransmitted,
                stats.flits_purged,
                ports,
            )
        };
        let horizon = run(false);
        let dense = run(true);
        assert_eq!(
            horizon,
            dense,
            "mid-worm truncation divergence under {}",
            config.label()
        );
        assert!(
            horizon.2 >= 1,
            "the straddling worm must be NACKed and retransmitted under {}",
            config.label()
        );
        assert!(
            horizon.3 >= 1,
            "the flush must purge in-flight flits under {}",
            config.label()
        );
        assert!(
            !horizon
                .0
                .as_ref()
                .expect("rerouted probe drains")
                .is_empty(),
            "the retransmitted probe must still deliver under {}",
            config.label()
        );
    }
}

/// Pinned regression: the destination router itself dies mid-run.  The flow
/// becomes unreachable, the in-flight worm is dropped undeliverable, and the
/// network must still drain identically under both kernels (the closed loop
/// skips the severed flow rather than stalling).
#[test]
fn midrun_router_death_drops_undeliverable_identically() {
    let mesh = Mesh::square(4).unwrap();
    let flows = FlowSet::from_pairs(
        &mesh,
        vec![
            (
                mesh.node_id(Coord::from_row_col(0, 3)).unwrap(),
                mesh.node_id(Coord::from_row_col(0, 0)).unwrap(),
            ),
            (
                mesh.node_id(Coord::from_row_col(3, 3)).unwrap(),
                mesh.node_id(Coord::from_row_col(3, 0)).unwrap(),
            ),
        ],
    )
    .unwrap();
    let plan = {
        let mut plan = FaultPlan::new();
        plan.fail_router(Coord::from_row_col(0, 0), 5);
        plan
    };
    let run = |dense: bool| {
        let mut sim = Simulation::new(mesh, NocConfig::regular(4), &flows).unwrap();
        sim.set_dense_kernel(dense);
        sim.install_fault_plan(plan.clone(), RetransmitPolicy::default())
            .unwrap();
        let report = sim.run_closed_loop(&flows, 6, 2_000);
        let stats = sim.stats().clone();
        let ports = port_counts(sim.network(), &mesh);
        (report, stats.cycles, stats.messages_undeliverable, ports)
    };
    let horizon = run(false);
    let dense = run(true);
    assert_eq!(horizon, dense, "router-death divergence");
    assert!(
        horizon.2 >= 1,
        "the worm bound for the dead router must be dropped undeliverable"
    );
    // The surviving row-3 flow keeps probing: the loop retires only the
    // severed slot.
    assert!(
        !horizon.0.as_ref().expect("survivors drain").is_empty(),
        "the surviving flow must still complete probes"
    );
}

/// The fast-forward-heavy corner the random sweep rarely hits hard: a single
/// probing flow crossing a large, otherwise empty mesh, where nearly every
/// message flight is delivered by the contention-free worm fast-forward.
#[test]
fn lone_worm_fast_forward_matches_dense() {
    for (config, message_flits) in [
        (NocConfig::regular(8), 8u32),
        (NocConfig::regular(4), 2),
        (NocConfig::waw_wap(), 1),
    ] {
        let mesh = Mesh::square(9).unwrap();
        let flows = FlowSet::from_pairs(
            &mesh,
            vec![(
                mesh.node_id(Coord::from_row_col(8, 8)).unwrap(),
                mesh.node_id(Coord::from_row_col(0, 0)).unwrap(),
            )],
        )
        .unwrap();
        let run = |dense: bool| {
            let mut sim = Simulation::new(mesh, config, &flows).unwrap();
            sim.set_dense_kernel(dense);
            let report = sim.run_closed_loop(&flows, message_flits, 2_000).unwrap();
            let cycles = sim.stats().cycles;
            let ports = port_counts(sim.network(), &mesh);
            (report, cycles, ports)
        };
        let horizon = run(false);
        let dense = run(true);
        assert_eq!(
            horizon,
            dense,
            "lone-worm divergence under {}",
            config.label()
        );
        assert!(
            !horizon.0.is_empty(),
            "the lone worm must complete probes under {}",
            config.label()
        );
    }
}
