//! Differential oracle for the event-horizon kernel: random scenarios run
//! through **both** schedulers — the horizon kernel and the dense per-cycle
//! reference retained behind [`Network::set_dense_kernel`] — must produce
//! identical [`SaturatedReport`]s, identical aggregate statistics and
//! identical per-port flit counts.
//!
//! This is the safety net for all future kernel work: any scheduling change
//! that drifts from the dense reference (a router woken a cycle late, a WaW
//! counter missing an idle replenishment, a worm fast-forward mis-accounting
//! a credit) shows up here as a report diff with the full sampled scenario
//! attached.  On failure the scenario descriptor is also written to
//! `target/differential-failure.txt` so the nightly `deep-conformance` CI job
//! can upload it as an artifact.
//!
//! The sampling is deterministic (the vendored proptest shim derives its RNG
//! stream from the property name), so a failure reproduces on every run.
//! `DIFFERENTIAL_CASES` overrides the case count (the nightly job runs a
//! deeper sweep than the default tier-1 budget).

use proptest::prelude::*;

use wnoc_core::config::RouterTiming;
use wnoc_core::flow::FlowSet;
use wnoc_core::vc::{VcAssignment, VcConfig};
use wnoc_core::{BufferConfig, Coord, Mesh, NocConfig};
use wnoc_sim::network::Network;
use wnoc_sim::{RandomTraffic, SaturatedReport, Simulation, TrafficPattern};

/// One sampled differential case, printable for reproduction.
#[derive(Debug, Clone, Copy)]
struct Case {
    side: u16,
    design: u32,
    family: u32,
    message_flits: u32,
    driver: u32,
    link_cycles: u32,
    vcs: u32,
    salt: u64,
}

impl Case {
    fn config(&self) -> NocConfig {
        let config = match self.design % 6 {
            0 | 1 => NocConfig::waw_wap(),
            2 => NocConfig::regular(1),
            3 => NocConfig::regular(2),
            4 => NocConfig::regular(4),
            _ => NocConfig::regular(8),
        };
        // Multi-cycle links exercise the link-ring horizons (and gate the
        // worm fast-forward, which is a latency-1 closed form).
        config.with_timing(RouterTiming::new(1, self.link_cycles, 1).expect("positive timing"))
    }

    /// The VC configuration: count 1–4, the assignment rule salted.  Multi-VC
    /// networks disable the worm fast-forward and route through the per-VC
    /// priority arbiter, so this dimension exercises scheduling paths the
    /// single-queue sweep never reaches.
    fn vc_config(&self) -> VcConfig {
        if self.vcs <= 1 {
            return VcConfig::single();
        }
        let assignment = if self.salt % 2 == 0 {
            VcAssignment::FlowIndex
        } else {
            VcAssignment::Distance
        };
        VcConfig::new(self.vcs, assignment).expect("vc count in range")
    }

    fn flows(&self, mesh: &Mesh) -> FlowSet {
        let nodes = u64::from(self.side) * u64::from(self.side);
        let pick = self.salt % nodes;
        let coord = Coord::new(
            (pick % u64::from(self.side)) as u16,
            (pick / u64::from(self.side)) as u16,
        );
        match self.family % 3 {
            0 => FlowSet::all_to_one(mesh, coord).expect("coord inside mesh"),
            1 => FlowSet::one_to_all(mesh, coord).expect("coord inside mesh"),
            _ => FlowSet::to_and_from_endpoints(mesh, &[coord]).expect("coord inside mesh"),
        }
    }

    /// Runs the case under one scheduler and returns every observable the
    /// differential compares.
    fn run(&self, dense: bool) -> (SaturatedReport, Vec<u64>, Vec<u64>) {
        let mesh = Mesh::square(self.side).expect("side in range");
        let config = self.config();
        let flows = self.flows(&mesh);
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        let mut sim = Simulation::with_vcs(mesh, config, &flows, &buffers, self.vc_config())
            .expect("valid platform");
        sim.set_dense_kernel(dense);
        let report = match self.driver % 3 {
            0 => sim
                .run_closed_loop(&flows, self.message_flits, 250)
                .expect("closed loop drains"),
            1 => sim
                .run_saturated(&flows, self.message_flits, 80, 160)
                .expect("saturated run"),
            _ => {
                let mut traffic = RandomTraffic::new(
                    mesh,
                    TrafficPattern::UniformRandom,
                    0.08,
                    self.message_flits,
                    self.salt,
                )
                .expect("valid generator");
                sim.run_traffic_report(&mut traffic, 200, 50_000)
                    .expect("random traffic drains")
            }
        };
        let stats = sim.stats();
        let aggregates = vec![
            stats.cycles,
            stats.messages_offered,
            stats.messages_delivered,
            stats.packets_injected,
            stats.packets_delivered,
            stats.flits_injected,
            stats.flits_delivered,
        ];
        let ports = port_counts(sim.network(), &mesh);
        (report, aggregates, ports)
    }
}

/// Every per-(router, output) flit counter, in deterministic order.
fn port_counts(network: &Network, mesh: &Mesh) -> Vec<u64> {
    let mut counts = Vec::new();
    for coord in mesh.routers() {
        for port in wnoc_core::Port::ALL {
            counts.push(network.port_flits(coord, port));
        }
    }
    counts
}

/// Case budget: quick under the tier-1 debug run, deeper in release and
/// deeper still when the nightly job raises `DIFFERENTIAL_CASES`.
fn cases() -> u32 {
    if let Ok(value) = std::env::var("DIFFERENTIAL_CASES") {
        return value.parse().expect("DIFFERENTIAL_CASES is a number");
    }
    if cfg!(debug_assertions) {
        6
    } else {
        32
    }
}

/// Persists the failing case for the CI artifact upload, then panics.
fn fail(case: &Case, what: &str) -> ! {
    let description = format!("differential kernel mismatch: {what}\ncase: {case:?}\n");
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/differential-failure.txt");
    let _ = std::fs::write(&path, &description);
    panic!("{description}(descriptor written to {})", path.display());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Horizon and dense schedulers agree on every observable, for any
    /// platform, design, message size and driver discipline.
    #[test]
    fn horizon_and_dense_kernels_are_bit_identical(
        side in 2u16..=8,
        design in 0u32..6,
        family in 0u32..3,
        message_flits in 1u32..=8,
        driver in 0u32..3,
        link_cycles in 1u32..=3,
        vcs in 1u32..=4,
        salt in 0u64..1_000,
    ) {
        let case = Case { side, design, family, message_flits, driver, link_cycles, vcs, salt };
        let (horizon_report, horizon_stats, horizon_ports) = case.run(false);
        let (dense_report, dense_stats, dense_ports) = case.run(true);
        if horizon_report != dense_report {
            fail(&case, "SaturatedReport diverged");
        }
        if horizon_stats != dense_stats {
            fail(&case, "aggregate NetworkStats diverged");
        }
        if horizon_ports != dense_ports {
            fail(&case, "per-port flit counters diverged");
        }
        // The equality itself is the property; some short saturated windows
        // legitimately record nothing, so emptiness is not asserted.
        prop_assert_eq!(horizon_stats.len(), 7);
    }
}

/// Pinned regression: multi-cycle links on the single-flow closed loop.
/// The worm fast-forward is a latency-1 closed form and must gate itself
/// off here (an early version applied it anyway and delivered probes at
/// roughly half the true latency).
#[test]
fn multi_cycle_links_match_dense() {
    let case = Case {
        side: 5,
        design: 2,
        family: 0,
        message_flits: 1,
        driver: 0,
        link_cycles: 2,
        vcs: 1,
        salt: 24, // hotspot (4, 4): the single corner-to-corner-ish probe
    };
    let horizon = case.run(false);
    let dense = case.run(true);
    assert_eq!(horizon, dense, "latency-2 links diverged");
}

/// Pinned regression: the multi-VC hotspot where every ring of the ejection
/// port is contended and the strict-priority VC arbiter interleaves worms
/// every cycle.  Both schedulers must walk the identical per-VC credit and
/// hold state (the horizon kernel may never fast-forward here).
#[test]
fn multi_vc_hotspot_matches_dense() {
    for vcs in 2u32..=4 {
        for salt in [24u64, 25] {
            // salt parity flips the assignment rule (index vs distance).
            let case = Case {
                side: 4,
                design: 4,
                family: 0,
                message_flits: 4,
                driver: 0,
                link_cycles: 1,
                vcs,
                salt,
            };
            let horizon = case.run(false);
            let dense = case.run(true);
            assert_eq!(horizon, dense, "multi-VC divergence for {case:?}");
            assert!(
                !horizon.0.is_empty(),
                "the hotspot must complete probes for {case:?}"
            );
        }
    }
}

/// The fast-forward-heavy corner the random sweep rarely hits hard: a single
/// probing flow crossing a large, otherwise empty mesh, where nearly every
/// message flight is delivered by the contention-free worm fast-forward.
#[test]
fn lone_worm_fast_forward_matches_dense() {
    for (config, message_flits) in [
        (NocConfig::regular(8), 8u32),
        (NocConfig::regular(4), 2),
        (NocConfig::waw_wap(), 1),
    ] {
        let mesh = Mesh::square(9).unwrap();
        let flows = FlowSet::from_pairs(
            &mesh,
            vec![(
                mesh.node_id(Coord::from_row_col(8, 8)).unwrap(),
                mesh.node_id(Coord::from_row_col(0, 0)).unwrap(),
            )],
        )
        .unwrap();
        let run = |dense: bool| {
            let mut sim = Simulation::new(mesh, config, &flows).unwrap();
            sim.set_dense_kernel(dense);
            let report = sim.run_closed_loop(&flows, message_flits, 2_000).unwrap();
            let cycles = sim.stats().cycles;
            let ports = port_counts(sim.network(), &mesh);
            (report, cycles, ports)
        };
        let horizon = run(false);
        let dense = run(true);
        assert_eq!(
            horizon,
            dense,
            "lone-worm divergence under {}",
            config.label()
        );
        assert!(
            !horizon.0.is_empty(),
            "the lone worm must complete probes under {}",
            config.label()
        );
    }
}
