//! Arrival-curve traffic scheduling: turning per-flow
//! [`ArrivalCurve`] contracts (and replayed workload traces) into explicit
//! per-cycle offer schedules the [`crate::sim::Simulation`] drivers execute.
//!
//! A [`ScheduledTraffic`] is the open-loop counterpart of the closed-loop
//! probing discipline: every message carries an absolute release cycle fixed
//! *before* the run, so the offered load is independent of how the network
//! behaves — exactly the semantics of an arrival curve, and the first traffic
//! shape of this crate whose observed worst case depends on arrival phasing.
//!
//! [`schedule_for`] samples one flow's release cycles from its curve: the
//! first `b` messages release back to back at the curve's phase, the tail
//! follows the sustained gap, and a non-zero coefficient of variation delays
//! each release independently by up to [`ArrivalCurve::jitter_allowance`]
//! cycles (delay-only jitter: releases are never moved *earlier*, so the
//! cumulative envelope — and with it the graph-based bound's burst model —
//! is preserved).  Sampling is deterministic per `(seed, lane)`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wnoc_core::{ArrivalCurve, NodeId};

/// Per-lane seed mixing constant (splitmix64 golden-ratio increment), the
/// same scheme the workload generators use to split one scenario seed into
/// independent streams.
const LANE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One message release of an open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledMessage {
    /// Absolute release cycle, relative to the start of the run.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message size in flits (before packetization).
    pub size_flits: u32,
}

/// A complete open-loop offer schedule, sorted by release cycle.
///
/// Messages sharing a release cycle keep their construction order (the sort
/// is stable), so a schedule built in flow-id order offers in flow-id order —
/// the property that makes replay runs bit-for-bit reproducible under both
/// the event-horizon and the dense kernels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduledTraffic {
    messages: Vec<ScheduledMessage>,
}

impl ScheduledTraffic {
    /// Builds a schedule from `messages`, stably sorting them by release
    /// cycle.
    pub fn new(mut messages: Vec<ScheduledMessage>) -> Self {
        messages.sort_by_key(|m| m.cycle);
        Self { messages }
    }

    /// The schedule's messages in release order.
    pub fn messages(&self) -> &[ScheduledMessage] {
        &self.messages
    }

    /// Number of scheduled messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The last release cycle of the schedule (0 when empty).
    pub fn horizon(&self) -> u64 {
        self.messages.last().map_or(0, |m| m.cycle)
    }

    /// Total scheduled flits.
    pub fn total_flits(&self) -> u64 {
        self.messages.iter().map(|m| u64::from(m.size_flits)).sum()
    }
}

/// Samples one flow's release cycles over `[0, horizon]` from its arrival
/// curve.
///
/// Exactly [`ArrivalCurve::message_count`]`(horizon)` releases are returned
/// — jitter delays individual releases (clamped to `horizon`) but never
/// drops or adds one, so the offered load is a function of the curve alone.
/// The returned cycles are non-decreasing.  `lane` splits `seed` into
/// independent jitter streams, one per flow, with the same golden-ratio
/// mixing the workload generators use.
pub fn schedule_for(curve: &ArrivalCurve, horizon: u64, seed: u64, lane: u64) -> Vec<u64> {
    let count = curve.message_count(horizon);
    let allowance = curve.jitter_allowance();
    let mut rng = (allowance > 0)
        .then(|| ChaCha8Rng::seed_from_u64(seed ^ (lane + 1).wrapping_mul(LANE_SALT)));
    let mut arrivals = Vec::with_capacity(count as usize);
    let mut last = 0u64;
    for j in 0..count {
        let mut release = curve.nominal_arrival(j);
        if let Some(rng) = &mut rng {
            release = release
                .saturating_add(rng.gen_range(0..=allowance))
                .min(horizon);
        }
        // Delay-only jitter keeps releases ordered; the max guards the edge
        // where a clamped-late release follows an unclamped one.
        last = release.max(last);
        arrivals.push(last);
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_releases_exactly_the_envelope_count() {
        for (burst, gap, cv) in [(1u32, 100u32, 0u32), (4, 250, 0), (4, 250, 50), (8, 33, 25)] {
            let curve = ArrivalCurve::bursty(burst, gap).with_jitter(cv);
            for horizon in [0u64, 99, 100, 5_000] {
                let arrivals = schedule_for(&curve, horizon, 7, 3);
                assert_eq!(
                    arrivals.len() as u64,
                    curve.message_count(horizon),
                    "burst {burst} gap {gap} cv {cv} horizon {horizon}"
                );
                assert!(arrivals.iter().all(|&t| t <= horizon));
                assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_lane() {
        let curve = ArrivalCurve::bursty(5, 120).with_jitter(40);
        let a = schedule_for(&curve, 10_000, 42, 0);
        let b = schedule_for(&curve, 10_000, 42, 0);
        assert_eq!(a, b);
        assert_ne!(a, schedule_for(&curve, 10_000, 43, 0));
        assert_ne!(a, schedule_for(&curve, 10_000, 42, 1));
    }

    #[test]
    fn zero_jitter_matches_the_nominal_curve_exactly() {
        let curve = ArrivalCurve::bursty(3, 200).with_phase(50);
        let arrivals = schedule_for(&curve, 1_000, 9, 9);
        let nominal: Vec<u64> = (0..curve.message_count(1_000))
            .map(|j| curve.nominal_arrival(j))
            .collect();
        assert_eq!(arrivals, nominal);
    }

    #[test]
    fn jitter_never_advances_a_release() {
        let curve = ArrivalCurve::bursty(6, 90).with_jitter(50);
        let arrivals = schedule_for(&curve, 4_000, 11, 2);
        for (j, &t) in arrivals.iter().enumerate() {
            assert!(
                t >= curve.nominal_arrival(j as u64),
                "release {j} moved early"
            );
        }
    }

    #[test]
    fn schedules_sort_stably_by_cycle() {
        let traffic = ScheduledTraffic::new(vec![
            ScheduledMessage {
                cycle: 5,
                src: NodeId(1),
                dst: NodeId(0),
                size_flits: 4,
            },
            ScheduledMessage {
                cycle: 0,
                src: NodeId(2),
                dst: NodeId(0),
                size_flits: 4,
            },
            ScheduledMessage {
                cycle: 5,
                src: NodeId(3),
                dst: NodeId(0),
                size_flits: 4,
            },
        ]);
        let srcs: Vec<usize> = traffic.messages().iter().map(|m| m.src.index()).collect();
        assert_eq!(srcs, vec![2, 1, 3]);
        assert_eq!(traffic.horizon(), 5);
        assert_eq!(traffic.len(), 3);
        assert_eq!(traffic.total_flits(), 12);
        assert!(ScheduledTraffic::default().is_empty());
    }
}
