//! Pipelined point-to-point links between adjacent routers.

use wnoc_core::Cycle;

use crate::arena::FlitId;

/// A unidirectional link with a fixed latency in cycles.
///
/// A flit pushed in cycle `t` becomes available for delivery at the
/// downstream input buffer on the `latency`-th advance, i.e. in cycle
/// `t + latency - 1` under the network's push-then-advance phase order.  The
/// link accepts at most one flit per cycle (its bandwidth is one flit/cycle,
/// matching the paper's 132-bit links carrying one flit per cycle).
///
/// The pipeline stores `(delivery cycle, flit id)` pairs in a ring sized to
/// the latency — the maximum number of concurrently in-flight flits — so a
/// link never allocates after construction and advancing costs O(1) instead
/// of decrementing a countdown on every in-flight flit.
#[derive(Debug, Clone)]
pub struct SimLink {
    latency: u32,
    /// In-flight flits with their absolute delivery cycle, oldest first.
    slots: Box<[(Cycle, Option<FlitId>)]>,
    head: usize,
    len: usize,
    /// Cycle of the most recent push (bandwidth: one flit per cycle).
    last_push: Option<Cycle>,
}

impl SimLink {
    /// Creates a link with the given latency (at least one cycle).
    pub fn new(latency: u32) -> Self {
        let latency = latency.max(1);
        Self {
            latency,
            slots: vec![(0, None); latency as usize].into_boxed_slice(),
            head: 0,
            len: 0,
            last_push: None,
        }
    }

    /// The configured latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Number of flits currently traversing the link.
    pub fn in_flight(&self) -> usize {
        self.len
    }

    /// The absolute delivery cycle of the oldest in-flight flit, if any —
    /// the link's event horizon.  Pushes happen at most once per cycle with
    /// a fixed latency, so the head of the ring always carries the earliest
    /// due cycle.
    pub fn next_due(&self) -> Option<Cycle> {
        (self.len > 0).then(|| self.slots[self.head].0)
    }

    /// Returns `true` if a flit can be pushed in cycle `now`.
    pub fn can_accept(&self, now: Cycle) -> bool {
        self.last_push != Some(now) && self.len < self.slots.len()
    }

    /// Pushes a flit onto the link in cycle `now`.
    ///
    /// Returns `Err(id)` if a flit was already pushed this cycle or the
    /// pipeline is full (the latter cannot happen when the link is advanced
    /// every cycle it is non-empty, as credit flow control guarantees).
    pub fn push(&mut self, now: Cycle, id: FlitId) -> Result<(), FlitId> {
        if !self.can_accept(now) {
            return Err(id);
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = (now + Cycle::from(self.latency) - 1, Some(id));
        self.len += 1;
        self.last_push = Some(now);
        Ok(())
    }

    /// Every flit currently traversing the link, oldest first (fault
    /// diagnostics: classifying a stalled network as partitioned vs
    /// deadlocked).
    pub fn in_flight_ids(&self) -> impl Iterator<Item = FlitId> + '_ {
        (0..self.len)
            .filter_map(move |offset| self.slots[(self.head + offset) % self.slots.len()].1)
    }

    /// Fault-epoch flush: empties the pipeline into `purged` and resets the
    /// per-cycle bandwidth gate (the new epoch starts from silence).
    pub fn purge_into(&mut self, purged: &mut Vec<FlitId>) {
        while self.len > 0 {
            let (_, id) = std::mem::take(&mut self.slots[self.head]);
            self.head = (self.head + 1) % self.slots.len();
            self.len -= 1;
            if let Some(id) = id {
                purged.push(id);
            }
        }
        self.last_push = None;
    }

    /// Advances the link to cycle `now` and returns the flit (if any) that
    /// has completed its traversal and must be delivered downstream.
    pub fn advance(&mut self, now: Cycle) -> Option<FlitId> {
        if self.len == 0 {
            return None;
        }
        let (due, _) = self.slots[self.head];
        if due > now {
            return None;
        }
        let (_, id) = std::mem::take(&mut self.slots[self.head]);
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::FlitArena;
    use wnoc_core::{Flit, FlitKind, FlowId, MessageId, NodeId, PacketId};

    fn ids(arena: &mut FlitArena, count: u32) -> Vec<FlitId> {
        (0..count)
            .map(|seq| {
                arena.alloc(Flit {
                    packet: PacketId(1),
                    message: MessageId(1),
                    flow: FlowId(0),
                    src: NodeId(0),
                    dst: NodeId(1),
                    kind: FlitKind::Body,
                    seq,
                    msg_created: 0,
                    injected: 0,
                })
            })
            .collect()
    }

    #[test]
    fn single_cycle_link_delivers_same_cycle() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 1);
        let mut link = SimLink::new(1);
        link.push(5, handles[0]).unwrap();
        assert_eq!(link.advance(5), Some(handles[0]));
        assert_eq!(link.advance(6), None);
    }

    #[test]
    fn multi_cycle_link_delays_delivery() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 1);
        let mut link = SimLink::new(3);
        link.push(10, handles[0]).unwrap();
        assert_eq!(link.advance(10), None);
        assert_eq!(link.advance(11), None);
        assert_eq!(link.advance(12), Some(handles[0]));
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn one_flit_per_cycle() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 2);
        let mut link = SimLink::new(1);
        assert!(link.can_accept(1));
        link.push(1, handles[0]).unwrap();
        assert!(!link.can_accept(1));
        assert_eq!(link.push(1, handles[1]), Err(handles[1]));
        link.advance(1);
        assert!(link.can_accept(2));
        link.push(2, handles[1]).unwrap();
    }

    #[test]
    fn pipeline_preserves_order_and_spacing() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 3);
        let mut link = SimLink::new(2);
        let mut delivered = Vec::new();
        for cycle in 0..6u64 {
            if cycle < 3 {
                link.push(cycle, handles[cycle as usize]).unwrap();
            }
            if let Some(id) = link.advance(cycle) {
                delivered.push((cycle, arena.get(id).seq));
            }
        }
        assert_eq!(delivered, vec![(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn zero_latency_is_clamped_to_one() {
        let link = SimLink::new(0);
        assert_eq!(link.latency(), 1);
    }

    #[test]
    fn pipeline_never_exceeds_latency_in_flight() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 10);
        let mut link = SimLink::new(3);
        for cycle in 0..10u64 {
            if link.can_accept(cycle) {
                link.push(cycle, handles[cycle as usize]).unwrap();
            }
            assert!(link.in_flight() <= 3);
            link.advance(cycle);
        }
    }
}
