//! Pipelined point-to-point links between adjacent routers.

use std::collections::VecDeque;

use wnoc_core::Flit;

/// A unidirectional link with a fixed latency in cycles.
///
/// A flit pushed in cycle `t` becomes available for delivery at the downstream
/// input buffer after `latency` cycles.  The link accepts at most one flit per
/// cycle (its bandwidth is one flit/cycle, matching the paper's 132-bit links
/// carrying one flit per cycle).
#[derive(Debug, Clone)]
pub struct SimLink {
    latency: u32,
    /// In-flight flits with their remaining cycles.
    in_flight: VecDeque<(u32, Flit)>,
    pushed_this_cycle: bool,
}

impl SimLink {
    /// Creates a link with the given latency (at least one cycle).
    pub fn new(latency: u32) -> Self {
        Self {
            latency: latency.max(1),
            in_flight: VecDeque::new(),
            pushed_this_cycle: false,
        }
    }

    /// The configured latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Number of flits currently traversing the link.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Returns `true` if a flit can be pushed this cycle.
    pub fn can_accept(&self) -> bool {
        !self.pushed_this_cycle
    }

    /// Pushes a flit onto the link.
    ///
    /// Returns `Err(flit)` if a flit was already pushed this cycle.
    pub fn push(&mut self, flit: Flit) -> Result<(), Flit> {
        if self.pushed_this_cycle {
            return Err(flit);
        }
        self.in_flight.push_back((self.latency, flit));
        self.pushed_this_cycle = true;
        Ok(())
    }

    /// Advances the link by one cycle and returns the flit (if any) that has
    /// completed its traversal and must be delivered downstream.
    pub fn advance(&mut self) -> Option<Flit> {
        self.pushed_this_cycle = false;
        for entry in &mut self.in_flight {
            entry.0 = entry.0.saturating_sub(1);
        }
        if self.in_flight.front().is_some_and(|(left, _)| *left == 0) {
            self.in_flight.pop_front().map(|(_, f)| f)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::{FlitKind, FlowId, MessageId, NodeId, PacketId};

    fn flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(1),
            message: MessageId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            kind: FlitKind::Body,
            seq,
            msg_created: 0,
            injected: 0,
        }
    }

    #[test]
    fn single_cycle_link_delivers_next_advance() {
        let mut link = SimLink::new(1);
        link.push(flit(0)).unwrap();
        assert_eq!(link.advance().unwrap().seq, 0);
        assert!(link.advance().is_none());
    }

    #[test]
    fn multi_cycle_link_delays_delivery() {
        let mut link = SimLink::new(3);
        link.push(flit(0)).unwrap();
        assert!(link.advance().is_none());
        assert!(link.advance().is_none());
        assert_eq!(link.advance().unwrap().seq, 0);
    }

    #[test]
    fn one_flit_per_cycle() {
        let mut link = SimLink::new(1);
        assert!(link.can_accept());
        link.push(flit(0)).unwrap();
        assert!(!link.can_accept());
        assert!(link.push(flit(1)).is_err());
        link.advance();
        assert!(link.can_accept());
        link.push(flit(1)).unwrap();
    }

    #[test]
    fn pipeline_preserves_order_and_spacing() {
        let mut link = SimLink::new(2);
        let mut delivered = Vec::new();
        for cycle in 0..6u32 {
            if cycle < 3 {
                link.push(flit(cycle)).unwrap();
            }
            if let Some(f) = link.advance() {
                delivered.push((cycle, f.seq));
            }
        }
        assert_eq!(delivered, vec![(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn zero_latency_is_clamped_to_one() {
        let link = SimLink::new(0);
        assert_eq!(link.latency(), 1);
    }
}
