//! The wormhole router model: input-buffered, XY-routed, credit flow control,
//! with a pluggable output-port arbitration policy (round robin or WaW).

use wnoc_core::arbitration::{make_arbiter, ArbitrationPolicy, PortArbiter};
use wnoc_core::routing::{RoutingAlgorithm, XyRouting};
use wnoc_core::weights::WeightTable;
use wnoc_core::{Coord, Flit, Mesh, PacketId, Port};

use crate::buffer::FlitBuffer;

/// A flit forwarding decision taken by a router in the current cycle.
#[derive(Debug, Clone, Copy)]
pub struct Forward {
    /// Input port the flit was taken from.
    pub input: Port,
    /// Output port the flit leaves through.
    pub output: Port,
    /// The flit itself.
    pub flit: Flit,
}

/// A wormhole path reservation: `input` holds `output` until the packet's tail
/// flit has been forwarded.
#[derive(Debug, Clone, Copy)]
struct Hold {
    input: Port,
    packet: PacketId,
}

/// One mesh router: five input buffers, per-output arbiters, wormhole switching
/// and credit-based flow control towards its downstream neighbours.
pub struct Router {
    coord: Coord,
    mesh: Mesh,
    inputs: Vec<Option<FlitBuffer>>,
    credits: Vec<u32>,
    holds: Vec<Option<Hold>>,
    arbiters: Vec<Box<dyn PortArbiter>>,
    routing: XyRouting,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("coord", &self.coord)
            .field("credits", &self.credits)
            .field(
                "buffered",
                &self
                    .inputs
                    .iter()
                    .map(|b| b.as_ref().map_or(0, FlitBuffer::len))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Router {
    /// Builds the router at `coord` of `mesh`.
    ///
    /// `buffer_flits` is the depth of each input buffer, `downstream_credits`
    /// the initial credit count of each mesh output port (the depth of the
    /// neighbour's input buffer).  `weights` supplies the WaW quotas; it is
    /// ignored under round-robin arbitration.
    pub fn new(
        coord: Coord,
        mesh: &Mesh,
        policy: ArbitrationPolicy,
        weights: &WeightTable,
        buffer_flits: u32,
        downstream_credits: u32,
    ) -> Self {
        let mut inputs = Vec::with_capacity(Port::COUNT);
        let mut credits = Vec::with_capacity(Port::COUNT);
        let mut holds = Vec::with_capacity(Port::COUNT);
        let mut arbiters: Vec<Box<dyn PortArbiter>> = Vec::with_capacity(Port::COUNT);
        for port in Port::ALL {
            let exists = match port {
                Port::Local => true,
                Port::Mesh(d) => mesh.has_port(coord, d),
            };
            inputs.push(exists.then(|| FlitBuffer::new(buffer_flits as usize)));
            credits.push(if exists { downstream_credits } else { 0 });
            holds.push(None);
            let quotas = weights.reduced_quotas(coord, port);
            arbiters.push(make_arbiter(policy, &quotas));
        }
        Self {
            coord,
            mesh: mesh.clone(),
            inputs,
            credits,
            holds,
            arbiters,
            routing: XyRouting::new(),
        }
    }

    /// The router's coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Free slots in the input buffer of `port` (zero if the port does not
    /// exist).
    pub fn free_slots(&self, port: Port) -> usize {
        self.inputs[port.index()]
            .as_ref()
            .map_or(0, FlitBuffer::free_slots)
    }

    /// Number of buffered flits across all input ports.
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().flatten().map(FlitBuffer::len).sum()
    }

    /// Returns `true` if no flits are buffered and no wormhole path is held.
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0 && self.holds.iter().all(Option::is_none)
    }

    /// Current credit count of output `port`.
    pub fn credits(&self, port: Port) -> u32 {
        self.credits[port.index()]
    }

    /// Returns one credit to output `port` (the downstream router freed a
    /// buffer slot).
    pub fn credit_return(&mut self, port: Port) {
        self.credits[port.index()] += 1;
    }

    /// Accepts a flit into the input buffer of `port`.
    ///
    /// # Errors
    ///
    /// Returns `Err(flit)` if the buffer is full — this indicates a credit
    /// flow-control violation and is treated as a fatal simulation error by the
    /// network.
    pub fn accept(&mut self, port: Port, flit: Flit) -> Result<(), Flit> {
        match &mut self.inputs[port.index()] {
            Some(buffer) => buffer.push(flit),
            None => Err(flit),
        }
    }

    /// The output port a flit buffered at this router must take.
    fn output_for(&self, flit: &Flit) -> Port {
        let dst = self
            .mesh
            .coord_of(flit.dst)
            .expect("flit destination inside mesh");
        self.routing
            .output_port(&self.mesh, self.coord, dst)
            .expect("coordinates validated at construction")
    }

    /// Runs one cycle of switch allocation and traversal, removing the
    /// forwarded flits from their input buffers and consuming credits.
    ///
    /// Returns at most one [`Forward`] per output port; the caller (the
    /// network) is responsible for pushing each forwarded flit onto the
    /// corresponding link or ejection sink and for returning a credit to the
    /// upstream router of the drained input port.
    pub fn decide(&mut self) -> Vec<Forward> {
        let mut forwards = Vec::new();
        // Inputs already consumed this cycle (an input can feed one output).
        let mut consumed = [false; Port::COUNT];

        for output in Port::ALL {
            let oi = output.index();
            if let Some(hold) = self.holds[oi] {
                // Wormhole continuation: only the holding packet may use the
                // output, no arbitration needed.
                if consumed[hold.input.index()] {
                    continue;
                }
                let has_credit = output == Port::Local || self.credits[oi] > 0;
                if !has_credit {
                    continue;
                }
                let Some(buffer) = self.inputs[hold.input.index()].as_mut() else {
                    continue;
                };
                let matches = buffer.front().is_some_and(|f| f.packet == hold.packet);
                if !matches {
                    continue;
                }
                let flit = buffer.pop().expect("front checked above");
                consumed[hold.input.index()] = true;
                if output != Port::Local {
                    self.credits[oi] -= 1;
                }
                if flit.kind.is_tail() {
                    self.holds[oi] = None;
                }
                forwards.push(Forward {
                    input: hold.input,
                    output,
                    flit,
                });
                continue;
            }

            // Free output: arbitrate among input ports whose head-of-line flit
            // is a header routed to this output.
            let mut requests = Vec::new();
            for input in Port::ALL {
                if consumed[input.index()] {
                    continue;
                }
                let Some(buffer) = self.inputs[input.index()].as_ref() else {
                    continue;
                };
                let Some(front) = buffer.front() else {
                    continue;
                };
                if !front.kind.is_head() {
                    // An orphaned body flit would indicate a protocol bug; the
                    // wormhole hold guarantees this cannot happen.
                    continue;
                }
                if self.output_for(front) == output {
                    requests.push(input);
                }
            }
            let has_credit = output == Port::Local || self.credits[oi] > 0;
            if requests.is_empty() || !has_credit {
                // Let the WaW arbiter replenish its counters on idle cycles.
                if requests.is_empty() {
                    let _ = self.arbiters[oi].grant(&[]);
                }
                continue;
            }
            let Some(winner) = self.arbiters[oi].grant(&requests) else {
                continue;
            };
            let buffer = self.inputs[winner.index()]
                .as_mut()
                .expect("winner has a buffer");
            let flit = buffer.pop().expect("winner had a head flit");
            consumed[winner.index()] = true;
            if output != Port::Local {
                self.credits[oi] -= 1;
            }
            if !flit.kind.is_tail() {
                self.holds[oi] = Some(Hold {
                    input: winner,
                    packet: flit.packet,
                });
            }
            forwards.push(Forward {
                input: winner,
                output,
                flit,
            });
        }
        forwards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::flow::FlowSet;
    use wnoc_core::{FlitKind, FlowId, MessageId, NodeId};

    fn weights(mesh: &Mesh) -> WeightTable {
        WeightTable::from_flow_set(&FlowSet::all_to_all(mesh).unwrap())
    }

    fn router(mesh: &Mesh, coord: Coord, policy: ArbitrationPolicy) -> Router {
        let w = weights(mesh);
        Router::new(coord, mesh, policy, &w, 4, 4)
    }

    fn flit(dst: NodeId, kind: FlitKind, packet: u64, seq: u32) -> Flit {
        Flit {
            packet: PacketId(packet),
            message: MessageId(packet),
            flow: FlowId(0),
            src: NodeId(0),
            dst,
            kind,
            seq,
            msg_created: 0,
            injected: 0,
        }
    }

    #[test]
    fn single_flit_packet_crosses_in_one_decision() {
        let mesh = Mesh::square(4).unwrap();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        // Destination is the node to the west: (0, 1).
        let dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        r.accept(Port::Local, flit(dst, FlitKind::HeadTail, 1, 0))
            .unwrap();
        let forwards = r.decide();
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].output, Port::Mesh(wnoc_core::Direction::West));
        assert_eq!(forwards[0].input, Port::Local);
        // Credit consumed on the west output.
        assert_eq!(r.credits(Port::Mesh(wnoc_core::Direction::West)), 3);
        assert!(r.is_idle());
    }

    #[test]
    fn ejection_at_destination_consumes_no_credit() {
        let mesh = Mesh::square(4).unwrap();
        let coord = Coord::new(2, 2);
        let mut r = router(&mesh, coord, ArbitrationPolicy::RoundRobin);
        let dst = mesh.node_id(coord).unwrap();
        r.accept(
            Port::Mesh(wnoc_core::Direction::East),
            flit(dst, FlitKind::HeadTail, 9, 0),
        )
        .unwrap();
        let forwards = r.decide();
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].output, Port::Local);
        assert_eq!(r.credits(Port::Local), 4);
    }

    #[test]
    fn wormhole_hold_keeps_output_for_the_whole_packet() {
        let mesh = Mesh::square(4).unwrap();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        // A three-flit packet from the local port, and a competing single-flit
        // packet from the east input, both heading west.
        r.accept(Port::Local, flit(west_dst, FlitKind::Head, 1, 0))
            .unwrap();
        r.accept(Port::Local, flit(west_dst, FlitKind::Body, 1, 1))
            .unwrap();
        r.accept(Port::Local, flit(west_dst, FlitKind::Tail, 1, 2))
            .unwrap();
        r.accept(
            Port::Mesh(wnoc_core::Direction::East),
            flit(west_dst, FlitKind::HeadTail, 2, 0),
        )
        .unwrap();

        let mut order = Vec::new();
        for _ in 0..4 {
            for f in r.decide() {
                if f.output == Port::Mesh(wnoc_core::Direction::West) {
                    order.push(f.flit.packet.0);
                }
            }
        }
        // Whichever packet wins arbitration, its flits are never interleaved
        // with the other packet's.
        assert_eq!(order.len(), 4);
        let first = order[0];
        let first_count = if first == 1 { 3 } else { 1 };
        assert!(order[..first_count].iter().all(|&p| p == first));
        assert!(order[first_count..].iter().all(|&p| p != first));
    }

    #[test]
    fn blocked_output_stops_forwarding_when_credits_exhausted() {
        let mesh = Mesh::square(4).unwrap();
        let w = weights(&mesh);
        // Downstream buffer of only 1 credit.
        let mut r = Router::new(
            Coord::new(1, 1),
            &mesh,
            ArbitrationPolicy::RoundRobin,
            &w,
            4,
            1,
        );
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        r.accept(Port::Local, flit(west_dst, FlitKind::Head, 1, 0))
            .unwrap();
        r.accept(Port::Local, flit(west_dst, FlitKind::Tail, 1, 1))
            .unwrap();
        assert_eq!(r.decide().len(), 1);
        // Credit exhausted: the tail cannot move until a credit returns.
        assert_eq!(r.decide().len(), 0);
        r.credit_return(Port::Mesh(wnoc_core::Direction::West));
        assert_eq!(r.decide().len(), 1);
        assert!(r.is_idle());
    }

    #[test]
    fn nonexistent_port_rejects_flits() {
        let mesh = Mesh::square(4).unwrap();
        let mut r = router(&mesh, Coord::new(0, 0), ArbitrationPolicy::RoundRobin);
        let dst = mesh.node_id(Coord::new(3, 3)).unwrap();
        // The corner router has no west or north port.
        assert!(r
            .accept(
                Port::Mesh(wnoc_core::Direction::West),
                flit(dst, FlitKind::HeadTail, 1, 0)
            )
            .is_err());
        assert_eq!(r.free_slots(Port::Mesh(wnoc_core::Direction::North)), 0);
        assert!(r.free_slots(Port::Local) > 0);
    }

    #[test]
    fn two_inputs_different_outputs_forward_in_the_same_cycle() {
        let mesh = Mesh::square(4).unwrap();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        let south_dst = mesh.node_id(Coord::new(1, 3)).unwrap();
        r.accept(Port::Local, flit(west_dst, FlitKind::HeadTail, 1, 0))
            .unwrap();
        r.accept(
            Port::Mesh(wnoc_core::Direction::North),
            flit(south_dst, FlitKind::HeadTail, 2, 0),
        )
        .unwrap();
        let forwards = r.decide();
        assert_eq!(forwards.len(), 2);
    }

    #[test]
    fn waw_router_grants_by_quota() {
        // At R(0,0) of a 2x2 mesh with all-to-all weights, the ejection port is
        // shared by the east input (1 source behind it) and the south input
        // (2 sources).  Under saturation the south input must receive roughly
        // two thirds of the grants.
        let mesh = Mesh::square(2).unwrap();
        let coord = Coord::new(0, 0);
        let mut r = router(&mesh, coord, ArbitrationPolicy::Waw);
        let dst = mesh.node_id(coord).unwrap();
        let east = Port::Mesh(wnoc_core::Direction::East);
        let south = Port::Mesh(wnoc_core::Direction::South);
        let mut east_grants = 0u32;
        let mut south_grants = 0u32;
        let mut packet = 0u64;
        for _ in 0..300 {
            // Keep both inputs saturated with single-flit packets.
            while r.free_slots(east) > 0 {
                packet += 1;
                r.accept(east, flit(dst, FlitKind::HeadTail, packet, 0))
                    .unwrap();
            }
            while r.free_slots(south) > 0 {
                packet += 1;
                r.accept(south, flit(dst, FlitKind::HeadTail, packet, 0))
                    .unwrap();
            }
            for f in r.decide() {
                if f.output == Port::Local {
                    match f.input {
                        p if p == east => east_grants += 1,
                        p if p == south => south_grants += 1,
                        _ => {}
                    }
                }
            }
        }
        let total = east_grants + south_grants;
        assert_eq!(total, 300);
        let south_share = f64::from(south_grants) / f64::from(total);
        assert!(
            (south_share - 2.0 / 3.0).abs() < 0.05,
            "south share {south_share}"
        );
    }
}
