//! The wormhole router model: input-buffered, XY-routed, credit flow control,
//! with a pluggable output-port arbitration policy (round robin or WaW).
//!
//! The router is built for the allocation-free active-set kernel:
//!
//! * input buffers hold [`FlitId`] handles into the network's
//!   [`FlitArena`](crate::arena::FlitArena), never flit values;
//! * [`Router::decide`] appends into a caller-provided scratch vector instead
//!   of returning a fresh `Vec` every cycle;
//! * routing decisions come from a per-router lookup table precomputed from
//!   XY routing at construction (no mesh clone per router, no arithmetic on
//!   the hot path);
//! * a router that cannot forward anything — empty **or** blocked on credits
//!   or upstream arrivals — can be *skipped* entirely by the event-horizon
//!   scheduler: the router tracks the cycle it last decided and replays the
//!   skipped cycles into its arbiters in O(1)
//!   ([`PortArbiter::idle_for`](wnoc_core::arbitration::PortArbiter::idle_for))
//!   before the next observation, so skipping is behaviour-identical to
//!   visiting every router every cycle.  The replay is *request-aware*: a
//!   skipped cycle issues an idle grant only on outputs that had neither a
//!   wormhole hold nor a pending head-of-line request, exactly as a dense
//!   per-cycle `decide` would have.  Because a skipped router by definition
//!   forwards nothing, its buffer fronts are frozen for the whole skipped
//!   interval — the replay recomputes the request sets from the current
//!   fronts and is exact.  The interval is closed out *before* any state
//!   mutation that could change a request set ([`Router::accept`] replays up
//!   to and including the arrival cycle before enqueueing the new flit);
//!   credit returns commute with the replay (request sets do not depend on
//!   credits), so they need no replay of their own.

use wnoc_core::arbitration::{make_arbiter, ArbitrationPolicy, PortArbiter};
use wnoc_core::routing::{RoutingAlgorithm, XyRouting};
use wnoc_core::vc::MAX_VCS;
use wnoc_core::weights::WeightTable;
use wnoc_core::{Coord, Cycle, Mesh, PacketId, Port};

use crate::arena::{FlitArena, FlitId};
use crate::buffer::FlitBuffer;

/// A flit forwarding decision taken by a router in the current cycle.
#[derive(Debug, Clone, Copy)]
pub struct Forward {
    /// Input port the flit was taken from.
    pub input: Port,
    /// Output port the flit leaves through.
    pub output: Port,
    /// Virtual channel the flit travels on (0 for the single-VC design).  A
    /// flow keeps its VC at every hop, so this is both the ring the flit was
    /// popped from here and the ring it lands in downstream.
    pub vc: usize,
    /// Handle of the forwarded flit.
    pub flit: FlitId,
}

/// A wormhole path reservation: `input` holds the owning `(output, vc)` slot
/// until the packet's tail flit has been forwarded.  The VC is implied by the
/// slot the hold is stored in.
#[derive(Debug, Clone, Copy)]
struct Hold {
    input: Port,
    packet: PacketId,
}

/// One mesh router: per-VC input rings on five ports, per-output arbiters,
/// wormhole switching and credit-based flow control towards its downstream
/// neighbours.
///
/// With more than one virtual channel, every input port carries `vc_count`
/// independent flit rings (each at the full configured depth), credits and
/// wormhole holds are tracked per `(output, VC)`, and each output serves its
/// VCs in **strict priority order** (VC 0 highest): the first VC that can
/// make progress — a creditable wormhole continuation or a grantable header —
/// sends the output's one flit of the cycle, and a VC blocked on credits
/// never blocks a lower-priority VC (that is the preemption the
/// priority-preemptive WCTT analysis models).  The classic round-robin/WaW
/// arbiter still breaks ties, among the *input ports* requesting within the
/// selected VC.  With `vc_count == 1` all of this reduces bit-for-bit to the
/// historical single-queue router.
pub struct Router {
    coord: Coord,
    /// Virtual channels per input port (1..=[`MAX_VCS`]).
    vc_count: usize,
    /// Input rings indexed `port.index() * vc_count + vc`; `None` for every
    /// VC of a port that does not exist at this coordinate.
    inputs: Vec<Option<FlitBuffer>>,
    /// Credit counters indexed `output.index() * vc_count + vc`.
    credits: Vec<u32>,
    /// Wormhole holds indexed `output.index() * vc_count + vc`.
    holds: Vec<Option<Hold>>,
    /// Arbiters indexed `output.index() * vc_count + vc`: round-robin/WaW
    /// state is **per `(output, VC)`**, never shared across VCs.  A shared
    /// per-output pointer would let a saturated higher-priority VC steer the
    /// round-robin position every cycle and systematically starve one input
    /// of a lower VC — unbounded same-VC starvation no within-VC round-robin
    /// analysis could cover.
    arbiters: Vec<Box<dyn PortArbiter>>,
    /// Output port per destination node id, precomputed from XY routing.
    route: Box<[Port]>,
    /// Buffered flits across all inputs, maintained incrementally so the
    /// active-set scheduler's busy check is O(1).
    buffered: usize,
    /// Cycle up to which this router's per-cycle behaviour is accounted for
    /// (0 before the first decision): the event-horizon scheduler skips
    /// cycles in which the router provably forwards nothing, and the skipped
    /// interval is replayed into the arbiters in O(1) on the next
    /// observation ([`Router::replay_idle`]).
    last_decide: Cycle,
    /// Idle grants owed to each `(output, VC)` arbiter and not yet applied
    /// (same slot indexing as `arbiters`).  Idle replenishment is only
    /// *observable* at the next grant on the same slot, so instead of a
    /// virtual `grant(&[])` per idle slot per cycle, the router accrues a
    /// per-slot debt and flushes it — in order, via the O(1) `idle_for`
    /// closed form — immediately before that grant
    /// ([`Router::flush_idle_debt`]).  No reordering ever happens:
    /// consecutive idle cycles are the only thing coalesced.
    idle_debt: [u64; Port::COUNT * MAX_VCS],
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("coord", &self.coord)
            .field("credits", &self.credits)
            .field(
                "buffered",
                &self
                    .inputs
                    .iter()
                    .map(|b| b.as_ref().map_or(0, FlitBuffer::len))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Router {
    /// Builds the router at `coord` of `mesh`.
    ///
    /// `input_depths[port]` is the depth of that input buffer;
    /// `output_credits[port]` the initial credit count of that output port,
    /// which **must** equal the depth of the downstream input buffer it feeds
    /// (the network derives both from one [`wnoc_core::BufferConfig`] and
    /// asserts the invariant at construction).  Entries for ports that do not
    /// exist at `coord` (mesh edges) are ignored.  `weights` supplies the WaW
    /// quotas; it is ignored under round-robin arbitration.  `vcs` is the
    /// number of virtual channels per input port: every VC of a port gets its
    /// own ring at the full configured depth and its own credit counter
    /// (credits are per downstream *ring*, so the invariant holds per VC).
    ///
    /// # Panics
    ///
    /// Panics if an existing port is given a zero buffer depth, or if `vcs`
    /// is zero or exceeds [`MAX_VCS`].
    pub fn new(
        coord: Coord,
        mesh: &Mesh,
        policy: ArbitrationPolicy,
        weights: &WeightTable,
        input_depths: &[u32; Port::COUNT],
        output_credits: &[u32; Port::COUNT],
        vcs: u32,
    ) -> Self {
        assert!(
            (1..=MAX_VCS as u32).contains(&vcs),
            "router {coord} VC count must be 1..={MAX_VCS}, got {vcs}"
        );
        let vc_count = vcs as usize;
        let mut inputs = Vec::with_capacity(Port::COUNT * vc_count);
        let mut credits = Vec::with_capacity(Port::COUNT * vc_count);
        let mut holds = Vec::with_capacity(Port::COUNT * vc_count);
        let mut arbiters: Vec<Box<dyn PortArbiter>> = Vec::with_capacity(Port::COUNT * vc_count);
        for port in Port::ALL {
            let exists = match port {
                Port::Local => true,
                Port::Mesh(d) => mesh.has_port(coord, d),
            };
            assert!(
                !exists || input_depths[port.index()] > 0,
                "input buffer {port} of router {coord} must hold at least one flit"
            );
            for _vc in 0..vc_count {
                inputs.push(exists.then(|| FlitBuffer::new(input_depths[port.index()] as usize)));
                credits.push(if exists {
                    output_credits[port.index()]
                } else {
                    0
                });
                holds.push(None);
            }
            // One arbiter (with the full quota set under WaW) per VC of the
            // output: round-robin position and quota counters must not leak
            // across priority classes.
            let quotas = weights.reduced_quotas(coord, port);
            for _vc in 0..vc_count {
                arbiters.push(make_arbiter(policy, &quotas));
            }
        }
        let routing = XyRouting::new();
        let route = mesh
            .nodes()
            .map(|node| {
                let dst = mesh.coord_of(node).expect("node inside mesh");
                routing
                    .output_port(mesh, coord, dst)
                    .expect("coordinates validated at construction")
            })
            .collect();
        Self {
            coord,
            vc_count,
            inputs,
            credits,
            holds,
            arbiters,
            route,
            buffered: 0,
            last_decide: 0,
            idle_debt: [0; Port::COUNT * MAX_VCS],
        }
    }

    /// Convenience constructor with every input buffer `depth` flits deep and
    /// every output assuming an equally deep downstream buffer — the uniform
    /// single-VC design point (and the shape of the historical two-scalar
    /// constructor).
    pub fn with_uniform_buffers(
        coord: Coord,
        mesh: &Mesh,
        policy: ArbitrationPolicy,
        weights: &WeightTable,
        depth: u32,
    ) -> Self {
        Self::new(
            coord,
            mesh,
            policy,
            weights,
            &[depth; Port::COUNT],
            &[depth; Port::COUNT],
            1,
        )
    }

    /// The router's coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Virtual channels per input port.
    pub fn vc_count(&self) -> usize {
        self.vc_count
    }

    /// Ring index of `(port, vc)` in the per-VC state vectors.
    #[inline]
    fn slot(&self, port: Port, vc: usize) -> usize {
        port.index() * self.vc_count + vc
    }

    /// Total capacity of the VC `vc` input ring of `port`, in flits (zero if
    /// the port does not exist) — the quantity an upstream credit counter
    /// must match.
    pub fn input_capacity(&self, port: Port, vc: usize) -> usize {
        self.inputs[self.slot(port, vc)]
            .as_ref()
            .map_or(0, FlitBuffer::capacity)
    }

    /// Free slots in the VC `vc` input ring of `port` (zero if the port does
    /// not exist).
    pub fn free_slots(&self, port: Port, vc: usize) -> usize {
        self.inputs[self.slot(port, vc)]
            .as_ref()
            .map_or(0, FlitBuffer::free_slots)
    }

    /// Number of buffered flits across all input ports (O(1)).
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.inputs.iter().flatten().map(FlitBuffer::len).sum(),
            "incremental buffered-flit count drifted"
        );
        self.buffered
    }

    /// Returns `true` if no flits are buffered and no wormhole path is held.
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0 && self.holds.iter().all(Option::is_none)
    }

    /// Current credit count of output `port` towards the downstream VC `vc`
    /// ring.
    pub fn credits(&self, port: Port, vc: usize) -> u32 {
        self.credits[self.slot(port, vc)]
    }

    /// Returns one credit to output `port`'s VC `vc` counter (the downstream
    /// router freed a slot in that ring).
    pub fn credit_return(&mut self, port: Port, vc: usize) {
        let slot = self.slot(port, vc);
        self.credits[slot] += 1;
    }

    /// Every flit buffered in this router's input rings (fault diagnostics:
    /// classifying a stalled network as partitioned vs deadlocked).
    pub(crate) fn buffered_flit_ids(&self) -> impl Iterator<Item = FlitId> + '_ {
        self.inputs
            .iter()
            .flatten()
            .flat_map(|buffer| buffer.iter())
    }

    /// Fault-epoch flush: drains every input ring into `purged`, clears all
    /// wormhole holds, and resets every credit counter to its construction
    /// value (`output_credits[port]` for existing ports — with every
    /// downstream ring empty again, full credit is exact).  Arbiter state and
    /// the lazily-replayed idle accounting are deliberately *not* reset: the
    /// epoch boundary must be bit-identical between the dense and
    /// event-horizon kernels, and both carry their (already reconciled)
    /// arbiter state across it.
    pub(crate) fn purge_for_epoch(
        &mut self,
        output_credits: &[u32; Port::COUNT],
        purged: &mut Vec<FlitId>,
    ) {
        for slot in 0..self.inputs.len() {
            if let Some(buffer) = &mut self.inputs[slot] {
                while let Some(id) = buffer.pop() {
                    self.buffered -= 1;
                    purged.push(id);
                }
            }
        }
        debug_assert_eq!(self.buffered, 0, "purge drained every ring");
        for port in Port::ALL {
            let exists = self.inputs[self.slot(port, 0)].is_some();
            for vc in 0..self.vc_count {
                let slot = self.slot(port, vc);
                self.holds[slot] = None;
                self.credits[slot] = if exists {
                    output_credits[port.index()]
                } else {
                    0
                };
            }
        }
    }

    /// Replaces the per-destination routing LUT (fault-tolerant rerouting:
    /// the surviving routers switch from XY to up*/down* tree routing when a
    /// fault epoch activates).
    ///
    /// # Panics
    ///
    /// Panics if `lut` does not cover every node of the construction mesh.
    pub(crate) fn set_route_lut(&mut self, lut: Vec<Port>) {
        assert_eq!(
            lut.len(),
            self.route.len(),
            "routing LUT of {} must cover every node",
            self.coord
        );
        self.route = lut.into_boxed_slice();
    }

    /// Rebuilds every port arbiter from `weights`, exactly as construction
    /// does (fault-tolerant rerouting: WaW quotas are a static function of
    /// the flow-to-route mapping, so an epoch that reroutes the survivors
    /// must reprogram the arbiters too).  The caller is mid-epoch-flush —
    /// every buffer is already empty — so discarding round/quota state is
    /// the point, not a hazard.
    pub(crate) fn reset_arbiters(&mut self, policy: ArbitrationPolicy, weights: &WeightTable) {
        let mut arbiters: Vec<Box<dyn PortArbiter>> =
            Vec::with_capacity(Port::COUNT * self.vc_count);
        for port in Port::ALL {
            let quotas = weights.reduced_quotas(self.coord, port);
            for _vc in 0..self.vc_count {
                arbiters.push(make_arbiter(policy, &quotas));
            }
        }
        self.arbiters = arbiters;
    }

    /// Returns `true` if any input ring's head-of-line flit **on VC `vc`** is
    /// a header routed to `output` — the request set a dense per-cycle
    /// `decide` would build for that `(output, VC)` (nothing is consumed on a
    /// no-forward cycle, so this is exact for every skipped cycle).
    fn any_request_for_vc(&self, arena: &FlitArena, output: Port, vc: usize) -> bool {
        for input in Port::ALL {
            let Some(buffer) = &self.inputs[self.slot(input, vc)] else {
                continue;
            };
            let Some(front) = buffer.front() else {
                continue;
            };
            let front = arena.get(front);
            if front.kind.is_head() && self.route[front.dst.index()] == output {
                return true;
            }
        }
        false
    }

    /// Returns `true` if any VC of `output` has a wormhole hold.
    #[inline]
    fn any_hold_on(&self, output: Port) -> bool {
        let base = output.index() * self.vc_count;
        self.holds[base..base + self.vc_count]
            .iter()
            .any(Option::is_some)
    }

    /// Replays the skipped cycles `last_decide + 1 ..= next - 1` into the
    /// arbiters, in O(1) per `(output, VC)` via the
    /// [`idle_for`](wnoc_core::arbitration::PortArbiter::idle_for) closed
    /// form.
    ///
    /// The event-horizon scheduler only skips a router while it provably
    /// forwards nothing, so each skipped cycle behaves exactly like a dense
    /// `decide` on the frozen state: slots with a wormhole hold never consult
    /// their arbiter, slots with a pending request but no credit leave it
    /// untouched, and only hold-free request-free slots issue an idle grant.
    /// Buffer fronts are frozen across the interval (no forwards), so
    /// recomputing the request sets from the current fronts reproduces every
    /// skipped cycle bit for bit.
    pub fn replay_idle(&mut self, arena: &FlitArena, next: Cycle) {
        let through = next.saturating_sub(1);
        if through <= self.last_decide {
            return;
        }
        let skipped = through - self.last_decide;
        for output in Port::ALL {
            for vc in 0..self.vc_count {
                let slot = self.slot(output, vc);
                if self.holds[slot].is_none() && !self.any_request_for_vc(arena, output, vc) {
                    self.idle_debt[slot] += skipped;
                }
            }
        }
        self.last_decide = through;
    }

    /// Applies the accrued idle grants of `(output, VC)` slot `slot` — always
    /// called right before a real grant on it, so the arbiter observes the
    /// exact dense sequence of idle and granted cycles.
    #[inline]
    fn flush_idle_debt(&mut self, slot: usize) {
        let debt = std::mem::take(&mut self.idle_debt[slot]);
        if debt > 0 {
            self.arbiters[slot].idle_for(debt);
        }
    }

    /// Accepts a flit into the VC `vc` input ring of `port` in cycle `now`.
    ///
    /// The arrival becomes visible to arbitration in cycle `now + 1` (the
    /// network delivers flits after the decision phase), so any cycles the
    /// scheduler skipped — including `now` itself — are first replayed into
    /// the arbiters against the pre-arrival buffer state.
    ///
    /// # Errors
    ///
    /// Returns `Err(id)` if the ring is full — this indicates a credit
    /// flow-control violation and is treated as a fatal simulation error by the
    /// network.
    pub fn accept(
        &mut self,
        arena: &FlitArena,
        now: Cycle,
        port: Port,
        vc: usize,
        id: FlitId,
    ) -> Result<(), FlitId> {
        let slot = self.slot(port, vc);
        if self.inputs[slot].is_none() {
            return Err(id);
        }
        self.replay_idle(arena, now + 1);
        match &mut self.inputs[slot] {
            Some(buffer) => {
                buffer.push(id)?;
                self.buffered += 1;
                Ok(())
            }
            None => Err(id),
        }
    }

    /// Runs one cycle of switch allocation and traversal for cycle `now`,
    /// removing the forwarded flits from their input buffers and consuming
    /// credits.  Cycles skipped since the previous call (the scheduler only
    /// visits routers that can forward) are first replayed into the arbiters
    /// via [`Router::replay_idle`].
    ///
    /// Appends at most one [`Forward`] per output port to `forwards` (the
    /// caller's reusable scratch buffer, which is *not* cleared here); the
    /// caller (the network) is responsible for pushing each forwarded flit
    /// onto the corresponding link or ejection sink and for returning a
    /// credit to the upstream router of the drained input port.
    pub fn decide(&mut self, arena: &FlitArena, now: Cycle, forwards: &mut Vec<Forward>) {
        self.replay_idle(arena, now);
        self.last_decide = now;

        // Inputs already consumed this cycle (an input port can feed one
        // output, whichever VC the flit came from), as a bitmask over
        // input-port indices.
        let mut consumed_mask = 0u8;

        // One pass over the head-of-line flits of every `(input, VC)` ring:
        // everything the per-output loop needs (tail kind, packet id) is
        // cached here, and the request set of every `(output, VC)` is
        // prebuilt as a bitmask of requesting inputs — turning the repeated
        // output × input × VC scan with its arena dereferences into one
        // pass.  A cache entry goes stale the moment its input is consumed,
        // and `consumed_mask` masks exactly those entries.
        #[derive(Clone, Copy)]
        struct FrontCache {
            id: FlitId,
            tail: bool,
            packet: PacketId,
        }
        let mut fronts: [[Option<FrontCache>; MAX_VCS]; Port::COUNT] =
            [[None; MAX_VCS]; Port::COUNT];
        let mut request_masks = [[0u8; MAX_VCS]; Port::COUNT];
        if self.buffered > 0 {
            for input in Port::ALL {
                for vc in 0..self.vc_count {
                    let Some(buffer) = &self.inputs[self.slot(input, vc)] else {
                        continue;
                    };
                    let Some(id) = buffer.front() else {
                        continue;
                    };
                    let flit = arena.get(id);
                    if flit.kind.is_head() {
                        // A header at the front requests its routed output; a
                        // body flit never does (the wormhole hold guarantees
                        // an orphaned body cannot happen).
                        request_masks[self.route[flit.dst.index()].index()][vc] |=
                            1 << input.index();
                    }
                    fronts[input.index()][vc] = Some(FrontCache {
                        id,
                        tail: flit.kind.is_tail(),
                        packet: flit.packet,
                    });
                }
            }
        }

        for output in Port::ALL {
            let oi = output.index();
            // VCs are served in strict priority order (VC 0 highest): the
            // first VC able to progress sends the output's one flit of this
            // cycle; a higher-priority VC blocked on credits does not block
            // lower ones.  Arbiter state (round-robin position, WaW quotas)
            // and idle debt are per `(output, VC)` slot: a slot with neither
            // a hold nor a live request shows its own arbiter an idle cycle
            // (matching what `replay_idle` reconstructs for skipped cycles),
            // a slot with a request but no grant leaves it untouched.
            let mut forwarded = false;
            for vc in 0..self.vc_count {
                let slot = oi * self.vc_count + vc;
                if let Some(hold) = self.holds[slot] {
                    if forwarded {
                        continue;
                    }
                    // Wormhole continuation: only the holding packet may use
                    // this `(output, VC)`, no arbitration needed.
                    let ii = hold.input.index();
                    if consumed_mask & (1 << ii) != 0 {
                        continue;
                    }
                    let has_credit = output == Port::Local || self.credits[slot] > 0;
                    if !has_credit {
                        continue;
                    }
                    let Some(front) = fronts[ii][vc] else {
                        continue;
                    };
                    if front.packet != hold.packet {
                        continue;
                    }
                    let id = self.inputs[ii * self.vc_count + vc]
                        .as_mut()
                        .and_then(FlitBuffer::pop)
                        .expect("cached front exists");
                    debug_assert_eq!(id, front.id);
                    self.buffered -= 1;
                    consumed_mask |= 1 << ii;
                    if output != Port::Local {
                        self.credits[slot] -= 1;
                    }
                    if front.tail {
                        self.holds[slot] = None;
                    }
                    forwards.push(Forward {
                        input: hold.input,
                        output,
                        vc,
                        flit: id,
                    });
                    forwarded = true;
                    continue;
                }

                // Free `(output, VC)`: arbitrate among input ports whose
                // head-of-line flit on this VC is a header routed to this
                // output.  Fixed-size request set: this loop runs for every
                // busy router every cycle and must not allocate.
                let mask = request_masks[oi][vc] & !consumed_mask;
                if mask == 0 {
                    self.idle_debt[slot] += 1;
                    continue;
                }
                if forwarded {
                    continue;
                }
                let has_credit = output == Port::Local || self.credits[slot] > 0;
                if !has_credit {
                    continue;
                }
                // Expand the mask in ascending input-index order — the order
                // the dense request scan produced.
                let mut requests = [Port::Local; Port::COUNT];
                let mut request_count = 0;
                let mut bits = mask;
                while bits != 0 {
                    requests[request_count] = Port::from_index(bits.trailing_zeros() as usize);
                    request_count += 1;
                    bits &= bits - 1;
                }
                let requests = &requests[..request_count];
                self.flush_idle_debt(slot);
                let Some(winner) = self.arbiters[slot].grant(requests) else {
                    continue;
                };
                let wi = winner.index();
                let front = fronts[wi][vc].expect("winner had a cached front");
                let id = self.inputs[wi * self.vc_count + vc]
                    .as_mut()
                    .and_then(FlitBuffer::pop)
                    .expect("winner had a head flit");
                debug_assert_eq!(id, front.id);
                self.buffered -= 1;
                consumed_mask |= 1 << wi;
                if output != Port::Local {
                    self.credits[slot] -= 1;
                }
                if !front.tail {
                    self.holds[slot] = Some(Hold {
                        input: winner,
                        packet: front.packet,
                    });
                }
                forwards.push(Forward {
                    input: winner,
                    output,
                    vc,
                    flit: id,
                });
                forwarded = true;
            }
        }
    }

    /// The output port XY routing assigns for traffic to `dst` (used by the
    /// contention-free worm fast-forward to walk the latched path).
    pub(crate) fn route_to(&self, dst: wnoc_core::NodeId) -> Port {
        self.route[dst.index()]
    }

    /// If the router buffers exactly one flit across all inputs (any VC),
    /// returns the input port holding it and its handle.
    pub(crate) fn only_flit(&self) -> Option<(Port, FlitId)> {
        if self.buffered != 1 {
            return None;
        }
        for (slot, buffer) in self.inputs.iter().enumerate() {
            if let Some(front) = buffer.as_ref().and_then(FlitBuffer::front) {
                return Some((Port::from_index(slot / self.vc_count), front));
            }
        }
        None
    }

    /// The packet currently holding output `port` (VC 0), if any.  Only
    /// consulted by the single-VC worm fast-forward.
    pub(crate) fn hold_packet(&self, port: Port) -> Option<PacketId> {
        debug_assert_eq!(self.vc_count, 1, "worm fast-forward is single-VC only");
        self.holds[self.slot(port, 0)].map(|h| h.packet)
    }

    /// Fast-forward: removes the single remaining flit from `input`'s VC 0
    /// ring (its transfer has been applied in closed form).
    pub(crate) fn ff_pop(&mut self, input: Port) -> FlitId {
        debug_assert_eq!(self.vc_count, 1, "worm fast-forward is single-VC only");
        let slot = self.slot(input, 0);
        let id = self.inputs[slot]
            .as_mut()
            .and_then(FlitBuffer::pop)
            .expect("fast-forward pops a verified flit");
        self.buffered -= 1;
        id
    }

    /// Fast-forward: applies, in closed form, the arbiter side effects of a
    /// contention-free worm transit through this router.
    ///
    /// The dense kernel would have called `decide` for the `span` consecutive
    /// cycles starting at `first_decide`, each forwarding exactly one worm
    /// flit through `out`: header flits receive a single-requester grant (in
    /// arrival order, from the input listed in `head_inputs`), continuation
    /// flits ride the wormhole hold without consulting the arbiter, and every
    /// other output — request-free for the whole span, since the worm is the
    /// only traffic — issues one idle grant per cycle.  Cycles skipped
    /// *before* the worm reached this router are replayed first, against the
    /// pre-transit state.  The worm's tail passes last, so the hold on `out`
    /// ends cleared.
    pub(crate) fn ff_transit(
        &mut self,
        arena: &FlitArena,
        out: Port,
        head_inputs: &[Port],
        first_decide: Cycle,
        span: u64,
    ) {
        debug_assert_eq!(self.vc_count, 1, "worm fast-forward is single-VC only");
        self.replay_idle(arena, first_decide);
        for output in Port::ALL {
            if output == out {
                continue;
            }
            debug_assert!(
                !self.any_hold_on(output),
                "single-worm fast-forward implies no hold off the worm's path"
            );
            self.idle_debt[self.slot(output, 0)] += span;
        }
        for &input in head_inputs {
            let out_slot = self.slot(out, 0);
            self.flush_idle_debt(out_slot);
            let granted = self.arbiters[out_slot].grant(&[input]);
            debug_assert_eq!(granted, Some(input), "single requester is always granted");
        }
        let slot = self.slot(out, 0);
        self.holds[slot] = None;
        self.last_decide = first_decide + span - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::flow::FlowSet;
    use wnoc_core::{Flit, FlitKind, FlowId, MessageId, NodeId};

    fn weights(mesh: &Mesh) -> WeightTable {
        WeightTable::from_flow_set(&FlowSet::all_to_all(mesh).unwrap())
    }

    fn router(mesh: &Mesh, coord: Coord, policy: ArbitrationPolicy) -> Router {
        let w = weights(mesh);
        Router::with_uniform_buffers(coord, mesh, policy, &w, 4)
    }

    fn flit(arena: &mut FlitArena, dst: NodeId, kind: FlitKind, packet: u64, seq: u32) -> FlitId {
        arena.alloc(Flit {
            packet: PacketId(packet),
            message: MessageId(packet),
            flow: FlowId(0),
            src: NodeId(0),
            dst,
            kind,
            seq,
            msg_created: 0,
            injected: 0,
        })
    }

    /// Drives `decide` with consecutive cycles starting at 1.
    struct Clock(Cycle);
    impl Clock {
        fn new() -> Self {
            Self(0)
        }
        /// Cycles completed so far — the `now` an arrival at the end of the
        /// current cycle carries into [`Router::accept`].
        fn now(&self) -> Cycle {
            self.0
        }
        fn decide(&mut self, r: &mut Router, arena: &FlitArena) -> Vec<Forward> {
            self.0 += 1;
            let mut forwards = Vec::new();
            r.decide(arena, self.0, &mut forwards);
            forwards
        }
    }

    #[test]
    fn single_flit_packet_crosses_in_one_decision() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        // Destination is the node to the west: (0, 1).
        let dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        let id = flit(&mut arena, dst, FlitKind::HeadTail, 1, 0);
        r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].output, Port::Mesh(wnoc_core::Direction::West));
        assert_eq!(forwards[0].input, Port::Local);
        // Credit consumed on the west output.
        assert_eq!(r.credits(Port::Mesh(wnoc_core::Direction::West), 0), 3);
        assert!(r.is_idle());
    }

    #[test]
    fn ejection_at_destination_consumes_no_credit() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let coord = Coord::new(2, 2);
        let mut r = router(&mesh, coord, ArbitrationPolicy::RoundRobin);
        let dst = mesh.node_id(coord).unwrap();
        let id = flit(&mut arena, dst, FlitKind::HeadTail, 9, 0);
        r.accept(
            &arena,
            clock.now(),
            Port::Mesh(wnoc_core::Direction::East),
            0,
            id,
        )
        .unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].output, Port::Local);
        assert_eq!(r.credits(Port::Local, 0), 4);
    }

    #[test]
    fn wormhole_hold_keeps_output_for_the_whole_packet() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        // A three-flit packet from the local port, and a competing single-flit
        // packet from the east input, both heading west.
        for (kind, seq) in [
            (FlitKind::Head, 0),
            (FlitKind::Body, 1),
            (FlitKind::Tail, 2),
        ] {
            let id = flit(&mut arena, west_dst, kind, 1, seq);
            r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        }
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 2, 0);
        r.accept(
            &arena,
            clock.now(),
            Port::Mesh(wnoc_core::Direction::East),
            0,
            id,
        )
        .unwrap();

        let mut order = Vec::new();
        for _ in 0..4 {
            for f in clock.decide(&mut r, &arena) {
                if f.output == Port::Mesh(wnoc_core::Direction::West) {
                    order.push(arena.get(f.flit).packet.0);
                }
            }
        }
        // Whichever packet wins arbitration, its flits are never interleaved
        // with the other packet's.
        assert_eq!(order.len(), 4);
        let first = order[0];
        let first_count = if first == 1 { 3 } else { 1 };
        assert!(order[..first_count].iter().all(|&p| p == first));
        assert!(order[first_count..].iter().all(|&p| p != first));
    }

    #[test]
    fn blocked_output_stops_forwarding_when_credits_exhausted() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let w = weights(&mesh);
        // Downstream buffers of only 1 credit.
        let mut r = Router::new(
            Coord::new(1, 1),
            &mesh,
            ArbitrationPolicy::RoundRobin,
            &w,
            &[4; Port::COUNT],
            &[1; Port::COUNT],
            1,
        );
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        let id = flit(&mut arena, west_dst, FlitKind::Head, 1, 0);
        r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        let id = flit(&mut arena, west_dst, FlitKind::Tail, 1, 1);
        r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        assert_eq!(clock.decide(&mut r, &arena).len(), 1);
        // Credit exhausted: the tail cannot move until a credit returns.
        assert_eq!(clock.decide(&mut r, &arena).len(), 0);
        r.credit_return(Port::Mesh(wnoc_core::Direction::West), 0);
        assert_eq!(clock.decide(&mut r, &arena).len(), 1);
        assert!(r.is_idle());
    }

    #[test]
    fn nonexistent_port_rejects_flits() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut r = router(&mesh, Coord::new(0, 0), ArbitrationPolicy::RoundRobin);
        let dst = mesh.node_id(Coord::new(3, 3)).unwrap();
        // The corner router has no west or north port.
        let id = flit(&mut arena, dst, FlitKind::HeadTail, 1, 0);
        assert!(r
            .accept(&arena, 0, Port::Mesh(wnoc_core::Direction::West), 0, id)
            .is_err());
        assert_eq!(r.free_slots(Port::Mesh(wnoc_core::Direction::North), 0), 0);
        assert!(r.free_slots(Port::Local, 0) > 0);
    }

    #[test]
    fn two_inputs_different_outputs_forward_in_the_same_cycle() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        let south_dst = mesh.node_id(Coord::new(1, 3)).unwrap();
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 1, 0);
        r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        let id = flit(&mut arena, south_dst, FlitKind::HeadTail, 2, 0);
        r.accept(
            &arena,
            clock.now(),
            Port::Mesh(wnoc_core::Direction::North),
            0,
            id,
        )
        .unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 2);
    }

    #[test]
    fn skipped_idle_cycles_replenish_waw_credits_exactly() {
        // A WaW router skipped for k cycles must behave as if `decide` had
        // been called k times on an empty router: its arbiter counters creep
        // back to their quotas.
        let mesh = Mesh::square(2).unwrap();
        let coord = Coord::new(0, 0);
        let dst = mesh.node_id(coord).unwrap();
        let east = Port::Mesh(wnoc_core::Direction::East);
        let south = Port::Mesh(wnoc_core::Direction::South);

        let run = |skip: bool| -> Vec<u64> {
            let mut arena = FlitArena::new();
            let mut r = router(&mesh, coord, ArbitrationPolicy::Waw);
            let mut grants = Vec::new();
            let mut packet = 0u64;
            let mut scratch = Vec::new();
            for cycle in 1..=50u64 {
                // Two contention phases (counters drain under competition)
                // separated by an idle window in which the router is empty.
                let inject = cycle <= 6 || (31..=36).contains(&cycle);
                let idle_window = (15..=30).contains(&cycle);
                if inject {
                    if r.free_slots(east, 0) > 0 {
                        packet += 1;
                        let id = flit(&mut arena, dst, FlitKind::HeadTail, packet, 0);
                        r.accept(&arena, cycle - 1, east, 0, id).unwrap();
                    }
                    if r.free_slots(south, 0) > 0 {
                        packet += 1;
                        let id = flit(&mut arena, dst, FlitKind::HeadTail, packet, 0);
                        r.accept(&arena, cycle - 1, south, 0, id).unwrap();
                    }
                }
                if idle_window {
                    // Premise of skipping: the router really is empty here.
                    assert_eq!(r.buffered_flits(), 0, "cycle {cycle}");
                }
                // The dense kernel visits every cycle; the active-set kernel
                // skips the idle window and catches up on re-entry.
                if !skip || !idle_window {
                    scratch.clear();
                    r.decide(&arena, cycle, &mut scratch);
                    for f in &scratch {
                        if f.output == Port::Local {
                            grants.push(arena.get(f.flit).packet.0);
                        }
                    }
                }
            }
            grants
        };
        let dense = run(false);
        assert!(dense.len() >= 18, "both phases produced grants");
        assert_eq!(dense, run(true));
    }

    #[test]
    fn waw_router_grants_by_quota() {
        // At R(0,0) of a 2x2 mesh with all-to-all weights, the ejection port is
        // shared by the east input (1 source behind it) and the south input
        // (2 sources).  Under saturation the south input must receive roughly
        // two thirds of the grants.
        let mesh = Mesh::square(2).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let coord = Coord::new(0, 0);
        let mut r = router(&mesh, coord, ArbitrationPolicy::Waw);
        let dst = mesh.node_id(coord).unwrap();
        let east = Port::Mesh(wnoc_core::Direction::East);
        let south = Port::Mesh(wnoc_core::Direction::South);
        let mut east_grants = 0u32;
        let mut south_grants = 0u32;
        let mut packet = 0u64;
        for _ in 0..300 {
            // Keep both inputs saturated with single-flit packets.
            while r.free_slots(east, 0) > 0 {
                packet += 1;
                let id = flit(&mut arena, dst, FlitKind::HeadTail, packet, 0);
                r.accept(&arena, clock.now(), east, 0, id).unwrap();
            }
            while r.free_slots(south, 0) > 0 {
                packet += 1;
                let id = flit(&mut arena, dst, FlitKind::HeadTail, packet, 0);
                r.accept(&arena, clock.now(), south, 0, id).unwrap();
            }
            for f in clock.decide(&mut r, &arena) {
                if f.output == Port::Local {
                    match f.input {
                        p if p == east => east_grants += 1,
                        p if p == south => south_grants += 1,
                        _ => {}
                    }
                }
            }
        }
        let total = east_grants + south_grants;
        assert_eq!(total, 300);
        let south_share = f64::from(south_grants) / f64::from(total);
        assert!(
            (south_share - 2.0 / 3.0).abs() < 0.05,
            "south share {south_share}"
        );
    }

    /// A two-VC router with the given per-`(output, VC)` credit pool.
    fn vc_router(mesh: &Mesh, coord: Coord, credits: u32) -> Router {
        let w = weights(mesh);
        Router::new(
            coord,
            mesh,
            ArbitrationPolicy::RoundRobin,
            &w,
            &[4; Port::COUNT],
            &[credits; Port::COUNT],
            2,
        )
    }

    #[test]
    fn same_cycle_vc_contention_grants_the_highest_priority_vc_first() {
        // Two heads contend for the west output in the same cycle, one per
        // VC: the VC 0 head must win the cycle regardless of arrival order,
        // and only its VC's credit is consumed.
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = vc_router(&mesh, Coord::new(1, 1), 4);
        let west = Port::Mesh(wnoc_core::Direction::West);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        // The VC 1 flit arrives first (local input), the VC 0 flit second
        // (east input) — strict priority, not arrival order, decides.
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 1, 0);
        r.accept(&arena, clock.now(), Port::Local, 1, id).unwrap();
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 2, 0);
        r.accept(
            &arena,
            clock.now(),
            Port::Mesh(wnoc_core::Direction::East),
            0,
            id,
        )
        .unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(arena.get(forwards[0].flit).packet.0, 2);
        assert_eq!(forwards[0].vc, 0);
        assert_eq!(r.credits(west, 0), 3);
        assert_eq!(r.credits(west, 1), 4);
        // The lower-priority VC drains on the next cycle.
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(arena.get(forwards[0].flit).packet.0, 1);
        assert_eq!(forwards[0].vc, 1);
        assert_eq!(r.credits(west, 1), 3);
        assert!(r.is_idle());
    }

    #[test]
    fn credit_starved_vc0_does_not_block_vc1_in_the_same_cycle() {
        // One credit per (output, VC).  A two-flit VC 0 packet forwards its
        // head (consuming the only VC 0 credit) and then stalls mid-worm; a
        // VC 1 single-flit packet to the same output must still forward in
        // the very cycle VC 0 is credit-starved.
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = vc_router(&mesh, Coord::new(1, 1), 1);
        let west = Port::Mesh(wnoc_core::Direction::West);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        for (kind, seq) in [(FlitKind::Head, 0), (FlitKind::Tail, 1)] {
            let id = flit(&mut arena, west_dst, kind, 1, seq);
            r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        }
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 2, 0);
        r.accept(
            &arena,
            clock.now(),
            Port::Mesh(wnoc_core::Direction::East),
            1,
            id,
        )
        .unwrap();
        // Cycle 1: VC 0 head wins and exhausts its credit pool.
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(
            (arena.get(forwards[0].flit).packet.0, forwards[0].vc),
            (1, 0)
        );
        assert_eq!(r.credits(west, 0), 0);
        // Cycle 2: the held VC 0 worm cannot move, VC 1 forwards instead.
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(
            (arena.get(forwards[0].flit).packet.0, forwards[0].vc),
            (2, 1)
        );
        // The VC 0 tail resumes only once a VC 0 credit returns.
        assert_eq!(clock.decide(&mut r, &arena).len(), 0);
        r.credit_return(west, 0);
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(
            (arena.get(forwards[0].flit).packet.0, forwards[0].vc),
            (1, 0)
        );
        assert!(r.is_idle());
    }

    #[test]
    fn vc0_grants_do_not_steer_the_vc1_round_robin() {
        // Regression: with a single arbiter shared across VCs, every VC 0
        // grant from one input re-parks the round-robin pointer just past
        // that input, so whenever VC 1 gets a free cycle the pointer always
        // selects the same VC 1 input — the other one starves for as long as
        // the VC 0 stream lasts (campaigns observed flows starved for entire
        // runs behind a saturated higher-priority VC).  Per-(output, VC)
        // arbiters must keep the VC 1 round robin fair.
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = vc_router(&mesh, Coord::new(1, 1), 16);
        let east = Port::Mesh(wnoc_core::Direction::East);
        let south = Port::Mesh(wnoc_core::Direction::South);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        // Two VC 1 packets queued per input; topped back up after each grant.
        for (input, packet) in [(east, 200), (east, 201), (south, 300), (south, 301)] {
            let id = flit(&mut arena, west_dst, FlitKind::HeadTail, packet, 0);
            r.accept(&arena, clock.now(), input, 1, id).unwrap();
        }
        let mut vc1_grants = (0u32, 0u32);
        let mut next_packet = (202u64, 302u64);
        for round in 0..20u64 {
            if round % 2 == 0 {
                // VC 0 streams from the east input on even cycles and must
                // win each of them.
                let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 100 + round, 0);
                r.accept(&arena, clock.now(), east, 0, id).unwrap();
            }
            let forwards = clock.decide(&mut r, &arena);
            assert_eq!(forwards.len(), 1);
            let forward = forwards[0];
            if round % 2 == 0 {
                assert_eq!(forward.vc, 0, "VC 0 wins every cycle it has a flit");
                continue;
            }
            assert_eq!(forward.vc, 1);
            if forward.input == east {
                vc1_grants.0 += 1;
                let id = flit(&mut arena, west_dst, FlitKind::HeadTail, next_packet.0, 0);
                next_packet.0 += 1;
                r.accept(&arena, clock.now(), east, 1, id).unwrap();
            } else {
                assert_eq!(forward.input, south);
                vc1_grants.1 += 1;
                let id = flit(&mut arena, west_dst, FlitKind::HeadTail, next_packet.1, 0);
                next_packet.1 += 1;
                r.accept(&arena, clock.now(), south, 1, id).unwrap();
            }
        }
        // 10 VC 1 cycles: a fair per-VC round robin alternates 5/5; the
        // shared-pointer bug gave 10/0.
        assert_eq!(vc1_grants, (5, 5));
    }

    #[test]
    fn credit_return_unblocks_only_its_own_vc() {
        // Credits are per-(output, VC) pools: returning a VC 1 credit must
        // not release a packet waiting on VC 0 credits.
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = vc_router(&mesh, Coord::new(1, 1), 1);
        let west = Port::Mesh(wnoc_core::Direction::West);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 1, 0);
        r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        assert_eq!(clock.decide(&mut r, &arena).len(), 1);
        let id = flit(&mut arena, west_dst, FlitKind::HeadTail, 2, 0);
        r.accept(&arena, clock.now(), Port::Local, 0, id).unwrap();
        // VC 0 is out of credits; a VC 1 credit return changes nothing.
        assert_eq!(clock.decide(&mut r, &arena).len(), 0);
        r.credit_return(west, 1);
        assert_eq!(clock.decide(&mut r, &arena).len(), 0);
        assert_eq!(r.credits(west, 1), 2);
        // The matching VC 0 return releases the waiting packet.
        r.credit_return(west, 0);
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(
            (arena.get(forwards[0].flit).packet.0, forwards[0].vc),
            (2, 0)
        );
        assert!(r.is_idle());
    }
}
