//! The wormhole router model: input-buffered, XY-routed, credit flow control,
//! with a pluggable output-port arbitration policy (round robin or WaW).
//!
//! The router is built for the allocation-free active-set kernel:
//!
//! * input buffers hold [`FlitId`] handles into the network's
//!   [`FlitArena`](crate::arena::FlitArena), never flit values;
//! * [`Router::decide`] appends into a caller-provided scratch vector instead
//!   of returning a fresh `Vec` every cycle;
//! * routing decisions come from a per-router lookup table precomputed from
//!   XY routing at construction (no mesh clone per router, no arithmetic on
//!   the hot path);
//! * a router that holds no flits can be *skipped* entirely by the scheduler:
//!   [`Router::decide`] tracks the cycle it last ran and replays the skipped
//!   idle cycles into its arbiters in O(1)
//!   ([`PortArbiter::idle_for`](wnoc_core::arbitration::PortArbiter::idle_for))
//!   before taking new decisions, so skipping is behaviour-identical to
//!   visiting every router every cycle.

use wnoc_core::arbitration::{make_arbiter, ArbitrationPolicy, PortArbiter};
use wnoc_core::routing::{RoutingAlgorithm, XyRouting};
use wnoc_core::weights::WeightTable;
use wnoc_core::{Coord, Cycle, Mesh, PacketId, Port};

use crate::arena::{FlitArena, FlitId};
use crate::buffer::FlitBuffer;

/// A flit forwarding decision taken by a router in the current cycle.
#[derive(Debug, Clone, Copy)]
pub struct Forward {
    /// Input port the flit was taken from.
    pub input: Port,
    /// Output port the flit leaves through.
    pub output: Port,
    /// Handle of the forwarded flit.
    pub flit: FlitId,
}

/// A wormhole path reservation: `input` holds `output` until the packet's tail
/// flit has been forwarded.
#[derive(Debug, Clone, Copy)]
struct Hold {
    input: Port,
    packet: PacketId,
}

/// One mesh router: five input buffers, per-output arbiters, wormhole switching
/// and credit-based flow control towards its downstream neighbours.
pub struct Router {
    coord: Coord,
    inputs: Vec<Option<FlitBuffer>>,
    credits: Vec<u32>,
    holds: Vec<Option<Hold>>,
    arbiters: Vec<Box<dyn PortArbiter>>,
    /// Output port per destination node id, precomputed from XY routing.
    route: Box<[Port]>,
    /// Buffered flits across all inputs, maintained incrementally so the
    /// active-set scheduler's busy check is O(1).
    buffered: usize,
    /// Cycle of the last [`Router::decide`] call (0 before the first): the
    /// scheduler may skip idle cycles, which are replayed into the arbiters.
    last_decide: Cycle,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("coord", &self.coord)
            .field("credits", &self.credits)
            .field(
                "buffered",
                &self
                    .inputs
                    .iter()
                    .map(|b| b.as_ref().map_or(0, FlitBuffer::len))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Router {
    /// Builds the router at `coord` of `mesh`.
    ///
    /// `input_depths[port]` is the depth of that input buffer;
    /// `output_credits[port]` the initial credit count of that output port,
    /// which **must** equal the depth of the downstream input buffer it feeds
    /// (the network derives both from one [`wnoc_core::BufferConfig`] and
    /// asserts the invariant at construction).  Entries for ports that do not
    /// exist at `coord` (mesh edges) are ignored.  `weights` supplies the WaW
    /// quotas; it is ignored under round-robin arbitration.
    ///
    /// # Panics
    ///
    /// Panics if an existing port is given a zero buffer depth.
    pub fn new(
        coord: Coord,
        mesh: &Mesh,
        policy: ArbitrationPolicy,
        weights: &WeightTable,
        input_depths: &[u32; Port::COUNT],
        output_credits: &[u32; Port::COUNT],
    ) -> Self {
        let mut inputs = Vec::with_capacity(Port::COUNT);
        let mut credits = Vec::with_capacity(Port::COUNT);
        let mut holds = Vec::with_capacity(Port::COUNT);
        let mut arbiters: Vec<Box<dyn PortArbiter>> = Vec::with_capacity(Port::COUNT);
        for port in Port::ALL {
            let exists = match port {
                Port::Local => true,
                Port::Mesh(d) => mesh.has_port(coord, d),
            };
            assert!(
                !exists || input_depths[port.index()] > 0,
                "input buffer {port} of router {coord} must hold at least one flit"
            );
            inputs.push(exists.then(|| FlitBuffer::new(input_depths[port.index()] as usize)));
            credits.push(if exists {
                output_credits[port.index()]
            } else {
                0
            });
            holds.push(None);
            let quotas = weights.reduced_quotas(coord, port);
            arbiters.push(make_arbiter(policy, &quotas));
        }
        let routing = XyRouting::new();
        let route = mesh
            .nodes()
            .map(|node| {
                let dst = mesh.coord_of(node).expect("node inside mesh");
                routing
                    .output_port(mesh, coord, dst)
                    .expect("coordinates validated at construction")
            })
            .collect();
        Self {
            coord,
            inputs,
            credits,
            holds,
            arbiters,
            route,
            buffered: 0,
            last_decide: 0,
        }
    }

    /// Convenience constructor with every input buffer `depth` flits deep and
    /// every output assuming an equally deep downstream buffer — the uniform
    /// design point (and the shape of the historical two-scalar constructor).
    pub fn with_uniform_buffers(
        coord: Coord,
        mesh: &Mesh,
        policy: ArbitrationPolicy,
        weights: &WeightTable,
        depth: u32,
    ) -> Self {
        Self::new(
            coord,
            mesh,
            policy,
            weights,
            &[depth; Port::COUNT],
            &[depth; Port::COUNT],
        )
    }

    /// The router's coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Total capacity of the input buffer of `port`, in flits (zero if the
    /// port does not exist) — the quantity an upstream credit counter must
    /// match.
    pub fn input_capacity(&self, port: Port) -> usize {
        self.inputs[port.index()]
            .as_ref()
            .map_or(0, FlitBuffer::capacity)
    }

    /// Free slots in the input buffer of `port` (zero if the port does not
    /// exist).
    pub fn free_slots(&self, port: Port) -> usize {
        self.inputs[port.index()]
            .as_ref()
            .map_or(0, FlitBuffer::free_slots)
    }

    /// Number of buffered flits across all input ports (O(1)).
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.inputs.iter().flatten().map(FlitBuffer::len).sum(),
            "incremental buffered-flit count drifted"
        );
        self.buffered
    }

    /// Returns `true` if no flits are buffered and no wormhole path is held.
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0 && self.holds.iter().all(Option::is_none)
    }

    /// Current credit count of output `port`.
    pub fn credits(&self, port: Port) -> u32 {
        self.credits[port.index()]
    }

    /// Returns one credit to output `port` (the downstream router freed a
    /// buffer slot).
    pub fn credit_return(&mut self, port: Port) {
        self.credits[port.index()] += 1;
    }

    /// Accepts a flit into the input buffer of `port`.
    ///
    /// # Errors
    ///
    /// Returns `Err(id)` if the buffer is full — this indicates a credit
    /// flow-control violation and is treated as a fatal simulation error by the
    /// network.
    pub fn accept(&mut self, port: Port, id: FlitId) -> Result<(), FlitId> {
        match &mut self.inputs[port.index()] {
            Some(buffer) => {
                buffer.push(id)?;
                self.buffered += 1;
                Ok(())
            }
            None => Err(id),
        }
    }

    /// Runs one cycle of switch allocation and traversal for cycle `now`,
    /// removing the forwarded flits from their input buffers and consuming
    /// credits.  Cycles skipped since the previous call (the scheduler only
    /// visits routers that hold flits) are first replayed into the arbiters
    /// as idle cycles.
    ///
    /// Appends at most one [`Forward`] per output port to `forwards` (the
    /// caller's reusable scratch buffer, which is *not* cleared here); the
    /// caller (the network) is responsible for pushing each forwarded flit
    /// onto the corresponding link or ejection sink and for returning a
    /// credit to the upstream router of the drained input port.
    pub fn decide(&mut self, arena: &FlitArena, now: Cycle, forwards: &mut Vec<Forward>) {
        // Catch up on skipped idle cycles.  While a router holds no flits the
        // dense reference kernel would still have called `decide` every
        // cycle: outputs with a wormhole hold do nothing (the continuation
        // branch never consults the arbiter), every other output issues an
        // idle grant.  Holds and buffer occupancy cannot change while the
        // router is skipped, so the replay below is exact.
        let skipped = now.saturating_sub(self.last_decide).saturating_sub(1);
        if skipped > 0 {
            for output in Port::ALL {
                if self.holds[output.index()].is_none() {
                    self.arbiters[output.index()].idle_for(skipped);
                }
            }
        }
        self.last_decide = now;

        // Inputs already consumed this cycle (an input can feed one output).
        let mut consumed = [false; Port::COUNT];

        for output in Port::ALL {
            let oi = output.index();
            if let Some(hold) = self.holds[oi] {
                // Wormhole continuation: only the holding packet may use the
                // output, no arbitration needed.
                if consumed[hold.input.index()] {
                    continue;
                }
                let has_credit = output == Port::Local || self.credits[oi] > 0;
                if !has_credit {
                    continue;
                }
                let Some(buffer) = self.inputs[hold.input.index()].as_mut() else {
                    continue;
                };
                let matches = buffer
                    .front()
                    .is_some_and(|id| arena.get(id).packet == hold.packet);
                if !matches {
                    continue;
                }
                let id = buffer.pop().expect("front checked above");
                self.buffered -= 1;
                consumed[hold.input.index()] = true;
                if output != Port::Local {
                    self.credits[oi] -= 1;
                }
                if arena.get(id).kind.is_tail() {
                    self.holds[oi] = None;
                }
                forwards.push(Forward {
                    input: hold.input,
                    output,
                    flit: id,
                });
                continue;
            }

            // Free output: arbitrate among input ports whose head-of-line flit
            // is a header routed to this output.  Fixed-size request set: this
            // loop runs for every busy router every cycle and must not
            // allocate.
            let mut requests = [Port::Local; Port::COUNT];
            let mut request_count = 0;
            for input in Port::ALL {
                if consumed[input.index()] {
                    continue;
                }
                let Some(buffer) = self.inputs[input.index()].as_ref() else {
                    continue;
                };
                let Some(front) = buffer.front() else {
                    continue;
                };
                let front = arena.get(front);
                if !front.kind.is_head() {
                    // An orphaned body flit would indicate a protocol bug; the
                    // wormhole hold guarantees this cannot happen.
                    continue;
                }
                if self.route[front.dst.index()] == output {
                    requests[request_count] = input;
                    request_count += 1;
                }
            }
            let requests = &requests[..request_count];
            let has_credit = output == Port::Local || self.credits[oi] > 0;
            if requests.is_empty() || !has_credit {
                // Let the WaW arbiter replenish its counters on idle cycles.
                if requests.is_empty() {
                    let _ = self.arbiters[oi].grant(&[]);
                }
                continue;
            }
            let Some(winner) = self.arbiters[oi].grant(requests) else {
                continue;
            };
            let buffer = self.inputs[winner.index()]
                .as_mut()
                .expect("winner has a buffer");
            let id = buffer.pop().expect("winner had a head flit");
            self.buffered -= 1;
            consumed[winner.index()] = true;
            if output != Port::Local {
                self.credits[oi] -= 1;
            }
            if !arena.get(id).kind.is_tail() {
                self.holds[oi] = Some(Hold {
                    input: winner,
                    packet: arena.get(id).packet,
                });
            }
            forwards.push(Forward {
                input: winner,
                output,
                flit: id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::flow::FlowSet;
    use wnoc_core::{Flit, FlitKind, FlowId, MessageId, NodeId};

    fn weights(mesh: &Mesh) -> WeightTable {
        WeightTable::from_flow_set(&FlowSet::all_to_all(mesh).unwrap())
    }

    fn router(mesh: &Mesh, coord: Coord, policy: ArbitrationPolicy) -> Router {
        let w = weights(mesh);
        Router::with_uniform_buffers(coord, mesh, policy, &w, 4)
    }

    fn flit(arena: &mut FlitArena, dst: NodeId, kind: FlitKind, packet: u64, seq: u32) -> FlitId {
        arena.alloc(Flit {
            packet: PacketId(packet),
            message: MessageId(packet),
            flow: FlowId(0),
            src: NodeId(0),
            dst,
            kind,
            seq,
            msg_created: 0,
            injected: 0,
        })
    }

    /// Drives `decide` with consecutive cycles starting at 1.
    struct Clock(Cycle);
    impl Clock {
        fn new() -> Self {
            Self(0)
        }
        fn decide(&mut self, r: &mut Router, arena: &FlitArena) -> Vec<Forward> {
            self.0 += 1;
            let mut forwards = Vec::new();
            r.decide(arena, self.0, &mut forwards);
            forwards
        }
    }

    #[test]
    fn single_flit_packet_crosses_in_one_decision() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        // Destination is the node to the west: (0, 1).
        let dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        r.accept(Port::Local, flit(&mut arena, dst, FlitKind::HeadTail, 1, 0))
            .unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].output, Port::Mesh(wnoc_core::Direction::West));
        assert_eq!(forwards[0].input, Port::Local);
        // Credit consumed on the west output.
        assert_eq!(r.credits(Port::Mesh(wnoc_core::Direction::West)), 3);
        assert!(r.is_idle());
    }

    #[test]
    fn ejection_at_destination_consumes_no_credit() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let coord = Coord::new(2, 2);
        let mut r = router(&mesh, coord, ArbitrationPolicy::RoundRobin);
        let dst = mesh.node_id(coord).unwrap();
        r.accept(
            Port::Mesh(wnoc_core::Direction::East),
            flit(&mut arena, dst, FlitKind::HeadTail, 9, 0),
        )
        .unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].output, Port::Local);
        assert_eq!(r.credits(Port::Local), 4);
    }

    #[test]
    fn wormhole_hold_keeps_output_for_the_whole_packet() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        // A three-flit packet from the local port, and a competing single-flit
        // packet from the east input, both heading west.
        r.accept(
            Port::Local,
            flit(&mut arena, west_dst, FlitKind::Head, 1, 0),
        )
        .unwrap();
        r.accept(
            Port::Local,
            flit(&mut arena, west_dst, FlitKind::Body, 1, 1),
        )
        .unwrap();
        r.accept(
            Port::Local,
            flit(&mut arena, west_dst, FlitKind::Tail, 1, 2),
        )
        .unwrap();
        r.accept(
            Port::Mesh(wnoc_core::Direction::East),
            flit(&mut arena, west_dst, FlitKind::HeadTail, 2, 0),
        )
        .unwrap();

        let mut order = Vec::new();
        for _ in 0..4 {
            for f in clock.decide(&mut r, &arena) {
                if f.output == Port::Mesh(wnoc_core::Direction::West) {
                    order.push(arena.get(f.flit).packet.0);
                }
            }
        }
        // Whichever packet wins arbitration, its flits are never interleaved
        // with the other packet's.
        assert_eq!(order.len(), 4);
        let first = order[0];
        let first_count = if first == 1 { 3 } else { 1 };
        assert!(order[..first_count].iter().all(|&p| p == first));
        assert!(order[first_count..].iter().all(|&p| p != first));
    }

    #[test]
    fn blocked_output_stops_forwarding_when_credits_exhausted() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let w = weights(&mesh);
        // Downstream buffers of only 1 credit.
        let mut r = Router::new(
            Coord::new(1, 1),
            &mesh,
            ArbitrationPolicy::RoundRobin,
            &w,
            &[4; Port::COUNT],
            &[1; Port::COUNT],
        );
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        r.accept(
            Port::Local,
            flit(&mut arena, west_dst, FlitKind::Head, 1, 0),
        )
        .unwrap();
        r.accept(
            Port::Local,
            flit(&mut arena, west_dst, FlitKind::Tail, 1, 1),
        )
        .unwrap();
        assert_eq!(clock.decide(&mut r, &arena).len(), 1);
        // Credit exhausted: the tail cannot move until a credit returns.
        assert_eq!(clock.decide(&mut r, &arena).len(), 0);
        r.credit_return(Port::Mesh(wnoc_core::Direction::West));
        assert_eq!(clock.decide(&mut r, &arena).len(), 1);
        assert!(r.is_idle());
    }

    #[test]
    fn nonexistent_port_rejects_flits() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut r = router(&mesh, Coord::new(0, 0), ArbitrationPolicy::RoundRobin);
        let dst = mesh.node_id(Coord::new(3, 3)).unwrap();
        // The corner router has no west or north port.
        assert!(r
            .accept(
                Port::Mesh(wnoc_core::Direction::West),
                flit(&mut arena, dst, FlitKind::HeadTail, 1, 0)
            )
            .is_err());
        assert_eq!(r.free_slots(Port::Mesh(wnoc_core::Direction::North)), 0);
        assert!(r.free_slots(Port::Local) > 0);
    }

    #[test]
    fn two_inputs_different_outputs_forward_in_the_same_cycle() {
        let mesh = Mesh::square(4).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let mut r = router(&mesh, Coord::new(1, 1), ArbitrationPolicy::RoundRobin);
        let west_dst = mesh.node_id(Coord::new(0, 1)).unwrap();
        let south_dst = mesh.node_id(Coord::new(1, 3)).unwrap();
        r.accept(
            Port::Local,
            flit(&mut arena, west_dst, FlitKind::HeadTail, 1, 0),
        )
        .unwrap();
        r.accept(
            Port::Mesh(wnoc_core::Direction::North),
            flit(&mut arena, south_dst, FlitKind::HeadTail, 2, 0),
        )
        .unwrap();
        let forwards = clock.decide(&mut r, &arena);
        assert_eq!(forwards.len(), 2);
    }

    #[test]
    fn skipped_idle_cycles_replenish_waw_credits_exactly() {
        // A WaW router skipped for k cycles must behave as if `decide` had
        // been called k times on an empty router: its arbiter counters creep
        // back to their quotas.
        let mesh = Mesh::square(2).unwrap();
        let coord = Coord::new(0, 0);
        let dst = mesh.node_id(coord).unwrap();
        let east = Port::Mesh(wnoc_core::Direction::East);
        let south = Port::Mesh(wnoc_core::Direction::South);

        let run = |skip: bool| -> Vec<u64> {
            let mut arena = FlitArena::new();
            let mut r = router(&mesh, coord, ArbitrationPolicy::Waw);
            let mut grants = Vec::new();
            let mut packet = 0u64;
            let mut scratch = Vec::new();
            for cycle in 1..=50u64 {
                // Two contention phases (counters drain under competition)
                // separated by an idle window in which the router is empty.
                let inject = cycle <= 6 || (31..=36).contains(&cycle);
                let idle_window = (15..=30).contains(&cycle);
                if inject {
                    if r.free_slots(east) > 0 {
                        packet += 1;
                        r.accept(east, flit(&mut arena, dst, FlitKind::HeadTail, packet, 0))
                            .unwrap();
                    }
                    if r.free_slots(south) > 0 {
                        packet += 1;
                        r.accept(south, flit(&mut arena, dst, FlitKind::HeadTail, packet, 0))
                            .unwrap();
                    }
                }
                if idle_window {
                    // Premise of skipping: the router really is empty here.
                    assert_eq!(r.buffered_flits(), 0, "cycle {cycle}");
                }
                // The dense kernel visits every cycle; the active-set kernel
                // skips the idle window and catches up on re-entry.
                if !skip || !idle_window {
                    scratch.clear();
                    r.decide(&arena, cycle, &mut scratch);
                    for f in &scratch {
                        if f.output == Port::Local {
                            grants.push(arena.get(f.flit).packet.0);
                        }
                    }
                }
            }
            grants
        };
        let dense = run(false);
        assert!(dense.len() >= 18, "both phases produced grants");
        assert_eq!(dense, run(true));
    }

    #[test]
    fn waw_router_grants_by_quota() {
        // At R(0,0) of a 2x2 mesh with all-to-all weights, the ejection port is
        // shared by the east input (1 source behind it) and the south input
        // (2 sources).  Under saturation the south input must receive roughly
        // two thirds of the grants.
        let mesh = Mesh::square(2).unwrap();
        let mut arena = FlitArena::new();
        let mut clock = Clock::new();
        let coord = Coord::new(0, 0);
        let mut r = router(&mesh, coord, ArbitrationPolicy::Waw);
        let dst = mesh.node_id(coord).unwrap();
        let east = Port::Mesh(wnoc_core::Direction::East);
        let south = Port::Mesh(wnoc_core::Direction::South);
        let mut east_grants = 0u32;
        let mut south_grants = 0u32;
        let mut packet = 0u64;
        for _ in 0..300 {
            // Keep both inputs saturated with single-flit packets.
            while r.free_slots(east) > 0 {
                packet += 1;
                r.accept(east, flit(&mut arena, dst, FlitKind::HeadTail, packet, 0))
                    .unwrap();
            }
            while r.free_slots(south) > 0 {
                packet += 1;
                r.accept(south, flit(&mut arena, dst, FlitKind::HeadTail, packet, 0))
                    .unwrap();
            }
            for f in clock.decide(&mut r, &arena) {
                if f.output == Port::Local {
                    match f.input {
                        p if p == east => east_grants += 1,
                        p if p == south => south_grants += 1,
                        _ => {}
                    }
                }
            }
        }
        let total = east_grants + south_grants;
        assert_eq!(total, 300);
        let south_share = f64::from(south_grants) / f64::from(total);
        assert!(
            (south_share - 2.0 / 3.0).abs() < 0.05,
            "south share {south_share}"
        );
    }
}
