//! # wnoc-sim
//!
//! Cycle-accurate simulator of wormhole 2D-mesh Networks-on-Chip, the
//! substrate used to evaluate the WaW + WaP design of Panic et al. (DATE 2016).
//! It plays the role the SoCLib + gNoCSim platform plays in the paper.
//!
//! The simulator models:
//!
//! * input-buffered single-cycle wormhole routers with XY routing, credit-based
//!   flow control and a pluggable output arbitration policy (round robin or the
//!   WaW weighted round robin) — [`router`];
//! * pipelined links of configurable latency — [`link`];
//! * network interfaces performing regular or WaP packetization — [`nic`];
//! * the complete mesh with end-to-end message tracking and statistics —
//!   [`network`], [`stats`];
//! * synthetic traffic generators and high-level drivers, including the
//!   saturated hotspot runs used to observe worst-case behaviour — [`traffic`],
//!   [`sim`];
//! * open-loop arrival-curve and trace-replay scheduling for bursty traffic —
//!   [`arrival`].
//!
//! Execution uses an allocation-free **event-horizon kernel**: all in-flight
//! flits live in one [`arena`] slab and every queue holds 4-byte handles,
//! worklists restrict each cycle to the routers, links and NICs that can
//! actually *act* (blocked components are skipped, their arbiter state
//! replayed lazily in closed form), drivers jump the clock straight to the
//! next event horizon, and a lone worm in an otherwise-empty network is
//! delivered by a contention-free closed-form fast-forward.  The dense
//! per-cycle reference scheduler is retained behind
//! [`network::Network::set_dense_kernel`] (construction default under the
//! `dense-kernel` cargo feature) as a differential-testing oracle — the two
//! schedulers are bit-for-bit equivalent (see [`network`] for the design
//! notes and `docs/ARCHITECTURE.md` for the full discussion).
//!
//! # Example
//!
//! ```
//! use wnoc_core::{Coord, Mesh, NocConfig};
//! use wnoc_core::flow::FlowSet;
//! use wnoc_sim::network::Network;
//!
//! let mesh = Mesh::square(4)?;
//! let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0))?;
//! let mut noc = Network::new(mesh, NocConfig::waw_wap(), &flows)?;
//! let src = mesh.node_id(Coord::from_row_col(3, 3))?;
//! let dst = mesh.node_id(Coord::from_row_col(0, 0))?;
//! noc.offer(src, dst, 4)?;
//! assert!(noc.run_until_drained(1_000));
//! # Ok::<(), wnoc_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod arrival;
pub mod buffer;
pub mod hash;
pub mod link;
pub mod network;
pub mod nic;
pub mod router;
pub mod sim;
pub mod stats;
pub mod traffic;

pub use arena::{FlitArena, FlitId};
pub use arrival::{schedule_for, ScheduledMessage, ScheduledTraffic};
pub use network::{Delivered, Network};
pub use sim::{SaturatedReport, Simulation};
pub use stats::{LatencyStats, NetworkStats};
pub use traffic::{RandomTraffic, TrafficPattern};
