//! A minimal deterministic multiply-rotate hasher (the FxHash construction
//! used by rustc) for the simulator's hot hash maps.
//!
//! `SipHash`, the standard library default, costs more than the rest of the
//! forwarding path for per-flit bookkeeping such as
//! [`NetworkStats::record_port_flit`](crate::stats::NetworkStats::record_port_flit).
//! The simulator's map keys are tiny ((coordinate, port) pairs, node and
//! message ids) and all inputs are trusted simulation state, so a fast
//! non-cryptographic hash is the right trade-off.  The hasher is fully
//! deterministic (no per-process random seed), which also keeps map iteration
//! order reproducible from run to run — though every consumer that needs an
//! order still sorts explicitly.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the Fx construction (a 64-bit odd constant derived from
/// the golden ratio, as used by Firefox and rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher: `state = (rotl5(state) ^ word) * SEED`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic slice path (string keys etc.) — not on any hot path here.
        for &byte in bytes {
            self.add(u64::from(byte));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.add(value as u64);
        self.add((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }

    #[inline]
    fn write_i8(&mut self, value: i8) {
        self.add(value as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, value: i16) {
        self.add(value as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, value: i32) {
        self.add(value as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, value: i64) {
        self.add(value as u64);
    }

    #[inline]
    fn write_isize(&mut self, value: isize) {
        self.add(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let hash = |value: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(value);
            hasher.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: HashMap<(u16, u16), u64, FxBuildHasher> = HashMap::default();
        for x in 0..50u16 {
            map.insert((x, x.wrapping_mul(3)), u64::from(x));
        }
        assert_eq!(map.len(), 50);
        for x in 0..50u16 {
            assert_eq!(map.get(&(x, x.wrapping_mul(3))), Some(&u64::from(x)));
        }
    }

    #[test]
    fn bytes_and_words_feed_the_state() {
        let mut a = FxHasher::default();
        a.write(b"wnoc");
        let mut b = FxHasher::default();
        b.write(b"wnoC");
        assert_ne!(a.finish(), b.finish());
    }
}
