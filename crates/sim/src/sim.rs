//! Simulation drivers: open-loop random traffic runs and the saturated
//! worst-contention runs used to measure observed traversal times.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, FlowId, Mesh, NocConfig, NodeId, Result};

use crate::network::Network;
use crate::stats::{LatencyStats, NetworkStats};
use crate::traffic::RandomTraffic;

/// Per-flow observed traversal latencies of a saturated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturatedReport {
    /// Cycles simulated after warm-up.
    pub measured_cycles: u64,
    /// Observed traversal latency summary per flow.
    pub per_flow: HashMap<FlowId, LatencyStats>,
}

impl SaturatedReport {
    /// Largest observed traversal latency across all flows.
    pub fn max(&self) -> u64 {
        self.per_flow.values().map(|s| s.max).max().unwrap_or(0)
    }

    /// Smallest per-flow maximum (the best-served flow's worst observation).
    pub fn min_of_max(&self) -> u64 {
        self.per_flow.values().map(|s| s.max).min().unwrap_or(0)
    }

    /// Mean of the per-flow maxima.
    pub fn mean_of_max(&self) -> f64 {
        if self.per_flow.is_empty() {
            return 0.0;
        }
        self.per_flow.values().map(|s| s.max as f64).sum::<f64>() / self.per_flow.len() as f64
    }
}

/// High-level simulation driver around [`Network`].
#[derive(Debug)]
pub struct Simulation {
    network: Network,
}

impl Simulation {
    /// Builds a simulation of `config` over `mesh`, with WaW weights (and flow
    /// ids) derived from `flows`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(mesh: &Mesh, config: NocConfig, flows: &FlowSet) -> Result<Self> {
        Ok(Self {
            network: Network::new(mesh, config, flows)?,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the underlying network (for custom drivers).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetworkStats {
        self.network.stats()
    }

    /// Runs open-loop random traffic for `cycles` cycles and then drains the
    /// network (up to `drain_limit` extra cycles).  Returns `true` if the
    /// network drained completely.
    ///
    /// # Errors
    ///
    /// Returns an error if a generated message is invalid (should not happen
    /// for a well-formed generator).
    pub fn run_traffic(
        &mut self,
        traffic: &mut RandomTraffic,
        cycles: u64,
        drain_limit: u64,
    ) -> Result<bool> {
        for cycle in 0..cycles {
            for msg in traffic.messages_for_cycle(cycle) {
                self.network.offer(msg.src, msg.dst, msg.size_flits)?;
            }
            self.network.step();
        }
        Ok(self.network.run_until_drained(drain_limit))
    }

    /// Runs the network under *saturation* for the given flows: every flow's
    /// source NIC is kept back-logged so that, as in the worst-case assumptions
    /// of the paper, every contender is always requesting.  After `warmup`
    /// cycles the per-flow traversal latencies observed during `measure` cycles
    /// are reported.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow is invalid for the mesh.
    pub fn run_saturated(
        &mut self,
        flows: &FlowSet,
        message_flits: u32,
        warmup: u64,
        measure: u64,
    ) -> Result<SaturatedReport> {
        let backlog_flits = 8 * message_flits as usize;
        let pairs: Vec<(NodeId, NodeId)> = flows.flows().iter().map(|f| (f.src, f.dst)).collect();

        let mut baseline: HashMap<FlowId, LatencyStats> = HashMap::new();
        for phase in 0..2 {
            let cycles = if phase == 0 { warmup } else { measure };
            for _ in 0..cycles {
                for &(src, dst) in &pairs {
                    if self.network.nic_backlog(src) < backlog_flits {
                        self.network.offer(src, dst, message_flits)?;
                    }
                }
                self.network.step();
            }
            if phase == 0 {
                // Snapshot the stats at the end of warm-up so the report only
                // covers the measurement window.
                baseline = self.network.stats().traversal_latency.clone();
            }
        }

        let mut per_flow = HashMap::new();
        for (flow, stats) in &self.network.stats().traversal_latency {
            let before = baseline.get(flow).map(|s| s.count).unwrap_or(0);
            if stats.count > before {
                // Report the stats over the whole saturated run for simplicity;
                // the warm-up only serves to fill the network first.
                per_flow.insert(*flow, *stats);
            }
        }
        Ok(SaturatedReport {
            measured_cycles: measure,
            per_flow,
        })
    }

    /// Convenience: measures the observed per-flow worst traversal latencies of
    /// the all-to-one hotspot scenario (every node to `hotspot`) under
    /// saturation.
    ///
    /// # Errors
    ///
    /// Returns an error if `hotspot` lies outside the mesh.
    pub fn saturated_hotspot(
        mesh: &Mesh,
        config: NocConfig,
        hotspot: Coord,
        message_flits: u32,
        warmup: u64,
        measure: u64,
    ) -> Result<SaturatedReport> {
        let flows = FlowSet::all_to_one(mesh, hotspot)?;
        let mut sim = Simulation::new(mesh, config, &flows)?;
        sim.run_saturated(&flows, message_flits, warmup, measure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;

    #[test]
    fn light_random_traffic_drains() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_all(&mesh).unwrap();
        let mut sim = Simulation::new(&mesh, NocConfig::regular(4), &flows).unwrap();
        let mut traffic =
            RandomTraffic::new(&mesh, TrafficPattern::UniformRandom, 0.02, 4, 3).unwrap();
        let drained = sim.run_traffic(&mut traffic, 500, 10_000).unwrap();
        assert!(drained);
        let stats = sim.stats();
        assert_eq!(stats.messages_offered, stats.messages_delivered);
        assert!(stats.messages_delivered > 0);
    }

    #[test]
    fn saturated_hotspot_shows_unfairness_under_round_robin() {
        // Under saturation towards R(0,0), the regular round-robin mesh gives
        // far-away nodes much worse observed worst latencies than near nodes.
        let mesh = Mesh::square(4).unwrap();
        let report = Simulation::saturated_hotspot(
            &mesh,
            NocConfig::regular(1),
            Coord::from_row_col(0, 0),
            1,
            2_000,
            4_000,
        )
        .unwrap();
        assert!(!report.per_flow.is_empty());
        assert!(
            report.max() > 4 * report.min_of_max(),
            "max {} vs min-of-max {}",
            report.max(),
            report.min_of_max()
        );
    }

    #[test]
    fn waw_wap_reduces_worst_observed_latency_spread() {
        let mesh = Mesh::square(4).unwrap();
        let hotspot = Coord::from_row_col(0, 0);
        let regular =
            Simulation::saturated_hotspot(&mesh, NocConfig::regular(1), hotspot, 1, 2_000, 4_000)
                .unwrap();
        let proposed =
            Simulation::saturated_hotspot(&mesh, NocConfig::waw_wap(), hotspot, 1, 2_000, 4_000)
                .unwrap();
        // The spread between the worst- and best-served flows shrinks with
        // WaW+WaP (the core fairness claim of the paper).
        let regular_spread = regular.max() as f64 / regular.min_of_max().max(1) as f64;
        let proposed_spread = proposed.max() as f64 / proposed.min_of_max().max(1) as f64;
        assert!(
            proposed_spread < regular_spread,
            "proposed spread {proposed_spread} vs regular {regular_spread}"
        );
    }

    #[test]
    fn report_summaries() {
        let mut per_flow = HashMap::new();
        let mut a = LatencyStats::new();
        a.record(10);
        a.record(30);
        let mut b = LatencyStats::new();
        b.record(100);
        per_flow.insert(FlowId(0), a);
        per_flow.insert(FlowId(1), b);
        let report = SaturatedReport {
            measured_cycles: 100,
            per_flow,
        };
        assert_eq!(report.max(), 100);
        assert_eq!(report.min_of_max(), 30);
        assert!((report.mean_of_max() - 65.0).abs() < 1e-9);
    }
}
