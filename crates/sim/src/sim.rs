//! Simulation drivers: open-loop random traffic runs and the saturated
//! worst-contention runs used to measure observed traversal times.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use wnoc_core::flow::FlowSet;
use wnoc_core::{
    Coord, Error, FaultPlan, FlowId, Mesh, NocConfig, NodeId, Result, RetransmitPolicy,
};

use wnoc_core::ArrivalCurve;

use crate::arrival::{schedule_for, ScheduledMessage, ScheduledTraffic};
use crate::network::Network;
use crate::stats::{LatencyStats, NetworkStats};
use crate::traffic::RandomTraffic;

/// Per-flow observed traversal latencies of a saturated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturatedReport {
    /// Cycles simulated after warm-up.
    pub measured_cycles: u64,
    /// Observed traversal latency summary per flow.
    pub per_flow: HashMap<FlowId, LatencyStats>,
}

impl SaturatedReport {
    /// Flows with at least one recorded observation, in [`FlowId`] order.
    /// Iterating in id order keeps every derived quantity deterministic
    /// regardless of the hash map's internal ordering.
    fn observed_flows(&self) -> impl Iterator<Item = (FlowId, &LatencyStats)> {
        let mut ids: Vec<FlowId> = self
            .per_flow
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| (id, &self.per_flow[&id]))
    }

    /// Returns `true` if no flow recorded any observation.
    pub fn is_empty(&self) -> bool {
        self.per_flow.values().all(LatencyStats::is_empty)
    }

    /// Largest observed traversal latency across all flows, or 0 when nothing
    /// was observed.
    pub fn max(&self) -> u64 {
        self.observed_flows().map(|(_, s)| s.max).max().unwrap_or(0)
    }

    /// Smallest per-flow maximum (the best-served flow's worst observation),
    /// or 0 when nothing was observed.  Flows without observations are
    /// skipped, so an empty [`LatencyStats`] entry can no longer drag the
    /// minimum to zero.
    pub fn min_of_max(&self) -> u64 {
        self.observed_flows().map(|(_, s)| s.max).min().unwrap_or(0)
    }

    /// Mean of the per-flow maxima over flows with observations, or 0.0 when
    /// nothing was observed.
    pub fn mean_of_max(&self) -> f64 {
        let (count, total) = self
            .observed_flows()
            .fold((0u64, 0.0f64), |(c, t), (_, s)| (c + 1, t + s.max as f64));
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Worst observed traversal latency of one flow, if it was observed.
    pub fn flow_max(&self, flow: FlowId) -> Option<u64> {
        self.per_flow
            .get(&flow)
            .filter(|s| !s.is_empty())
            .map(|s| s.max)
    }

    /// `(flow, worst observed latency)` pairs in [`FlowId`] order — the
    /// per-flow maxima the conformance harness compares against analytic
    /// bounds.
    pub fn per_flow_max(&self) -> Vec<(FlowId, u64)> {
        self.observed_flows().map(|(id, s)| (id, s.max)).collect()
    }

    /// All observations of the run folded into one summary (uses
    /// [`LatencyStats::merge`] in flow-id order).
    pub fn overall(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for (_, stats) in self.observed_flows() {
            all.merge(stats);
        }
        all
    }
}

/// High-level simulation driver around [`Network`].
#[derive(Debug)]
pub struct Simulation {
    network: Network,
}

impl Simulation {
    /// Builds a simulation of `config` over `mesh`, with WaW weights (and flow
    /// ids) derived from `flows`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(mesh: Mesh, config: NocConfig, flows: &FlowSet) -> Result<Self> {
        Ok(Self {
            network: Network::new(mesh, config, flows)?,
        })
    }

    /// Builds a simulation whose router buffers follow `buffers` (see
    /// [`Network::with_buffers`]); every driver below works unchanged on the
    /// heterogeneous network.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or `buffers` does not
    /// cover `mesh`.
    pub fn with_buffers(
        mesh: Mesh,
        config: NocConfig,
        flows: &FlowSet,
        buffers: &wnoc_core::BufferConfig,
    ) -> Result<Self> {
        Ok(Self {
            network: Network::with_buffers(mesh, config, flows, buffers)?,
        })
    }

    /// Builds a simulation with both a buffer plan and a virtual-channel
    /// configuration (see [`Network::with_vcs`]); `VcConfig::single()` reduces
    /// to [`Simulation::with_buffers`] exactly.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or `buffers` does not
    /// cover `mesh`.
    pub fn with_vcs(
        mesh: Mesh,
        config: NocConfig,
        flows: &FlowSet,
        buffers: &wnoc_core::BufferConfig,
        vcs: wnoc_core::VcConfig,
    ) -> Result<Self> {
        Ok(Self {
            network: Network::with_vcs(mesh, config, flows, buffers, vcs)?,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Selects the scheduler of the underlying network (see
    /// [`Network::set_dense_kernel`]): the dense per-cycle reference is the
    /// differential-testing oracle for the event-horizon kernel.
    pub fn set_dense_kernel(&mut self, dense: bool) {
        self.network.set_dense_kernel(dense);
    }

    /// Mutable access to the underlying network (for custom drivers).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Installs a fault plan on the underlying network (see
    /// [`Network::install_fault_plan`]): scheduled link/router failures with
    /// fault-tolerant rerouting and NACK-based retransmission.
    ///
    /// # Errors
    ///
    /// Returns an error if a plan is already installed or the plan does not
    /// fit the mesh.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, policy: RetransmitPolicy) -> Result<()> {
        self.network.install_fault_plan(plan, policy)
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetworkStats {
        self.network.stats()
    }

    /// The shared open-loop driver: offers the generator's messages and steps
    /// the network for `cycles` cycles (no drain).
    fn drive_traffic(&mut self, traffic: &mut RandomTraffic, cycles: u64) -> Result<()> {
        for cycle in 0..cycles {
            for msg in traffic.messages_for_cycle(cycle) {
                self.network.offer(msg.src, msg.dst, msg.size_flits)?;
            }
            self.network.step();
        }
        Ok(())
    }

    /// Runs open-loop random traffic for `cycles` cycles and then drains the
    /// network (up to `drain_limit` extra cycles).  Returns `true` if the
    /// network drained completely.
    ///
    /// # Errors
    ///
    /// Returns an error if a generated message is invalid (should not happen
    /// for a well-formed generator).
    pub fn run_traffic(
        &mut self,
        traffic: &mut RandomTraffic,
        cycles: u64,
        drain_limit: u64,
    ) -> Result<bool> {
        self.drive_traffic(traffic, cycles)?;
        Ok(self.network.step_until_quiescent(drain_limit).is_ok())
    }

    /// Runs the network under *saturation* for the given flows: every flow's
    /// source NIC is kept back-logged so that, as in the worst-case assumptions
    /// of the paper, every contender is always requesting.  After `warmup`
    /// cycles the per-flow traversal latencies observed during `measure` cycles
    /// are reported.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow is invalid for the mesh.
    pub fn run_saturated(
        &mut self,
        flows: &FlowSet,
        message_flits: u32,
        warmup: u64,
        measure: u64,
    ) -> Result<SaturatedReport> {
        let backlog_flits = 8 * message_flits as usize;
        let pairs: Vec<(NodeId, NodeId)> = flows.flows().iter().map(|f| (f.src, f.dst)).collect();

        let mut baseline: HashMap<FlowId, LatencyStats> = HashMap::new();
        for phase in 0..2 {
            let cycles = if phase == 0 { warmup } else { measure };
            for _ in 0..cycles {
                for &(src, dst) in &pairs {
                    if self.network.nic_backlog(src) < backlog_flits {
                        self.network.offer(src, dst, message_flits)?;
                    }
                }
                self.network.step();
            }
            if phase == 0 {
                // Snapshot the stats at the end of warm-up so the report only
                // covers the measurement window.
                baseline = self.network.stats().traversal_latency.clone();
            }
        }

        let mut per_flow = HashMap::new();
        for (flow, stats) in &self.network.stats().traversal_latency {
            let before = baseline.get(flow).map(|s| s.count).unwrap_or(0);
            if stats.count > before {
                // Report the stats over the whole saturated run for simplicity;
                // the warm-up only serves to fill the network first.
                per_flow.insert(*flow, *stats);
            }
        }
        Ok(SaturatedReport {
            measured_cycles: measure,
            per_flow,
        })
    }

    /// Runs the *closed-loop probing* discipline used by the conformance
    /// harness: every source node keeps exactly one message outstanding at a
    /// time (cycling round-robin over its flows when it has several), offering
    /// the next one only after the previous was fully delivered.
    ///
    /// This matches the semantics of the analytic WCTT bounds, which cover a
    /// packet *from the head of its input buffer* through an adversarially
    /// backlogged network: with one outstanding message per source, a probe
    /// never queues behind earlier traffic of its own source — delay the
    /// bounds deliberately exclude — while all other sources still contend at
    /// every shared port.  (Under [`Simulation::run_saturated`] the traversal
    /// clock of a message starts while flits of its predecessor still occupy
    /// the local input buffer, so observed latencies there can exceed the
    /// per-packet bounds without falsifying them.)
    ///
    /// Runs for `cycles` cycles, then lets the network drain (up to
    /// `4 * cycles + 10_000` extra cycles) so in-flight probes complete.  The
    /// run is fully deterministic: no randomness is involved, so two calls on
    /// identically-built simulations return identical reports.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow is invalid for the mesh, and
    /// [`wnoc_core::Error::SimulationStalled`] if the network fails to drain
    /// within the budget — a deadlocked or livelocked network must fail a
    /// conformance run loudly, never pass it with the stuck probes silently
    /// missing from the report.
    pub fn run_closed_loop(
        &mut self,
        flows: &FlowSet,
        message_flits: u32,
        cycles: u64,
    ) -> Result<SaturatedReport> {
        // Group flows by source, in deterministic (node, flow) order.
        let mut by_src: Vec<(NodeId, Vec<FlowId>)> = Vec::new();
        for (id, flow) in flows.iter() {
            match by_src.iter_mut().find(|(src, _)| *src == flow.src) {
                Some((_, list)) => list.push(id),
                None => by_src.push((flow.src, vec![id])),
            }
        }
        by_src.sort_by_key(|(src, _)| *src);

        let mut next: Vec<usize> = vec![0; by_src.len()];
        // Probing slots with no outstanding message: every slot starts free,
        // and a slot is freed exactly once per delivery, so the list never
        // holds duplicates.  Scanning only freed slots (instead of every
        // source every cycle) keeps the driver O(deliveries).
        let mut free: Vec<u32> = (0..by_src.len() as u32).collect();
        // Source node index -> probing slot, so completing a delivery is an
        // array lookup instead of a hash probe (this loop runs every cycle
        // over every source).
        let mut slot_of_node: Vec<u32> = vec![u32::MAX; self.network.mesh().router_count()];
        for (slot, (src, _)) in by_src.iter().enumerate() {
            slot_of_node[src.index()] = slot as u32;
        }

        // The probing loop advances horizon to horizon instead of cycle to
        // cycle: probes are offered at the same absolute cycles as under
        // per-cycle stepping (a source only becomes free at a delivery, and
        // deliveries only happen at stepped cycles), so the reports are
        // bit-for-bit identical while inert stretches — and whole lone-worm
        // flights — are skipped in closed form.
        let start = self.network.cycle();
        let limit = start + cycles;
        // Reused across iterations so polling deliveries never reallocates.
        let mut arrived = Vec::new();
        while self.network.cycle() < limit {
            if !free.is_empty() {
                // Ascending slot order matches the dense driver's scan.
                if free.len() > 1 {
                    free.sort_unstable();
                }
                for &slot in &free {
                    let slot = slot as usize;
                    let (_, list) = &by_src[slot];
                    // A fault activation may have severed some of this
                    // source's flows: skip round-robin to the next reachable
                    // one.  A slot whose every flow is severed retires — no
                    // offer is outstanding, so no delivery ever re-frees it.
                    for _ in 0..list.len() {
                        let flow = flows
                            .flow(list[next[slot] % list.len()])
                            .expect("flow id from the same set");
                        next[slot] += 1;
                        match self.network.offer(flow.src, flow.dst, message_flits) {
                            Ok(_) => break,
                            Err(Error::Unreachable { .. }) => continue,
                            Err(other) => return Err(other),
                        }
                    }
                }
                free.clear();
            }
            if !self.network.try_worm_fast_forward(limit) {
                let horizon = match self.network.next_horizon() {
                    Some(horizon) => horizon.min(limit),
                    // Nothing will ever happen again (deadlock with every
                    // probe outstanding): the dense kernel would idle to the
                    // window's end and fail in the drain below.
                    None => limit,
                };
                self.network.advance_to(horizon);
            }
            self.network.drain_delivered_into(&mut arrived);
            for delivered in arrived.drain(..) {
                let slot = slot_of_node[delivered.src.index()];
                if slot != u32::MAX {
                    free.push(slot);
                }
            }
        }
        self.network.step_until_quiescent(4 * cycles + 10_000)?;
        Ok(SaturatedReport {
            measured_cycles: cycles,
            per_flow: self.network.stats().traversal_latency.clone(),
        })
    }

    /// Executes an open-loop [`ScheduledTraffic`]: every message is offered
    /// at exactly its scheduled release cycle, regardless of network state,
    /// and the network then drains completely.
    ///
    /// Unlike every closed-loop driver the reported per-flow statistics are
    /// **end-to-end message latencies** (offer to delivery of the last flit),
    /// not traversal latencies: an open-loop release can queue behind its own
    /// flow's backlog in the source NIC, and that self-queueing is precisely
    /// the delay bursty analysis must cover.  The driver advances horizon to
    /// horizon between releases, so reports are bit-for-bit identical under
    /// the event-horizon and dense kernels.
    ///
    /// # Errors
    ///
    /// Returns an error if a scheduled message is invalid for the mesh, and
    /// [`wnoc_core::Error::SimulationStalled`] if the network fails to drain
    /// within `4 * horizon + 10_000` cycles after the last release.
    pub fn run_schedule(&mut self, schedule: &ScheduledTraffic) -> Result<SaturatedReport> {
        let start = self.network.cycle();
        let mut index = 0;
        let messages = schedule.messages();
        while index < messages.len() {
            let target = start + messages[index].cycle;
            while self.network.cycle() < target {
                if self.network.try_worm_fast_forward(target) {
                    continue;
                }
                let horizon = match self.network.next_horizon() {
                    Some(horizon) => horizon.min(target),
                    // Nothing in flight: jump straight to the release.
                    None => target,
                };
                self.network.advance_to(horizon);
            }
            while index < messages.len() && start + messages[index].cycle == target {
                let msg = &messages[index];
                self.network.offer(msg.src, msg.dst, msg.size_flits)?;
                index += 1;
            }
        }
        self.network
            .step_until_quiescent(4 * schedule.horizon() + 10_000)?;
        Ok(SaturatedReport {
            measured_cycles: schedule.horizon(),
            per_flow: self.network.stats().message_latency.clone(),
        })
    }

    /// Runs every flow of `flows` as an open-loop [`ArrivalCurve`] source
    /// over a `cycles`-cycle release window: per flow, up to `b` messages
    /// release back to back followed by the sustained gap, with optional
    /// seeded inter-arrival jitter (see [`schedule_for`]; flow index = jitter
    /// lane, so the run is deterministic per `seed`).
    ///
    /// Reported statistics are end-to-end message latencies — see
    /// [`Simulation::run_schedule`] for why bursty runs must charge
    /// self-queueing, which the closed-loop probing discipline excludes by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow is invalid for the mesh, and
    /// [`wnoc_core::Error::SimulationStalled`] if the network fails to drain
    /// after the release window — an unstable curve (sustained rate above
    /// the service rate) surfaces as this error rather than as a silently
    /// truncated report.
    pub fn run_bursty(
        &mut self,
        flows: &FlowSet,
        message_flits: u32,
        curve: &ArrivalCurve,
        cycles: u64,
        seed: u64,
    ) -> Result<SaturatedReport> {
        let mut messages = Vec::new();
        for (id, flow) in flows.iter() {
            for cycle in schedule_for(curve, cycles, seed, id.0 as u64) {
                messages.push(ScheduledMessage {
                    cycle,
                    src: flow.src,
                    dst: flow.dst,
                    size_flits: message_flits,
                });
            }
        }
        let report = self.run_schedule(&ScheduledTraffic::new(messages))?;
        Ok(SaturatedReport {
            measured_cycles: cycles,
            ..report
        })
    }

    /// Runs open-loop random traffic like [`Simulation::run_traffic`] but
    /// returns the per-flow traversal summary as a [`SaturatedReport`] — the
    /// deterministic re-run hook: rebuilding the simulation and the generator
    /// with the same `rand_chacha` seed reproduces the report exactly.
    ///
    /// # Errors
    ///
    /// Returns an error if a generated message is invalid, and
    /// [`wnoc_core::Error::SimulationStalled`] if the network fails to drain
    /// within `drain_limit` — undelivered messages are invisible to the
    /// per-flow statistics, so a partial drain must not masquerade as a
    /// complete report.
    pub fn run_traffic_report(
        &mut self,
        traffic: &mut RandomTraffic,
        cycles: u64,
        drain_limit: u64,
    ) -> Result<SaturatedReport> {
        self.drive_traffic(traffic, cycles)?;
        self.network.step_until_quiescent(drain_limit)?;
        Ok(SaturatedReport {
            measured_cycles: cycles,
            per_flow: self.network.stats().traversal_latency.clone(),
        })
    }

    /// Convenience: measures the observed per-flow worst traversal latencies of
    /// the all-to-one hotspot scenario (every node to `hotspot`) under
    /// saturation.
    ///
    /// # Errors
    ///
    /// Returns an error if `hotspot` lies outside the mesh.
    pub fn saturated_hotspot(
        mesh: Mesh,
        config: NocConfig,
        hotspot: Coord,
        message_flits: u32,
        warmup: u64,
        measure: u64,
    ) -> Result<SaturatedReport> {
        let flows = FlowSet::all_to_one(&mesh, hotspot)?;
        let mut sim = Simulation::new(mesh, config, &flows)?;
        sim.run_saturated(&flows, message_flits, warmup, measure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;

    #[test]
    fn light_random_traffic_drains() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_all(&mesh).unwrap();
        let mut sim = Simulation::new(mesh, NocConfig::regular(4), &flows).unwrap();
        let mut traffic =
            RandomTraffic::new(mesh, TrafficPattern::UniformRandom, 0.02, 4, 3).unwrap();
        let drained = sim.run_traffic(&mut traffic, 500, 10_000).unwrap();
        assert!(drained);
        let stats = sim.stats();
        assert_eq!(stats.messages_offered, stats.messages_delivered);
        assert!(stats.messages_delivered > 0);
    }

    #[test]
    fn saturated_hotspot_shows_unfairness_under_round_robin() {
        // Under saturation towards R(0,0), the regular round-robin mesh gives
        // far-away nodes much worse observed worst latencies than near nodes.
        let mesh = Mesh::square(4).unwrap();
        let report = Simulation::saturated_hotspot(
            mesh,
            NocConfig::regular(1),
            Coord::from_row_col(0, 0),
            1,
            2_000,
            4_000,
        )
        .unwrap();
        assert!(!report.per_flow.is_empty());
        assert!(
            report.max() > 4 * report.min_of_max(),
            "max {} vs min-of-max {}",
            report.max(),
            report.min_of_max()
        );
    }

    #[test]
    fn waw_wap_reduces_worst_observed_latency_spread() {
        let mesh = Mesh::square(4).unwrap();
        let hotspot = Coord::from_row_col(0, 0);
        let regular =
            Simulation::saturated_hotspot(mesh, NocConfig::regular(1), hotspot, 1, 2_000, 4_000)
                .unwrap();
        let proposed =
            Simulation::saturated_hotspot(mesh, NocConfig::waw_wap(), hotspot, 1, 2_000, 4_000)
                .unwrap();
        // The spread between the worst- and best-served flows shrinks with
        // WaW+WaP (the core fairness claim of the paper).
        let regular_spread = regular.max() as f64 / regular.min_of_max().max(1) as f64;
        let proposed_spread = proposed.max() as f64 / proposed.min_of_max().max(1) as f64;
        assert!(
            proposed_spread < regular_spread,
            "proposed spread {proposed_spread} vs regular {regular_spread}"
        );
    }

    #[test]
    fn closed_loop_is_deterministic_and_bounded_by_saturated() {
        let mesh = Mesh::square(3).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let run = || {
            let mut sim = Simulation::new(mesh, NocConfig::regular(1), &flows).unwrap();
            sim.run_closed_loop(&flows, 1, 2_000).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "closed-loop runs must be reproducible");
        assert!(!a.is_empty());
        // Every flow keeps probing, so every flow is observed.
        assert_eq!(a.per_flow_max().len(), flows.len());
        // Self-queueing is excluded, so the worst observation sits below the
        // saturated run's (which includes input-buffer queueing delay).
        let mut sat = Simulation::new(mesh, NocConfig::regular(1), &flows).unwrap();
        let saturated = sat.run_saturated(&flows, 1, 1_000, 2_000).unwrap();
        assert!(
            a.max() <= saturated.max(),
            "{} vs {}",
            a.max(),
            saturated.max()
        );
    }

    #[test]
    fn closed_loop_handles_multiple_flows_per_source() {
        let mesh = Mesh::square(3).unwrap();
        // Both directions between every node and R(0,0): each non-memory node
        // sources one flow, the memory node sources eight.
        let flows = FlowSet::to_and_from_endpoints(&mesh, &[Coord::from_row_col(0, 0)]).unwrap();
        let mut sim = Simulation::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
        let report = sim.run_closed_loop(&flows, 1, 4_000).unwrap();
        // The memory node cycles through its flows, so all of them are hit.
        assert_eq!(report.per_flow_max().len(), flows.len());
    }

    #[test]
    fn traffic_report_reproduces_with_the_same_seed() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_all(&mesh).unwrap();
        let run = |seed: u64| {
            let mut sim = Simulation::new(mesh, NocConfig::regular(4), &flows).unwrap();
            let mut traffic =
                RandomTraffic::new(mesh, TrafficPattern::UniformRandom, 0.05, 4, seed).unwrap();
            sim.run_traffic_report(&mut traffic, 400, 10_000).unwrap()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn report_edge_cases() {
        // Fully empty report.
        let empty = SaturatedReport {
            measured_cycles: 10,
            per_flow: HashMap::new(),
        };
        assert!(empty.is_empty());
        assert_eq!(empty.max(), 0);
        assert_eq!(empty.min_of_max(), 0);
        assert_eq!(empty.mean_of_max(), 0.0);
        assert!(empty.per_flow_max().is_empty());
        assert_eq!(empty.flow_max(FlowId(0)), None);
        assert!(empty.overall().is_empty());

        // A flow entry without samples must not drag minima or means to zero.
        let mut per_flow = HashMap::new();
        per_flow.insert(FlowId(0), LatencyStats::new());
        let mut seen = LatencyStats::new();
        seen.record(40);
        per_flow.insert(FlowId(1), seen);
        let report = SaturatedReport {
            measured_cycles: 10,
            per_flow,
        };
        assert!(!report.is_empty());
        assert_eq!(report.min_of_max(), 40);
        assert_eq!(report.mean_of_max(), 40.0);
        assert_eq!(report.per_flow_max(), vec![(FlowId(1), 40)]);
        assert_eq!(report.flow_max(FlowId(0)), None);
        assert_eq!(report.flow_max(FlowId(1)), Some(40));
        assert_eq!(report.overall().count, 1);
    }

    #[test]
    fn report_summaries() {
        let mut per_flow = HashMap::new();
        let mut a = LatencyStats::new();
        a.record(10);
        a.record(30);
        let mut b = LatencyStats::new();
        b.record(100);
        per_flow.insert(FlowId(0), a);
        per_flow.insert(FlowId(1), b);
        let report = SaturatedReport {
            measured_cycles: 100,
            per_flow,
        };
        assert_eq!(report.max(), 100);
        assert_eq!(report.min_of_max(), 30);
        assert!((report.mean_of_max() - 65.0).abs() < 1e-9);
    }
}
