//! The flit arena: one contiguous slab owning every in-flight flit.
//!
//! The execution kernel never moves [`Flit`] values around the network.
//! Flits are allocated into the arena when a NIC packetizes a message and
//! freed when they are ejected at their destination; in between, every queue
//! in the system — router input buffers, link pipelines, NIC injection
//! queues — holds 4-byte [`FlitId`] handles instead of 64-byte flit structs.
//!
//! Slots are recycled through an internal free list, so after a warm-up
//! period in which the slab grows to the peak number of concurrently live
//! flits, allocation and release are pointer-bump operations on preallocated
//! memory: the steady-state simulation loop performs **zero heap
//! allocations** (enforced by the `zero_alloc` integration test with a
//! counting global allocator).

use wnoc_core::Flit;

/// Handle to a flit stored in a [`FlitArena`].
///
/// Handles are plain indices: they are `Copy`, 4 bytes, and only meaningful
/// for the arena that issued them.  A slot is reused after its flit is
/// [freed](FlitArena::free), so a stale handle (kept across `free`) may
/// observe an unrelated flit — queues in the simulator hold each handle in
/// exactly one place, which rules this out by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitId(u32);

impl FlitId {
    /// The arena slot index behind this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A slab allocator for [`Flit`]s with index handles and a free list.
#[derive(Debug, Default)]
pub struct FlitArena {
    slots: Vec<Flit>,
    free: Vec<u32>,
}

impl FlitArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena with room for `capacity` flits before it regrows.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Number of live (allocated and not yet freed) flits.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Returns `true` when no flit is live.
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }

    /// Total slots owned by the arena (the high-water mark of live flits).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `flit` and returns its handle, reusing a freed slot when one is
    /// available.
    pub fn alloc(&mut self, flit: Flit) -> FlitId {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = flit;
            return FlitId(slot);
        }
        let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 live flits");
        self.slots.push(flit);
        FlitId(slot)
    }

    /// The flit behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds (a handle from another arena).
    pub fn get(&self, id: FlitId) -> &Flit {
        &self.slots[id.index()]
    }

    /// Mutable access to the flit behind `id` (the NIC stamps injection
    /// cycles in place).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn get_mut(&mut self, id: FlitId) -> &mut Flit {
        &mut self.slots[id.index()]
    }

    /// Releases the slot behind `id` for reuse.
    ///
    /// The caller must hold the only copy of the handle; the slot's contents
    /// stay untouched until the next [`FlitArena::alloc`] reuses it.
    pub fn free(&mut self, id: FlitId) {
        debug_assert!(
            !self.free.contains(&(id.index() as u32)),
            "double free of flit slot {}",
            id.index()
        );
        self.free.push(id.index() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::{FlitKind, FlowId, MessageId, NodeId, PacketId};

    fn flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(1),
            message: MessageId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            kind: FlitKind::Body,
            seq,
            msg_created: 0,
            injected: 0,
        }
    }

    #[test]
    fn alloc_get_roundtrip() {
        let mut arena = FlitArena::new();
        let a = arena.alloc(flit(7));
        let b = arena.alloc(flit(9));
        assert_eq!(arena.get(a).seq, 7);
        assert_eq!(arena.get(b).seq, 9);
        assert_eq!(arena.live(), 2);
        assert!(!arena.is_empty());
    }

    #[test]
    fn freed_slots_are_reused_before_growing() {
        let mut arena = FlitArena::new();
        let a = arena.alloc(flit(0));
        let _b = arena.alloc(flit(1));
        arena.free(a);
        assert_eq!(arena.live(), 1);
        let c = arena.alloc(flit(2));
        assert_eq!(c.index(), a.index(), "freed slot must be recycled");
        assert_eq!(arena.capacity(), 2, "slab must not grow past the peak");
        assert_eq!(arena.get(c).seq, 2);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena = FlitArena::new();
        let id = arena.alloc(flit(0));
        arena.get_mut(id).injected = 42;
        assert_eq!(arena.get(id).injected, 42);
    }

    #[test]
    fn empty_after_all_freed() {
        let mut arena = FlitArena::with_capacity(4);
        let ids: Vec<FlitId> = (0..4).map(|i| arena.alloc(flit(i))).collect();
        for id in ids {
            arena.free(id);
        }
        assert!(arena.is_empty());
        assert_eq!(arena.capacity(), 4);
    }
}
