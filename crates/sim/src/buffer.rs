//! Bounded flit FIFOs used as router input buffers.

use std::collections::VecDeque;

use wnoc_core::Flit;

/// A bounded FIFO of flits (one router input buffer).
///
/// Capacity is enforced by the credit-based flow control of the upstream
/// router, but the buffer itself also refuses to overflow so that a flow
/// control bug surfaces as an explicit error instead of silent flit loss.
#[derive(Debug, Clone)]
pub struct FlitBuffer {
    flits: VecDeque<Flit>,
    capacity: usize,
}

impl FlitBuffer {
    /// Creates a buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-depth buffer cannot carry traffic).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "input buffers must hold at least one flit");
        Self {
            flits: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of flits the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered flits.
    pub fn len(&self) -> usize {
        self.flits.len()
    }

    /// Returns `true` if no flits are buffered.
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
    }

    /// Returns `true` if the buffer cannot accept another flit.
    pub fn is_full(&self) -> bool {
        self.flits.len() >= self.capacity
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.flits.len()
    }

    /// The flit at the head of the FIFO, if any.
    pub fn front(&self) -> Option<&Flit> {
        self.flits.front()
    }

    /// Appends a flit.
    ///
    /// Returns `Err(flit)` if the buffer is full (flow-control violation).
    pub fn push(&mut self, flit: Flit) -> Result<(), Flit> {
        if self.is_full() {
            return Err(flit);
        }
        self.flits.push_back(flit);
        Ok(())
    }

    /// Removes and returns the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.flits.pop_front()
    }

    /// Iterates over buffered flits from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &Flit> {
        self.flits.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::{FlitKind, FlowId, MessageId, NodeId, PacketId};

    fn flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(1),
            message: MessageId(1),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            kind: FlitKind::Body,
            seq,
            msg_created: 0,
            injected: 0,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut buf = FlitBuffer::new(4);
        for i in 0..4 {
            buf.push(flit(i)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(buf.pop().unwrap().seq, i);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut buf = FlitBuffer::new(2);
        assert!(buf.push(flit(0)).is_ok());
        assert!(buf.push(flit(1)).is_ok());
        assert!(buf.is_full());
        assert_eq!(buf.free_slots(), 0);
        assert!(buf.push(flit(2)).is_err());
        buf.pop();
        assert!(buf.push(flit(2)).is_ok());
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut buf = FlitBuffer::new(2);
        buf.push(flit(7)).unwrap();
        assert_eq!(buf.front().unwrap().seq, 7);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_capacity_panics() {
        let _ = FlitBuffer::new(0);
    }

    #[test]
    fn iter_matches_order() {
        let mut buf = FlitBuffer::new(3);
        for i in 0..3 {
            buf.push(flit(i)).unwrap();
        }
        let seqs: Vec<u32> = buf.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
