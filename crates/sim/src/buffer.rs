//! Bounded flit-id FIFOs used as router input buffers.

use crate::arena::FlitId;

/// A fixed-capacity ring buffer of [`FlitId`]s (one router input buffer).
///
/// The storage is allocated once at construction and never regrows: capacity
/// is enforced by the credit-based flow control of the upstream router, but
/// the buffer itself also refuses to overflow so that a flow control bug
/// surfaces as an explicit error instead of silent flit loss.
///
/// Flits themselves live in the [`FlitArena`](crate::arena::FlitArena); the
/// buffer holds 4-byte handles, which keeps the per-router footprint small
/// and the push/pop hot path free of copies and allocations.
#[derive(Debug, Clone)]
pub struct FlitBuffer {
    slots: Box<[Option<FlitId>]>,
    head: usize,
    len: usize,
}

impl FlitBuffer {
    /// Creates a buffer holding at most `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-depth buffer cannot carry traffic).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "input buffers must hold at least one flit");
        Self {
            slots: vec![None; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of flits the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of buffered flits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no flits are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if the buffer cannot accept another flit.
    pub fn is_full(&self) -> bool {
        self.len >= self.slots.len()
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.len
    }

    /// The flit id at the head of the FIFO, if any.
    pub fn front(&self) -> Option<FlitId> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head]
        }
    }

    /// Appends a flit id.
    ///
    /// Returns `Err(id)` if the buffer is full (flow-control violation).
    pub fn push(&mut self, id: FlitId) -> Result<(), FlitId> {
        if self.is_full() {
            return Err(id);
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = Some(id);
        self.len += 1;
        Ok(())
    }

    /// Removes and returns the head flit id.
    pub fn pop(&mut self) -> Option<FlitId> {
        if self.len == 0 {
            return None;
        }
        let id = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        id
    }

    /// Iterates over buffered flit ids from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = FlitId> + '_ {
        (0..self.len).filter_map(move |offset| self.slots[(self.head + offset) % self.slots.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::FlitArena;
    use wnoc_core::{Flit, FlitKind, FlowId, MessageId, NodeId, PacketId};

    fn ids(arena: &mut FlitArena, count: u32) -> Vec<FlitId> {
        (0..count)
            .map(|seq| {
                arena.alloc(Flit {
                    packet: PacketId(1),
                    message: MessageId(1),
                    flow: FlowId(0),
                    src: NodeId(0),
                    dst: NodeId(1),
                    kind: FlitKind::Body,
                    seq,
                    msg_created: 0,
                    injected: 0,
                })
            })
            .collect()
    }

    #[test]
    fn fifo_order_preserved() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 4);
        let mut buf = FlitBuffer::new(4);
        for &id in &handles {
            buf.push(id).unwrap();
        }
        for (i, &id) in handles.iter().enumerate() {
            let popped = buf.pop().unwrap();
            assert_eq!(popped, id);
            assert_eq!(arena.get(popped).seq, i as u32);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 3);
        let mut buf = FlitBuffer::new(2);
        assert!(buf.push(handles[0]).is_ok());
        assert!(buf.push(handles[1]).is_ok());
        assert!(buf.is_full());
        assert_eq!(buf.free_slots(), 0);
        assert_eq!(buf.push(handles[2]), Err(handles[2]));
        buf.pop();
        assert!(buf.push(handles[2]).is_ok());
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 1);
        let mut buf = FlitBuffer::new(2);
        buf.push(handles[0]).unwrap();
        assert_eq!(buf.front(), Some(handles[0]));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_capacity_panics() {
        let _ = FlitBuffer::new(0);
    }

    #[test]
    fn iter_matches_order_and_wraps() {
        let mut arena = FlitArena::new();
        let handles = ids(&mut arena, 5);
        let mut buf = FlitBuffer::new(3);
        // Advance the ring so iteration must wrap around the backing slice.
        buf.push(handles[0]).unwrap();
        buf.push(handles[1]).unwrap();
        buf.pop();
        buf.pop();
        for &id in &handles[2..5] {
            buf.push(id).unwrap();
        }
        let got: Vec<FlitId> = buf.iter().collect();
        assert_eq!(got, handles[2..5]);
    }
}
