//! Network interface controller (NIC): packetizes node messages and injects
//! their flits into the local port of the attached router.
//!
//! This is where WaP lives in hardware: the same NIC logic produces either one
//! packet per message (regular packetization) or a train of single-flit
//! packets with replicated control information (WaP), depending on the
//! configured [`PacketizationPolicy`](wnoc_core::PacketizationPolicy).
//!
//! Flits are allocated into the network's [`FlitArena`] at offer time; the
//! injection queue holds [`FlitId`] handles only.
//!
//! Under the event-horizon scheduler a NIC is *actable* — worth visiting —
//! exactly while it is back-logged and the router's local input buffer has a
//! free slot: its next injection-eligible cycle is either the next cycle
//! (slot available) or the cycle the router next forwards a flit out of the
//! local buffer, which re-lists it with dense-kernel timing.

use std::collections::VecDeque;

use wnoc_core::packetization::MessageDescriptor;
use wnoc_core::{Cycle, FlowId, MessageId, NodeId, Packetizer};

use crate::arena::{FlitArena, FlitId};

/// Metadata the network needs to track a message end to end.
#[derive(Debug, Clone, Copy)]
pub struct OfferedMessage {
    /// The message id assigned by the NIC.
    pub id: MessageId,
    /// Flow this message belongs to.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle the message was handed to the NIC.
    pub created: Cycle,
    /// Number of packets the message was sliced into.
    pub packets: u32,
    /// Total number of flits on the wire.
    pub wire_flits: u32,
}

/// The per-node network interface.
#[derive(Debug)]
pub struct Nic {
    node: NodeId,
    packetizer: Packetizer,
    next_message: u64,
    /// Flits awaiting injection, in order.
    pending: VecDeque<FlitId>,
    /// Number of messages whose flits have not yet all been injected.
    pending_messages: VecDeque<(MessageId, u32)>,
    flits_injected: u64,
    messages_offered: u64,
}

impl Nic {
    /// Creates the NIC of `node` with the given packetizer.
    pub fn new(node: NodeId, packetizer: Packetizer) -> Self {
        Self {
            node,
            packetizer,
            next_message: 0,
            pending: VecDeque::new(),
            pending_messages: VecDeque::new(),
            flits_injected: 0,
            messages_offered: 0,
        }
    }

    /// The node this NIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of flits waiting to be injected.
    pub fn pending_flits(&self) -> usize {
        self.pending.len()
    }

    /// Number of messages with at least one flit still waiting for injection.
    pub fn pending_messages(&self) -> usize {
        self.pending_messages.len()
    }

    /// Total messages offered to this NIC so far.
    pub fn messages_offered(&self) -> u64 {
        self.messages_offered
    }

    /// Total flits injected into the router so far.
    pub fn flits_injected(&self) -> u64 {
        self.flits_injected
    }

    /// Returns `true` if the NIC has nothing left to inject.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Accepts a message for transmission: packetizes it according to the
    /// configured policy, allocates its flits into `arena` and queues their
    /// handles for injection.
    ///
    /// # Panics
    ///
    /// Panics if `size_flits` is zero (callers validate message sizes).
    pub fn offer(
        &mut self,
        arena: &mut FlitArena,
        dst: NodeId,
        flow: FlowId,
        size_flits: u32,
        now: Cycle,
    ) -> OfferedMessage {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        self.messages_offered += 1;
        self.enqueue(arena, id, dst, flow, size_flits, now)
    }

    /// Re-queues a message purged by a fault epoch flush under its **original
    /// id** — a retransmission is the same message going around again, so the
    /// id counter and the offered-message count stay untouched.  `now` is the
    /// release cycle; the network's tracker keeps the original creation cycle
    /// for end-to-end latency.
    ///
    /// # Panics
    ///
    /// Panics if `size_flits` is zero (callers validate message sizes).
    pub fn reoffer(
        &mut self,
        arena: &mut FlitArena,
        dst: NodeId,
        flow: FlowId,
        size_flits: u32,
        now: Cycle,
        id: MessageId,
    ) -> OfferedMessage {
        self.enqueue(arena, id, dst, flow, size_flits, now)
    }

    /// Fault-epoch flush: hands every queued flit to `purged` and forgets
    /// the queued messages (the network NACKs them from its tracker).
    pub fn purge_into(&mut self, purged: &mut Vec<FlitId>) {
        purged.extend(self.pending.drain(..));
        self.pending_messages.clear();
    }

    /// Every flit awaiting injection (fault diagnostics: classifying a
    /// stalled network as partitioned vs deadlocked).
    pub fn pending_ids(&self) -> impl Iterator<Item = FlitId> + '_ {
        self.pending.iter().copied()
    }

    fn enqueue(
        &mut self,
        arena: &mut FlitArena,
        id: MessageId,
        dst: NodeId,
        flow: FlowId,
        size_flits: u32,
        now: Cycle,
    ) -> OfferedMessage {
        assert!(size_flits > 0, "messages must contain at least one flit");
        let descriptor = MessageDescriptor {
            id,
            flow,
            src: self.node,
            dst,
            regular_flits: size_flits,
            created: now,
        };
        let packets = self
            .packetizer
            .packetize(&descriptor)
            .expect("non-empty message");
        let packet_count = packets.len() as u32;
        let mut wire_flits = 0;
        for packet in &packets {
            wire_flits += packet.length_flits;
            for flit in packet.to_flits() {
                self.pending.push_back(arena.alloc(flit));
            }
        }
        self.pending_messages.push_back((id, wire_flits));
        OfferedMessage {
            id,
            flow,
            src: self.node,
            dst,
            created: now,
            packets: packet_count,
            wire_flits,
        }
    }

    /// The next flit awaiting injection, if any.
    pub fn peek(&self) -> Option<FlitId> {
        self.pending.front().copied()
    }

    /// Removes and returns the next flit to inject, stamping it with the
    /// injection cycle.
    pub fn inject(&mut self, arena: &mut FlitArena, now: Cycle) -> Option<FlitId> {
        let id = self.pending.pop_front()?;
        arena.get_mut(id).injected = now;
        self.flits_injected += 1;
        if let Some(front) = self.pending_messages.front_mut() {
            front.1 -= 1;
            if front.1 == 0 {
                self.pending_messages.pop_front();
            }
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::packetization::{PacketizationPolicy, PhitGeometry};
    use wnoc_core::FlitKind;

    fn nic(policy: PacketizationPolicy) -> Nic {
        Nic::new(
            NodeId(3),
            Packetizer::new(policy, PhitGeometry::PAPER).unwrap(),
        )
    }

    #[test]
    fn regular_nic_queues_one_packet_per_message() {
        let mut arena = FlitArena::new();
        let mut n = nic(PacketizationPolicy::regular_l4());
        let offered = n.offer(&mut arena, NodeId(0), FlowId(1), 4, 100);
        assert_eq!(offered.packets, 1);
        assert_eq!(offered.wire_flits, 4);
        assert_eq!(n.pending_flits(), 4);
        assert_eq!(n.pending_messages(), 1);
        assert_eq!(arena.live(), 4);
    }

    #[test]
    fn wap_nic_slices_and_replicates_headers() {
        let mut arena = FlitArena::new();
        let mut n = nic(PacketizationPolicy::wap());
        let offered = n.offer(&mut arena, NodeId(0), FlowId(1), 4, 100);
        assert_eq!(offered.packets, 5);
        assert_eq!(offered.wire_flits, 5);
        assert_eq!(n.pending_flits(), 5);
        // Every queued flit is a complete single-flit packet.
        while let Some(id) = n.inject(&mut arena, 101) {
            let f = arena.get(id);
            assert_eq!(f.kind, FlitKind::HeadTail);
            assert_eq!(f.injected, 101);
            assert_eq!(f.msg_created, 100);
        }
        assert!(n.is_drained());
        assert_eq!(n.flits_injected(), 5);
    }

    #[test]
    fn injection_preserves_message_order() {
        let mut arena = FlitArena::new();
        let mut n = nic(PacketizationPolicy::regular_l4());
        n.offer(&mut arena, NodeId(0), FlowId(0), 2, 0);
        n.offer(&mut arena, NodeId(1), FlowId(1), 2, 0);
        let first: Vec<FlitId> = (0..2).map(|_| n.inject(&mut arena, 1).unwrap()).collect();
        let second: Vec<FlitId> = (0..2).map(|_| n.inject(&mut arena, 2).unwrap()).collect();
        assert!(first.iter().all(|&id| arena.get(id).dst == NodeId(0)));
        assert!(second.iter().all(|&id| arena.get(id).dst == NodeId(1)));
        assert_eq!(n.pending_messages(), 0);
    }

    #[test]
    fn pending_message_count_tracks_partial_injection() {
        let mut arena = FlitArena::new();
        let mut n = nic(PacketizationPolicy::regular_l4());
        n.offer(&mut arena, NodeId(0), FlowId(0), 4, 0);
        assert_eq!(n.pending_messages(), 1);
        n.inject(&mut arena, 1);
        n.inject(&mut arena, 2);
        assert_eq!(n.pending_messages(), 1);
        n.inject(&mut arena, 3);
        n.inject(&mut arena, 4);
        assert_eq!(n.pending_messages(), 0);
        assert_eq!(n.messages_offered(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_size_message_panics() {
        let mut arena = FlitArena::new();
        let mut n = nic(PacketizationPolicy::wap());
        n.offer(&mut arena, NodeId(0), FlowId(0), 0, 0);
    }
}
