//! The complete NoC: routers, links, NICs and end-to-end message tracking.

use std::collections::HashMap;

use wnoc_core::flow::FlowSet;
use wnoc_core::packetization::Packetizer;
use wnoc_core::weights::WeightTable;
use wnoc_core::{
    Coord, Cycle, Direction, Error, Flit, FlowId, Mesh, MessageId, NocConfig, NodeId, Port, Result,
};

use crate::link::SimLink;
use crate::nic::Nic;
use crate::router::Router;
use crate::stats::NetworkStats;

/// Progress of one message through the network.
#[derive(Debug, Clone, Copy)]
struct MessageProgress {
    flow: FlowId,
    dst: NodeId,
    created: Cycle,
    first_injection: Option<Cycle>,
    expected_flits: u32,
    received_flits: u32,
}

/// A message that has been completely delivered to its destination NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Message id (unique per source NIC).
    pub message: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow the message belonged to.
    pub flow: FlowId,
    /// Cycle the message was offered to the source NIC.
    pub created: Cycle,
    /// Cycle its last flit was ejected at the destination.
    pub delivered: Cycle,
}

/// A cycle-accurate wormhole mesh NoC.
///
/// The network is driven externally: callers offer messages with
/// [`Network::offer`] and advance time with [`Network::step`]; statistics are
/// available at any point through [`Network::stats`].
///
/// # Examples
///
/// ```
/// use wnoc_core::{Coord, NocConfig, Mesh};
/// use wnoc_core::flow::FlowSet;
/// use wnoc_sim::network::Network;
///
/// let mesh = Mesh::square(4)?;
/// let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0))?;
/// let mut noc = Network::new(&mesh, NocConfig::waw_wap(), &flows)?;
/// let src = mesh.node_id(Coord::from_row_col(3, 3))?;
/// let dst = mesh.node_id(Coord::from_row_col(0, 0))?;
/// noc.offer(src, dst, 4)?;
/// noc.run_until_drained(10_000);
/// assert_eq!(noc.stats().messages_delivered, 1);
/// # Ok::<(), wnoc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct Network {
    mesh: Mesh,
    config: NocConfig,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    /// Outgoing link of each (router, direction) pair.
    links: HashMap<(Coord, Direction), SimLink>,
    /// Flow id lookup for (src, dst) pairs, extended on demand.
    flow_ids: HashMap<(NodeId, NodeId), FlowId>,
    next_flow: usize,
    tracker: HashMap<(NodeId, MessageId), MessageProgress>,
    delivered: Vec<Delivered>,
    stats: NetworkStats,
    cycle: Cycle,
}

impl Network {
    /// Builds a network over `mesh` with the given design configuration.
    ///
    /// `flows` describes the platform's communication flows; it is used to
    /// derive the WaW arbitration weights (and pre-registers flow ids for
    /// statistics).  Under round-robin arbitration the weights are ignored but
    /// the flow ids are still registered.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid.
    pub fn new(mesh: &Mesh, config: NocConfig, flows: &FlowSet) -> Result<Self> {
        config.validate()?;
        let weights = WeightTable::from_flow_set(flows);
        let mut routers = Vec::with_capacity(mesh.router_count());
        let mut nics = Vec::with_capacity(mesh.router_count());
        for coord in mesh.routers() {
            routers.push(Router::new(
                coord,
                mesh,
                config.arbitration,
                &weights,
                config.input_buffer_flits,
                config.input_buffer_flits,
            ));
            let node = mesh.node_id(coord)?;
            nics.push(Nic::new(
                node,
                Packetizer::new(config.packetization, config.geometry)?,
            ));
        }
        let mut links = HashMap::new();
        for link in mesh.links() {
            links.insert(
                (link.from, link.direction),
                SimLink::new(config.timing.link_cycles),
            );
        }
        let mut flow_ids = HashMap::new();
        for (id, flow) in flows.iter() {
            flow_ids.insert((flow.src, flow.dst), id);
        }
        let next_flow = flows.len();
        Ok(Self {
            mesh: mesh.clone(),
            config,
            routers,
            nics,
            links,
            flow_ids,
            next_flow,
            tracker: HashMap::new(),
            delivered: Vec::new(),
            stats: NetworkStats::new(),
            cycle: 0,
        })
    }

    /// Drains and returns the messages delivered since the last call.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The design configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The flow id used for messages from `src` to `dst`, registering a new one
    /// if this pair was not part of the construction flow set.
    pub fn flow_id(&mut self, src: NodeId, dst: NodeId) -> FlowId {
        if let Some(&id) = self.flow_ids.get(&(src, dst)) {
            return id;
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flow_ids.insert((src, dst), id);
        id
    }

    /// Number of flits queued at the NIC of `node` and not yet injected.
    pub fn nic_backlog(&self, node: NodeId) -> usize {
        self.nics[node.index()].pending_flits()
    }

    /// Offers a message of `size_flits` flits (regular-packetization size) from
    /// `src` to `dst`.  Returns the message id assigned by the source NIC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SelfFlow`] if `src == dst`, or an out-of-bounds error if
    /// either node does not exist.
    pub fn offer(&mut self, src: NodeId, dst: NodeId, size_flits: u32) -> Result<MessageId> {
        if src == dst {
            return Err(Error::SelfFlow { node: src });
        }
        self.mesh.coord_of(src)?;
        self.mesh.coord_of(dst)?;
        if size_flits == 0 {
            return Err(Error::EmptyMessage);
        }
        let flow = self.flow_id(src, dst);
        let now = self.cycle;
        let offered = self.nics[src.index()].offer(dst, flow, size_flits, now);
        self.stats.messages_offered += 1;
        self.tracker.insert(
            (src, offered.id),
            MessageProgress {
                flow,
                dst,
                created: now,
                first_injection: None,
                expected_flits: offered.wire_flits,
                received_flits: 0,
            },
        );
        Ok(offered.id)
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;

        // Phase 1: routers take their forwarding decisions and the network
        // applies them (link pushes, ejections, credit returns).
        let mut ejected: Vec<Flit> = Vec::new();
        for index in 0..self.routers.len() {
            let coord = self.routers[index].coord();
            let forwards = self.routers[index].decide();
            for fwd in forwards {
                self.stats.record_port_flit(coord, fwd.output);
                // Return a credit to the upstream router that fed this input.
                if let Port::Mesh(dir) = fwd.input {
                    if let Some(upstream) = self.mesh.neighbor(coord, dir) {
                        let upstream_index = self
                            .mesh
                            .node_id(upstream)
                            .expect("neighbour inside mesh")
                            .index();
                        self.routers[upstream_index].credit_return(Port::Mesh(dir.opposite()));
                    }
                }
                match fwd.output {
                    Port::Local => ejected.push(fwd.flit),
                    Port::Mesh(dir) => {
                        let link = self
                            .links
                            .get_mut(&(coord, dir))
                            .expect("output port implies link");
                        link.push(fwd.flit)
                            .expect("one forward per output per cycle");
                    }
                }
            }
        }

        // Phase 2: links advance; arriving flits enter the downstream buffers.
        for ((from, dir), link) in &mut self.links {
            if let Some(flit) = link.advance() {
                let to = self
                    .mesh
                    .neighbor(*from, *dir)
                    .expect("links connect adjacent routers");
                let to_index = self.mesh.node_id(to).expect("inside mesh").index();
                let input = Port::Mesh(dir.opposite());
                self.routers[to_index]
                    .accept(input, flit)
                    .expect("credit flow control guarantees buffer space");
            }
        }

        // Phase 3: NIC injection into the local input buffers.
        for index in 0..self.nics.len() {
            let coord = self.routers[index].coord();
            debug_assert_eq!(self.mesh.node_id(coord).unwrap().index(), index);
            while self.routers[index].free_slots(Port::Local) > 0 {
                let Some(peek_src) = self.nics[index].peek().map(|f| f.src) else {
                    break;
                };
                let flit = self.nics[index].inject(now).expect("peeked flit exists");
                if let Some(progress) = self.tracker.get_mut(&(peek_src, flit.message)) {
                    if progress.first_injection.is_none() {
                        progress.first_injection = Some(now);
                    }
                }
                self.stats.flits_injected += 1;
                if flit.kind.is_head() {
                    self.stats.packets_injected += 1;
                }
                self.routers[index]
                    .accept(Port::Local, flit)
                    .expect("free slot checked above");
            }
        }

        // Phase 4: ejections complete messages.
        for flit in ejected {
            self.stats.flits_delivered += 1;
            if flit.kind.is_tail() {
                self.stats.packets_delivered += 1;
            }
            let key = (flit.src, flit.message);
            let finished = if let Some(progress) = self.tracker.get_mut(&key) {
                progress.received_flits += 1;
                progress.received_flits >= progress.expected_flits
            } else {
                false
            };
            if finished {
                let progress = self.tracker.remove(&key).expect("present above");
                let end_to_end = now.saturating_sub(progress.created);
                let traversal =
                    now.saturating_sub(progress.first_injection.unwrap_or(progress.created));
                self.stats
                    .record_message(progress.flow, end_to_end, traversal);
                self.delivered.push(Delivered {
                    message: flit.message,
                    src: flit.src,
                    dst: progress.dst,
                    flow: progress.flow,
                    created: progress.created,
                    delivered: now,
                });
            }
        }

        self.stats.cycles = self.cycle;
    }

    /// Returns `true` when no flit is buffered, in flight or awaiting injection
    /// anywhere in the network.
    pub fn is_drained(&self) -> bool {
        self.nics.iter().all(Nic::is_drained)
            && self.routers.iter().all(Router::is_idle)
            && self.links.values().all(|l| l.in_flight() == 0)
            && self.tracker.is_empty()
    }

    /// Steps until the network drains or `max_cycles` additional cycles have
    /// elapsed; returns `true` if it drained.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_drained() {
                return true;
            }
            self.step();
        }
        self.is_drained()
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(side: u16, config: NocConfig) -> Network {
        let mesh = Mesh::square(side).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        Network::new(&mesh, config, &flows).unwrap()
    }

    fn node(network: &Network, row: u16, col: u16) -> NodeId {
        network
            .mesh()
            .node_id(Coord::from_row_col(row, col))
            .unwrap()
    }

    #[test]
    fn single_message_is_delivered() {
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(1_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        assert_eq!(noc.stats().flits_delivered, 4);
        assert_eq!(noc.stats().packets_delivered, 1);
    }

    #[test]
    fn wap_message_is_delivered_with_overhead() {
        let mut noc = build(4, NocConfig::waw_wap());
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(1_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        // The 4-flit message became 5 single-flit packets.
        assert_eq!(noc.stats().flits_delivered, 5);
        assert_eq!(noc.stats().packets_delivered, 5);
    }

    #[test]
    fn zero_load_latency_matches_hop_count() {
        // A single message in an empty network: traversal latency is the number
        // of routers plus link hops plus serialisation.
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 1).unwrap();
        assert!(noc.run_until_drained(100));
        let flow = noc.flow_id(src, dst);
        let latency = noc.stats().flow_traversal_latency(flow).unwrap().max;
        // 3 hops with a single-cycle router and single-cycle links: the flit
        // advances one hop per cycle and is then ejected.
        assert!((3..=10).contains(&latency), "latency {latency}");
    }

    #[test]
    fn flit_conservation_under_random_offers() {
        let mut noc = build(4, NocConfig::regular(4));
        let dst = node(&noc, 0, 0);
        let mut offered_flits = 0;
        for row in 0..4u16 {
            for col in 0..4u16 {
                if row == 0 && col == 0 {
                    continue;
                }
                let src = node(&noc, row, col);
                noc.offer(src, dst, 4).unwrap();
                offered_flits += 4;
            }
        }
        assert!(noc.run_until_drained(10_000));
        assert_eq!(noc.stats().flits_delivered, offered_flits);
        assert_eq!(noc.stats().messages_delivered, 15);
        assert_eq!(noc.stats().messages_offered, 15);
    }

    #[test]
    fn self_messages_and_bad_sizes_rejected() {
        let mut noc = build(2, NocConfig::regular(4));
        let a = node(&noc, 0, 0);
        let b = node(&noc, 1, 1);
        assert!(noc.offer(a, a, 1).is_err());
        assert!(noc.offer(a, b, 0).is_err());
        assert!(noc.offer(a, b, 1).is_ok());
    }

    #[test]
    fn contention_increases_latency() {
        // One message alone vs the same message while every node hammers the
        // destination: the contended latency must be strictly larger.
        let solo_latency = {
            let mut noc = build(4, NocConfig::regular(4));
            let src = node(&noc, 3, 3);
            let dst = node(&noc, 0, 0);
            noc.offer(src, dst, 4).unwrap();
            noc.run_until_drained(10_000);
            let flow = noc.flow_id(src, dst);
            noc.stats().flow_traversal_latency(flow).unwrap().max
        };
        let contended_latency = {
            let mut noc = build(4, NocConfig::regular(4));
            let dst = node(&noc, 0, 0);
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    for _ in 0..4 {
                        noc.offer(node(&noc, row, col), dst, 4).unwrap();
                    }
                }
            }
            noc.run_until_drained(100_000);
            let src = node(&noc, 3, 3);
            let flow = noc.flow_id(src, dst);
            noc.stats().flow_traversal_latency(flow).unwrap().max
        };
        assert!(
            contended_latency > solo_latency,
            "contended {contended_latency} vs solo {solo_latency}"
        );
    }

    #[test]
    fn stats_track_port_utilisation() {
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        noc.run_until_drained(1_000);
        // Every link along the row carried the 4 flits.
        let flits = noc
            .stats()
            .port_flits
            .get(&(Coord::from_row_col(0, 2), Port::Mesh(Direction::West)))
            .copied()
            .unwrap_or(0);
        assert_eq!(flits, 4);
        // The ejection port of the destination also saw them.
        let ejected = noc
            .stats()
            .port_flits
            .get(&(Coord::from_row_col(0, 0), Port::Local))
            .copied()
            .unwrap_or(0);
        assert_eq!(ejected, 4);
    }

    #[test]
    fn drained_network_reports_idle() {
        let mut noc = build(3, NocConfig::waw_wap());
        assert!(noc.is_drained());
        let src = node(&noc, 2, 2);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(!noc.is_drained());
        assert!(noc.run_until_drained(1_000));
        assert!(noc.is_drained());
    }
}
