//! The complete NoC: routers, links, NICs and end-to-end message tracking,
//! executed by an allocation-free **event-horizon kernel**.
//!
//! # Kernel design
//!
//! Flits live in one contiguous [`FlitArena`]; every queue (router input
//! buffers, link pipelines, NIC injection queues) holds 4-byte [`FlitId`]
//! handles.  [`Network::step`] runs the same four phases as the dense
//! reference kernel — router decisions, link deliveries, NIC injection,
//! ejection bookkeeping — but each phase only visits the components on its
//! worklist.  The worklists track *actability*, not mere occupancy: each
//! component stays listed only while its behaviour in the next cycle can
//! differ from the closed-form extrapolation of doing nothing.
//!
//! * a **router** is listed while it may forward a flit.  A decision pass
//!   that forwards nothing proves the router blocked — with frozen inputs it
//!   would forward nothing every following cycle either — so it leaves the
//!   worklist even though it still buffers flits, and the per-cycle arbiter
//!   side effects of the skipped interval are replayed in O(1) on its next
//!   observation ([`Router::replay_idle`]).  Exactly three events can
//!   unblock a router, and each re-lists it with dense-kernel timing: a flit
//!   arrival (visible next cycle), a NIC injection (next cycle), and a
//!   credit return — visible *this* cycle when the returning router has the
//!   smaller index (the sweep runs in ascending index order, so the upstream
//!   router is woken into the in-progress sweep at its sorted position),
//!   next cycle otherwise;
//! * a **link** is listed while flits are in flight on it; its horizon is
//!   the absolute delivery cycle already stored at the head of its ring;
//! * a **NIC** is listed while it can actually inject: a back-logged NIC
//!   whose local input buffer is full leaves the worklist and is re-listed
//!   the moment the router forwards a flit out of that buffer (same cycle —
//!   injection runs after the decision phase, as in the dense kernel).
//!
//! On top of the worklists, [`Network::next_horizon`] reports the earliest
//! future cycle at which *anything* can happen, and
//! [`Network::advance_to`] jumps the global clock straight to it — cycles in
//! between are provably inert, and the lazy arbiter replay keeps WaW
//! counters exact across the jump.  When a single worm is the only traffic
//! in the network, the drivers skip even its per-cycle pipelining through
//! the contention-free fast-forward (see `try_worm_fast_forward`), which
//! delivers the whole worm in O(flits + path) arithmetic.
//!
//! The dense per-cycle reference scheduler is retained behind
//! [`Network::set_dense_kernel`] (and compiled in as the construction
//! default by the `dense-kernel` cargo feature): it visits every
//! flit-holding router and back-logged NIC every cycle and never jumps the
//! clock.  The two schedulers are **bit-for-bit equivalent** — the
//! differential proptest in `crates/sim/tests/differential.rs` and the
//! `kernel_equivalence` golden suite pin that contract.
//!
//! Idle components cost nothing, so a closed-loop probing campaign on a large
//! mesh scales with live traffic instead of mesh size, and quiescence
//! ([`Network::is_drained`]) is an O(1) check: empty worklists plus an empty
//! message tracker.  After construction and a warm-up in which scratch
//! buffers and stats tables reach their steady-state footprint, `step`
//! performs **zero heap allocations** (enforced by the `zero_alloc`
//! integration test with a counting global allocator).

use std::collections::HashMap;

use wnoc_core::arbitration::ArbitrationPolicy;
use wnoc_core::fault::reroute_flows;
use wnoc_core::flow::FlowSet;
use wnoc_core::packetization::Packetizer;
use wnoc_core::vc::VcConfig;
use wnoc_core::weights::WeightTable;
use wnoc_core::{
    BufferConfig, Coord, Cycle, Direction, Error, FaultPlan, FaultSet, FlowId, Mesh, MessageId,
    NocConfig, NodeId, Port, Result, RetransmitPolicy, StallCause, TreeRouting,
};

use crate::arena::{FlitArena, FlitId};
use crate::hash::FxBuildHasher;
use crate::link::SimLink;
use crate::nic::Nic;
use crate::router::{Forward, Router};
use crate::stats::NetworkStats;

/// Sentinel for "no neighbour / no link" in the per-router lookup tables.
const NONE: u32 = u32::MAX;

/// Upper bound on the flits a worm fast-forward can move (preallocates the
/// scratch so the fast path never touches the allocator; a closed-loop probe
/// is at most two maximum packets plus the WaP control slice).
const FF_MAX_FLITS: usize = 64;

/// One verified holder of the single live worm: a router buffering exactly
/// one of its flits, `dist` hops from the destination.
#[derive(Debug, Clone, Copy)]
struct FfHolder {
    dist: u32,
    router: u32,
    input: Port,
    flit: FlitId,
}

/// Progress of one message through the network.
#[derive(Debug, Clone, Copy)]
struct MessageProgress {
    flow: FlowId,
    dst: NodeId,
    created: Cycle,
    first_injection: Option<Cycle>,
    expected_flits: u32,
    received_flits: u32,
    /// The regular-packetization size the message was offered with — what a
    /// retransmission must re-offer (`expected_flits` counts *wire* flits,
    /// including WaP control slices, and is not a valid offer size).
    regular_flits: u32,
    /// Fault-epoch retransmissions this message has already been through.
    retries: u32,
}

/// One NACKed message waiting out its retransmission backoff.
#[derive(Debug, Clone, Copy)]
struct Retransmit {
    /// Cycle at which the source NIC re-offers the message.
    due: Cycle,
    src: NodeId,
    dst: NodeId,
    flow: FlowId,
    /// The original message id — a retransmission is the *same* message
    /// going around again, so delivery records and per-NIC id streams stay
    /// stable across fault epochs.
    message: MessageId,
    regular_flits: u32,
    /// The original offer cycle (end-to-end latency spans the outage).
    created: Cycle,
    /// Retries already consumed *before* this attempt.
    retry: u32,
}

/// A message that has been completely delivered to its destination NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Message id (unique per source NIC).
    pub message: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow the message belonged to.
    pub flow: FlowId,
    /// Cycle the message was offered to the source NIC.
    pub created: Cycle,
    /// Cycle its last flit was ejected at the destination.
    pub delivered: Cycle,
}

/// A membership-tracked worklist of component indices.
///
/// `take` hands the current membership to the caller's scratch vector (both
/// vectors keep their capacity, so steady-state stepping never allocates);
/// components that remain busy are re-inserted during the sweep.
#[derive(Debug, Default)]
struct ActiveSet {
    list: Vec<u32>,
    member: Vec<bool>,
}

impl ActiveSet {
    fn with_capacity(len: usize) -> Self {
        Self {
            list: Vec::with_capacity(len),
            member: vec![false; len],
        }
    }

    fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn insert(&mut self, index: usize) {
        if !self.member[index] {
            self.member[index] = true;
            self.list.push(index as u32);
        }
    }

    /// Empties the set, clearing the membership bit of every listed entry.
    fn clear(&mut self) {
        for &index in &self.list {
            self.member[index as usize] = false;
        }
        self.list.clear();
    }

    /// Moves the membership list into `scratch` (cleared first); membership
    /// bits stay set and must be maintained by the sweep via
    /// [`ActiveSet::keep`] / [`ActiveSet::remove`].
    fn take(&mut self, scratch: &mut Vec<u32>) {
        scratch.clear();
        std::mem::swap(&mut self.list, scratch);
    }

    /// Re-inserts a still-busy component during a sweep (its bit is set).
    fn keep(&mut self, index: usize) {
        debug_assert!(self.member[index]);
        self.list.push(index as u32);
    }

    /// Drops a drained component during a sweep.
    fn remove(&mut self, index: usize) {
        debug_assert!(self.member[index]);
        self.member[index] = false;
    }
}

/// A cycle-accurate wormhole mesh NoC.
///
/// The network is driven externally: callers offer messages with
/// [`Network::offer`] and advance time with [`Network::step`]; statistics are
/// available at any point through [`Network::stats`].
///
/// # Examples
///
/// ```
/// use wnoc_core::{Coord, NocConfig, Mesh};
/// use wnoc_core::flow::FlowSet;
/// use wnoc_sim::network::Network;
///
/// let mesh = Mesh::square(4)?;
/// let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0))?;
/// let mut noc = Network::new(mesh, NocConfig::waw_wap(), &flows)?;
/// let src = mesh.node_id(Coord::from_row_col(3, 3))?;
/// let dst = mesh.node_id(Coord::from_row_col(0, 0))?;
/// noc.offer(src, dst, 4)?;
/// noc.run_until_drained(10_000);
/// assert_eq!(noc.stats().messages_delivered, 1);
/// # Ok::<(), wnoc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct Network {
    mesh: Mesh,
    config: NocConfig,
    buffers: BufferConfig,
    /// Virtual-channel configuration (count 1 reproduces the single-queue
    /// design bit for bit).
    vcs: VcConfig,
    /// VC carried by each flow, indexed by [`FlowId`]; extended on demand as
    /// flows register.  A flow keeps its VC at every hop.
    vc_of: Vec<u8>,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    /// All unidirectional links, indexed densely.
    links: Vec<SimLink>,
    /// `(downstream router index, downstream input port)` per link.
    link_dst: Vec<(u32, Port)>,
    /// Outgoing link index per `(router, output port)`; [`NONE`] at edges.
    link_out: Vec<[u32; Port::COUNT]>,
    /// Neighbour router index per `(router, mesh port)`; [`NONE`] at edges.
    neighbor: Vec<[u32; Port::COUNT]>,
    /// The flit slab shared by every queue in the network.
    arena: FlitArena,
    /// Flits forwarded per `(router, output port)`, stored densely
    /// (`router index * Port::COUNT + port index`): bumped once per flit per
    /// hop, squarely on the hot path, so it must not cost a hash probe.
    port_flits: Vec<u64>,
    active_routers: ActiveSet,
    active_links: ActiveSet,
    active_nics: ActiveSet,
    /// Reusable sweep scratch (the double buffer of each active set).
    scratch_routers: Vec<u32>,
    scratch_links: Vec<u32>,
    scratch_nics: Vec<u32>,
    /// Reusable per-router forwarding scratch.
    scratch_forwards: Vec<Forward>,
    /// Flits ejected this cycle, in router index order.
    scratch_ejected: Vec<FlitId>,
    /// Reusable worm fast-forward scratch: the verified holders of the single
    /// live message, sorted by distance to its destination.
    scratch_ff: Vec<FfHolder>,
    /// Reusable worm fast-forward scratch: per-router header grant inputs.
    scratch_heads: Vec<Port>,
    /// Single-cycle-link fast path: flits pushed this cycle, in forward
    /// order, delivered directly in phase 2 without touching the link rings
    /// or their worklist (`true` iff the configured link latency is 1).
    /// Entries carry the flit's VC so delivery needs no arena lookup.
    wire_is_fast: bool,
    scratch_wire: Vec<(u32, u8, FlitId)>,
    /// Dense reference scheduling: visit every flit-holding router and
    /// back-logged NIC every cycle, never jump the clock (the differential
    /// oracle for the event-horizon scheduler).
    dense: bool,
    /// Flow id lookup for (src, dst) pairs, extended on demand.
    flow_ids: HashMap<(NodeId, NodeId), FlowId, FxBuildHasher>,
    next_flow: usize,
    /// In-flight message progress; touched on every offer, injection and
    /// ejection, hence the fast deterministic hasher.
    tracker: HashMap<(NodeId, MessageId), MessageProgress, FxBuildHasher>,
    delivered: Vec<Delivered>,
    stats: NetworkStats,
    cycle: Cycle,
    /// Successful worm fast-forwards (diagnostics: confirms the closed form
    /// actually fires on sparse workloads).
    fast_forwards: u64,
    /// The construction flow set, kept so a fault epoch can rebuild the WaW
    /// arbitration quotas from the survivors' tree routes (quotas are a
    /// static function of the flow-to-route mapping, so rerouting without
    /// reweighting would arbitrate detoured traffic on stale XY quotas).
    construction_flows: FlowSet,
    /// The installed fault plan (empty by default: the zero-fault fast path
    /// costs two branch checks per step and nothing else).
    plan: FaultPlan,
    /// Retransmission policy for messages NACKed by a fault epoch flush.
    policy: RetransmitPolicy,
    /// The faults currently active, and the up*/down* tree routing over the
    /// surviving topology (`None` until the first activation fires).
    faults: Option<FaultSet>,
    tree: Option<TreeRouting>,
    /// The next fault activation cycle not yet applied — the fault wake
    /// event folded into [`Network::next_horizon`].
    pending_activation: Option<Cycle>,
    /// NACKed messages waiting out their retransmission backoff.
    retransmit: Vec<Retransmit>,
}

impl Network {
    /// Builds a network over `mesh` with the given design configuration.
    ///
    /// `flows` describes the platform's communication flows; it is used to
    /// derive the WaW arbitration weights (and pre-registers flow ids for
    /// statistics).  Under round-robin arbitration the weights are ignored but
    /// the flow ids are still registered.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid.
    pub fn new(mesh: Mesh, config: NocConfig, flows: &FlowSet) -> Result<Self> {
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        Self::with_buffers(mesh, config, flows, &buffers)
    }

    /// Builds a network whose router input buffers follow `buffers` instead
    /// of the uniform [`NocConfig::input_buffer_flits`] depth.
    ///
    /// Buffer depths size the input rings; every credit counter is *derived*
    /// from the downstream neighbour's configured depth through
    /// [`BufferConfig::credits_towards`] — the single source of truth — and
    /// the construction asserts, link by link, that each output's credits
    /// equal the capacity of the input buffer it feeds.  The active-set
    /// kernel's invariants (arena slab, dirty-bit worklists, zero steady-state
    /// allocations) are depth-independent; a uniform config at the default
    /// depth is bit-for-bit identical to [`Network::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid or
    /// `buffers` does not cover `mesh`.
    pub fn with_buffers(
        mesh: Mesh,
        config: NocConfig,
        flows: &FlowSet,
        buffers: &BufferConfig,
    ) -> Result<Self> {
        Self::with_vcs(mesh, config, flows, buffers, VcConfig::single())
    }

    /// Builds a network with virtual channels: `vcs.count()` rings per input
    /// port (each at the full configured depth), per-`(output, VC)` credits,
    /// and strict-priority VC selection at every output (see
    /// [`Router`](crate::router::Router)).  Flows are pinned to VCs by
    /// `vcs`'s static assignment; a flow keeps its VC at every hop.  With a
    /// single VC this is bit-for-bit [`Network::with_buffers`].
    ///
    /// The contention-free worm fast-forward stays single-VC only (its
    /// closed form assumes one ring per port); multi-VC networks always
    /// advance horizon to horizon.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid or
    /// `buffers` does not cover `mesh`.
    pub fn with_vcs(
        mesh: Mesh,
        config: NocConfig,
        flows: &FlowSet,
        buffers: &BufferConfig,
        vcs: VcConfig,
    ) -> Result<Self> {
        config.validate()?;
        buffers.validate(&mesh)?;
        let weights = WeightTable::from_flow_set(flows);
        let count = mesh.router_count();
        let mut routers = Vec::with_capacity(count);
        let mut nics = Vec::with_capacity(count);
        let mut links = Vec::with_capacity(mesh.link_count());
        let mut link_dst = Vec::with_capacity(mesh.link_count());
        let mut link_out = vec![[NONE; Port::COUNT]; count];
        let mut neighbor = vec![[NONE; Port::COUNT]; count];
        for (index, coord) in mesh.routers().enumerate() {
            let node = mesh.node_id(coord)?;
            let mut input_depths = [1u32; Port::COUNT];
            let mut output_credits = [0u32; Port::COUNT];
            for port in Port::ALL {
                input_depths[port.index()] = buffers.depth(node, port);
                // Credits are the downstream input buffer's depth: the
                // neighbour's facing port for mesh outputs, this router's own
                // local buffer for the (never credit-limited) ejection port.
                output_credits[port.index()] = match port {
                    Port::Mesh(dir) => match mesh.neighbor(coord, dir) {
                        Some(downstream) => buffers
                            .credits_towards(mesh.node_id(downstream)?, Port::Mesh(dir.opposite())),
                        None => 0,
                    },
                    Port::Local => buffers.depth(node, Port::Local),
                };
            }
            routers.push(Router::new(
                coord,
                &mesh,
                config.arbitration,
                &weights,
                &input_depths,
                &output_credits,
                vcs.count(),
            ));
            nics.push(Nic::new(
                node,
                Packetizer::new(config.packetization, config.geometry)?,
            ));
            for dir in Direction::ALL {
                let Some(downstream) = mesh.neighbor(coord, dir) else {
                    continue;
                };
                let downstream_index = mesh.node_id(downstream)?.index();
                let port = Port::Mesh(dir).index();
                neighbor[index][port] = downstream_index as u32;
                link_out[index][port] = links.len() as u32;
                links.push(SimLink::new(config.timing.link_cycles));
                link_dst.push((downstream_index as u32, Port::Mesh(dir.opposite())));
            }
        }
        // Constructor invariant: credit counters agree with the rings they
        // guard.  With heterogeneous depths a divergence here would mean
        // silent flow-control corruption (overflowing `Router::accept`), so
        // the check is unconditional, not debug-only.
        for (index, coord) in mesh.routers().enumerate() {
            for dir in Direction::ALL {
                let Some(downstream) = mesh.neighbor(coord, dir) else {
                    continue;
                };
                let downstream_index = mesh.node_id(downstream)?.index();
                for vc in 0..vcs.count() as usize {
                    let credits = routers[index].credits(Port::Mesh(dir), vc);
                    let capacity =
                        routers[downstream_index].input_capacity(Port::Mesh(dir.opposite()), vc);
                    assert_eq!(
                        credits as usize, capacity,
                        "credits of {coord} towards {dir} (VC {vc}) diverge from the \
                         downstream ring"
                    );
                }
            }
        }
        let mut flow_ids: HashMap<_, _, FxBuildHasher> = HashMap::default();
        let mut vc_of = vec![0u8; flows.len()];
        for (id, flow) in flows.iter() {
            flow_ids.insert((flow.src, flow.dst), id);
            let (src, dst) = (mesh.coord_of(flow.src)?, mesh.coord_of(flow.dst)?);
            vc_of[id.0] = vcs.vc_of(id, src, dst) as u8;
        }
        let next_flow = flows.len();
        let link_count = links.len();
        Ok(Self {
            mesh,
            config,
            buffers: buffers.clone(),
            vcs,
            vc_of,
            routers,
            nics,
            links,
            link_dst,
            link_out,
            neighbor,
            arena: FlitArena::new(),
            port_flits: vec![0; count * Port::COUNT],
            active_routers: ActiveSet::with_capacity(count),
            active_links: ActiveSet::with_capacity(link_count),
            active_nics: ActiveSet::with_capacity(count),
            scratch_routers: Vec::with_capacity(count),
            scratch_links: Vec::with_capacity(link_count),
            scratch_nics: Vec::with_capacity(count),
            scratch_forwards: Vec::with_capacity(Port::COUNT),
            scratch_ejected: Vec::with_capacity(count),
            scratch_ff: Vec::with_capacity(FF_MAX_FLITS),
            scratch_heads: Vec::with_capacity(FF_MAX_FLITS),
            wire_is_fast: config.timing.link_cycles == 1,
            scratch_wire: Vec::with_capacity(link_count.min(256)),
            dense: cfg!(feature = "dense-kernel"),
            flow_ids,
            next_flow,
            tracker: HashMap::default(),
            delivered: Vec::new(),
            stats: NetworkStats::new(),
            cycle: 0,
            fast_forwards: 0,
            construction_flows: flows.clone(),
            plan: FaultPlan::new(),
            policy: RetransmitPolicy::default(),
            faults: None,
            tree: None,
            pending_activation: None,
            retransmit: Vec::new(),
        })
    }

    /// Drains and returns the messages delivered since the last call.
    ///
    /// Prefer [`Network::drain_delivered_into`] in loops: this convenience
    /// hands ownership out, so the internal buffer restarts at zero capacity.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Appends the messages delivered since the last drain to `out`, keeping
    /// the internal buffer's capacity (the allocation-free variant for
    /// closed-loop drivers that poll deliveries every cycle).
    pub fn drain_delivered_into(&mut self, out: &mut Vec<Delivered>) {
        out.append(&mut self.delivered);
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The design configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The router input-buffer configuration the network was built with.
    pub fn buffers(&self) -> &BufferConfig {
        &self.buffers
    }

    /// The virtual-channel configuration the network was built with.
    pub fn vcs(&self) -> &VcConfig {
        &self.vcs
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Number of whole-worm deliveries the contention-free fast-forward has
    /// performed (0 under the dense reference scheduler).
    pub fn fast_forwards(&self) -> u64 {
        self.fast_forwards
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Flits forwarded through `(router, output)` so far — the per-port
    /// utilisation counter, kept in a dense per-router table (bumped once
    /// per flit per hop, this is too hot for a hash map).
    pub fn port_flits(&self, router: Coord, output: Port) -> u64 {
        match self.mesh.node_id(router) {
            Ok(node) => self.port_flits[node.index() * Port::COUNT + output.index()],
            Err(_) => 0,
        }
    }

    /// Utilisation of `(router, output)` as flits per cycle over the run.
    pub fn port_utilisation(&self, router: Coord, output: Port) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.port_flits(router, output) as f64 / self.cycle as f64
    }

    /// The flit arena (diagnostics: live flit count, slab high-water mark).
    pub fn arena(&self) -> &FlitArena {
        &self.arena
    }

    /// The flow id used for messages from `src` to `dst`, registering a new one
    /// if this pair was not part of the construction flow set.
    pub fn flow_id(&mut self, src: NodeId, dst: NodeId) -> FlowId {
        if let Some(&id) = self.flow_ids.get(&(src, dst)) {
            return id;
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flow_ids.insert((src, dst), id);
        // Late registrations extend the flow → VC table with the same static
        // assignment construction used (the endpoints are validated by every
        // caller before the lookup).
        let vc = match (self.mesh.coord_of(src), self.mesh.coord_of(dst)) {
            (Ok(s), Ok(d)) => self.vcs.vc_of(id, s, d) as u8,
            _ => 0,
        };
        debug_assert_eq!(self.vc_of.len(), id.0);
        self.vc_of.push(vc);
        id
    }

    /// The VC carried by flit `id` — its flow's statically assigned ring
    /// index at every hop (always 0 in the single-VC design).
    #[inline]
    fn flit_vc(&self, id: FlitId) -> usize {
        if self.vcs.is_single() {
            return 0;
        }
        self.vc_of
            .get(self.arena.get(id).flow.0)
            .map_or(0, |&vc| vc as usize)
    }

    /// Number of flits queued at the NIC of `node` and not yet injected.
    pub fn nic_backlog(&self, node: NodeId) -> usize {
        self.nics[node.index()].pending_flits()
    }

    /// Offers a message of `size_flits` flits (regular-packetization size) from
    /// `src` to `dst`.  Returns the message id assigned by the source NIC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SelfFlow`] if `src == dst`, an out-of-bounds error if
    /// either node does not exist, or [`Error::Unreachable`] if active faults
    /// have partitioned the pair (or killed either endpoint's router).
    pub fn offer(&mut self, src: NodeId, dst: NodeId, size_flits: u32) -> Result<MessageId> {
        if src == dst {
            return Err(Error::SelfFlow { node: src });
        }
        let src_coord = self.mesh.coord_of(src)?;
        let dst_coord = self.mesh.coord_of(dst)?;
        if let Some(tree) = &self.tree {
            if !tree.reachable(src_coord, dst_coord) {
                return Err(Error::Unreachable { src, dst });
            }
        }
        if size_flits == 0 {
            return Err(Error::EmptyMessage);
        }
        let flow = self.flow_id(src, dst);
        let now = self.cycle;
        let offered = self.nics[src.index()].offer(&mut self.arena, dst, flow, size_flits, now);
        self.active_nics.insert(src.index());
        self.stats.messages_offered += 1;
        self.tracker.insert(
            (src, offered.id),
            MessageProgress {
                flow,
                dst,
                created: now,
                first_injection: None,
                expected_flits: offered.wire_flits,
                received_flits: 0,
                regular_flits: size_flits,
                retries: 0,
            },
        );
        Ok(offered.id)
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;

        // Phase 0 (fault machinery; two branch checks when no plan is
        // installed): a fault activation due this cycle flushes the epoch
        // before any component acts, and NACKed messages whose backoff
        // expired re-enter through their source NICs.
        if self.pending_activation.is_some_and(|due| due <= now) {
            self.apply_fault_state(now, now);
        }
        if !self.retransmit.is_empty() {
            self.release_due_retransmits(now);
        }

        // Phase 1: actable routers take their forwarding decisions and the
        // network applies them (link pushes, ejections, credit returns).
        // Ascending index order matches the dense reference kernel, so
        // same-cycle credit visibility between routers is preserved exactly;
        // a credit returned *upstream* to a higher-indexed blocked router
        // wakes it into this very sweep (the dense kernel would visit it
        // later this cycle and see the credit), while a credit flowing to a
        // lower-indexed router only becomes visible next cycle.
        self.active_routers.take(&mut self.scratch_routers);
        self.scratch_routers.sort_unstable();
        let mut slot = 0;
        while slot < self.scratch_routers.len() {
            let index = self.scratch_routers[slot] as usize;
            slot += 1;
            self.scratch_forwards.clear();
            self.routers[index].decide(&self.arena, now, &mut self.scratch_forwards);
            let forwarded = !self.scratch_forwards.is_empty();
            for entry in 0..self.scratch_forwards.len() {
                let fwd = self.scratch_forwards[entry];
                self.port_flits[index * Port::COUNT + fwd.output.index()] += 1;
                match fwd.input {
                    // Return a credit to the upstream router that fed this
                    // input (on the drained flit's VC), and wake it if the
                    // credit may unblock it.
                    Port::Mesh(dir) => {
                        let upstream = self.neighbor[index][fwd.input.index()];
                        debug_assert_ne!(upstream, NONE, "mesh input implies a neighbour");
                        let upstream = upstream as usize;
                        self.routers[upstream].credit_return(Port::Mesh(dir.opposite()), fwd.vc);
                        if self.routers[upstream].buffered_flits() > 0 {
                            if upstream > index {
                                Self::wake_in_sweep(
                                    &mut self.active_routers,
                                    &mut self.scratch_routers,
                                    slot,
                                    upstream,
                                );
                            } else {
                                self.active_routers.insert(upstream);
                            }
                        }
                    }
                    // Draining the local input frees a slot the NIC can fill
                    // this very cycle (injection runs after this phase).
                    Port::Local => {
                        if self.nics[index].pending_flits() > 0 {
                            self.active_nics.insert(index);
                        }
                    }
                }
                match fwd.output {
                    Port::Local => self.scratch_ejected.push(fwd.flit),
                    Port::Mesh(_) => {
                        let link = self.link_out[index][fwd.output.index()];
                        debug_assert_ne!(link, NONE, "output port implies link");
                        if self.wire_is_fast {
                            // Latency-1 wire: the flit is due this very
                            // cycle; deliver it from the per-cycle list and
                            // skip the ring and worklist entirely.
                            self.scratch_wire.push((link, fwd.vc as u8, fwd.flit));
                        } else {
                            self.links[link as usize]
                                .push(now, fwd.flit)
                                .expect("one forward per output per cycle");
                            self.active_links.insert(link as usize);
                        }
                    }
                }
            }
            // Event-horizon rule: a pass that forwarded nothing proves the
            // router blocked — with frozen inputs it stays blocked until a
            // wake event — so it leaves the worklist even while buffering
            // flits (the dense reference keeps every flit-holding router).
            let busy = self.routers[index].buffered_flits() > 0;
            if busy && (self.dense || forwarded) {
                self.active_routers.keep(index);
            } else {
                self.active_routers.remove(index);
            }
        }

        // Phase 2: active links advance; arriving flits enter the downstream
        // buffers.  Each link feeds a distinct (router, input) pair, so the
        // sweep order is immaterial.
        for slot in 0..self.scratch_wire.len() {
            let (link, vc, id) = self.scratch_wire[slot];
            let (to, input) = self.link_dst[link as usize];
            self.routers[to as usize]
                .accept(&self.arena, now, input, vc as usize, id)
                .expect("credit flow control guarantees buffer space");
            self.active_routers.insert(to as usize);
        }
        self.scratch_wire.clear();
        self.active_links.take(&mut self.scratch_links);
        for slot in 0..self.scratch_links.len() {
            let index = self.scratch_links[slot] as usize;
            if let Some(id) = self.links[index].advance(now) {
                let (to, input) = self.link_dst[index];
                let vc = self.flit_vc(id);
                self.routers[to as usize]
                    .accept(&self.arena, now, input, vc, id)
                    .expect("credit flow control guarantees buffer space");
                self.active_routers.insert(to as usize);
            }
            if self.links[index].in_flight() > 0 {
                self.active_links.keep(index);
            } else {
                self.active_links.remove(index);
            }
        }

        // Phase 3: backlogged NICs inject into the local input buffers.
        self.active_nics.take(&mut self.scratch_nics);
        self.scratch_nics.sort_unstable();
        for slot in 0..self.scratch_nics.len() {
            let index = self.scratch_nics[slot] as usize;
            let src = self.nics[index].node();
            // FIFO injection: the head flit's VC ring must have room; a head
            // blocked on its ring stalls the NIC (head-of-line, exactly one
            // injection queue) until the router drains that ring.
            while let Some(peeked) = self.nics[index].peek() {
                let vc = self.flit_vc(peeked);
                if self.routers[index].free_slots(Port::Local, vc) == 0 {
                    break;
                }
                let id = self.nics[index]
                    .inject(&mut self.arena, now)
                    .expect("peeked flit exists");
                let flit = self.arena.get(id);
                if let Some(progress) = self.tracker.get_mut(&(src, flit.message)) {
                    if progress.first_injection.is_none() {
                        progress.first_injection = Some(now);
                    }
                }
                self.stats.flits_injected += 1;
                if flit.kind.is_head() {
                    self.stats.packets_injected += 1;
                }
                self.routers[index]
                    .accept(&self.arena, now, Port::Local, vc, id)
                    .expect("free slot checked above");
                self.active_routers.insert(index);
            }
            // Event-horizon rule: the loop above exits with either an empty
            // backlog or a full local buffer; a back-logged-but-full NIC
            // cannot inject until the router drains the buffer, and that
            // forward re-lists it (same cycle).  The dense reference keeps
            // every back-logged NIC listed.
            if self.dense && self.nics[index].pending_flits() > 0 {
                self.active_nics.keep(index);
            } else {
                self.active_nics.remove(index);
            }
        }

        // Phase 4: ejections complete messages and release arena slots.
        for slot in 0..self.scratch_ejected.len() {
            let id = self.scratch_ejected[slot];
            let flit = *self.arena.get(id);
            self.arena.free(id);
            self.stats.flits_delivered += 1;
            if flit.kind.is_tail() {
                self.stats.packets_delivered += 1;
            }
            let key = (flit.src, flit.message);
            let finished = if let Some(progress) = self.tracker.get_mut(&key) {
                progress.received_flits += 1;
                progress.received_flits >= progress.expected_flits
            } else {
                false
            };
            if finished {
                let progress = self.tracker.remove(&key).expect("present above");
                let end_to_end = now.saturating_sub(progress.created);
                let traversal =
                    now.saturating_sub(progress.first_injection.unwrap_or(progress.created));
                self.stats
                    .record_message(progress.flow, end_to_end, traversal);
                self.delivered.push(Delivered {
                    message: flit.message,
                    src: flit.src,
                    dst: progress.dst,
                    flow: progress.flow,
                    created: progress.created,
                    delivered: now,
                });
            }
        }
        self.scratch_ejected.clear();

        self.stats.cycles = self.cycle;
    }

    /// Returns `true` when no flit is buffered, in flight or awaiting injection
    /// anywhere in the network.
    ///
    /// With the active-set kernel this is an O(1) check: every component
    /// holding traffic is on a worklist, and every tracked message still has
    /// flits somewhere in the system.
    pub fn is_drained(&self) -> bool {
        let quiescent = self.active_routers.is_empty()
            && self.active_links.is_empty()
            && self.active_nics.is_empty()
            && self.tracker.is_empty()
            && self.retransmit.is_empty();
        debug_assert_eq!(
            quiescent,
            self.nics.iter().all(Nic::is_drained)
                && self.routers.iter().all(Router::is_idle)
                && self.links.iter().all(|l| l.in_flight() == 0)
                && self.tracker.is_empty()
                && self.retransmit.is_empty()
                && self.arena.is_empty(),
            "active sets drifted from component state at cycle {}",
            self.cycle
        );
        quiescent
    }

    /// Selects the scheduler: `true` pins the dense per-cycle reference
    /// (every flit-holding router and back-logged NIC visited every cycle, no
    /// clock jumps, no worm fast-forward), `false` the event-horizon kernel.
    /// The two are bit-for-bit equivalent; the dense scheduler exists as the
    /// differential-testing oracle.  The `dense-kernel` cargo feature makes
    /// dense the construction default.
    ///
    /// # Panics
    ///
    /// Panics if the network is not drained: the schedulers keep different
    /// worklist invariants mid-flight, so the mode can only change while
    /// every worklist is provably empty.
    pub fn set_dense_kernel(&mut self, dense: bool) {
        assert!(
            self.is_drained(),
            "kernel mode can only change on a drained network"
        );
        self.dense = dense;
    }

    /// `true` while the dense per-cycle reference scheduler is selected.
    pub fn dense_kernel(&self) -> bool {
        self.dense
    }

    /// Wakes blocked router `index` into the in-progress ascending sweep of
    /// the current cycle (a lower-indexed router just returned it a credit,
    /// which the dense kernel would let it observe this very cycle).
    fn wake_in_sweep(active: &mut ActiveSet, sweep: &mut Vec<u32>, from_slot: usize, index: usize) {
        if active.member[index] {
            // Already pending later in this sweep (every listed index above
            // the current position is still unvisited).
            return;
        }
        active.member[index] = true;
        let position =
            from_slot + sweep[from_slot..].partition_point(|&entry| (entry as usize) < index);
        sweep.insert(position, index as u32);
    }

    /// The earliest future cycle at which the network's state can change, or
    /// `None` when nothing will ever happen again without external input
    /// (the network is drained — or deadlocked with every component blocked).
    ///
    /// Routers and NICs on a worklist may act in the very next cycle.  When
    /// only links are live, the horizon is the earliest absolute delivery
    /// cycle stored at their ring heads — every cycle before it is provably
    /// inert and can be skipped wholesale via [`Network::advance_to`].
    pub fn next_horizon(&self) -> Option<Cycle> {
        // Fault machinery wake events: a pending fault activation and due
        // retransmission releases bound the horizon too (the dense kernel
        // never jumps, so any future event pins it to the very next cycle).
        let mut horizon: Option<Cycle> = None;
        if let Some(due) = self.pending_activation {
            let due = if self.dense { self.cycle + 1 } else { due };
            horizon = Some(due.max(self.cycle + 1));
        }
        for entry in &self.retransmit {
            let due = if self.dense {
                self.cycle + 1
            } else {
                entry.due
            };
            let due = due.max(self.cycle + 1);
            horizon = Some(horizon.map_or(due, |h: Cycle| h.min(due)));
        }
        if !self.active_routers.is_empty() || !self.active_nics.is_empty() {
            return Some(self.cycle + 1);
        }
        if self.dense {
            if !self.active_links.is_empty() {
                return Some(self.cycle + 1);
            }
            return horizon;
        }
        for &index in &self.active_links.list {
            if let Some(due) = self.links[index as usize].next_due() {
                let due = due.max(self.cycle + 1);
                horizon = Some(horizon.map_or(due, |h: Cycle| h.min(due)));
            }
        }
        horizon
    }

    /// Jumps the clock to `target - 1` and steps once, landing on `target`.
    ///
    /// The caller must have established — via [`Network::next_horizon`] —
    /// that every skipped cycle is inert; the lazily-replayed arbiter state
    /// (and the absolute delivery cycles in the link rings) make the jump
    /// observationally identical to stepping through each skipped cycle.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `target` is not in the future.
    pub fn advance_to(&mut self, target: Cycle) {
        debug_assert!(target > self.cycle, "advance_to targets a future cycle");
        self.cycle = target - 1;
        self.step();
    }

    /// Advances the clock over a provably event-free interval without
    /// stepping (the no-event tail of a drain budget).
    fn idle_until(&mut self, target: Cycle) {
        if target > self.cycle {
            self.cycle = target;
            self.stats.cycles = target;
        }
    }

    /// Steps until the network is quiescent or `max_cycles` additional cycles
    /// have elapsed.
    ///
    /// This is the single drain driver every simulation loop builds on.
    /// Under the event-horizon kernel it advances horizon to horizon instead
    /// of cycle to cycle — and delivers a lone worm in closed form — with
    /// observable behaviour identical to the dense reference.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SimulationStalled`] — enriched with the stuck cycle,
    /// the number of flits still in the system and the number of routers
    /// holding them — if the network fails to drain within the budget.
    pub fn step_until_quiescent(&mut self, max_cycles: u64) -> Result<()> {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.is_drained() {
                return Ok(());
            }
            if self.try_worm_fast_forward(deadline) {
                continue;
            }
            match self.next_horizon() {
                Some(horizon) if horizon <= deadline => self.advance_to(horizon),
                _ => {
                    // No event inside the budget: the remaining cycles are
                    // inert, so the dense outcome — spinning to the deadline
                    // and reporting the stall there — is reproduced by
                    // jumping straight to it.
                    self.idle_until(deadline);
                    break;
                }
            }
        }
        if self.is_drained() {
            return Ok(());
        }
        Err(self.stall_error(max_cycles))
    }

    /// Contention-free worm fast-forward: when a single message's worm is the
    /// only traffic in the network, delivers it whole in closed form —
    /// O(flits + path) arithmetic instead of O(flits × path) cycle stepping —
    /// and jumps the clock to the delivery cycle of its last flit.  Returns
    /// `true` if the fast-forward fired.
    ///
    /// # Preconditions (all verified, with no state touched on a bail-out)
    ///
    /// * exactly one message is live, its source NIC fully drained, no flit
    ///   in flight on any link;
    /// * every live flit sits at the front of one input buffer, one flit per
    ///   router, at strictly consecutive XY distances from the destination —
    ///   the shape of an unimpeded worm pipelining one hop per cycle — and
    ///   each is forwardable (header with no stale hold, or the continuation
    ///   of the hold on its latched output);
    /// * every router input buffer holds at least 2 flits
    ///   ([`BufferConfig::min_depth`]), so the credit round-trip can never
    ///   hiccup the stream regardless of router index order;
    /// * the final delivery lands inside the caller's `cap` (a driver's
    ///   measurement window or drain budget).
    ///
    /// # Why this is bit-for-bit exact
    ///
    /// With the rest of the network empty, no arbitration is ever contended:
    /// the worm advances one hop per cycle, so flit `j` (at distance `m_j`)
    /// is ejected at exactly `now + 1 + m_j`, each header is granted as a
    /// single requester (which never moves WaW counters), every bypassed
    /// router's other outputs see precisely one idle grant per transit cycle
    /// ([`Router::ff_transit`]), each hop's credit consume/return pair
    /// completes inside the window (net zero), and the one credit still owed
    /// upstream per holder is returned — leaving every counter, hold, and
    /// arbiter exactly where the dense kernel would.  New offers can only
    /// arrive between driver iterations, i.e. after the jump, exactly as
    /// they would after the dense kernel delivered the worm.
    pub(crate) fn try_worm_fast_forward(&mut self, cap: Cycle) -> bool {
        // The closed form models one ring per input port; with several VCs the
        // lone worm could interleave with idle rings it must not touch, so the
        // multi-VC design always takes the exact per-cycle path.
        if self.dense || !self.vcs.is_single() || self.tracker.len() != 1 {
            return false;
        }
        // The closed form below is the latency-1 pipeline (one hop per
        // cycle, ejection at `now + 1 + m_j`); multi-cycle links stretch
        // every hop and fall back to per-cycle stepping.
        if !self.wire_is_fast {
            return false;
        }
        if !self.active_links.is_empty() || !self.active_nics.is_empty() {
            return false;
        }
        let holders = self.active_routers.len();
        if holders == 0 || holders > FF_MAX_FLITS || self.arena.live() != holders {
            return false;
        }
        if self.buffers.min_depth() < 2 {
            return false;
        }
        let (&key, progress) = self.tracker.iter().next().expect("tracker has one entry");
        let progress = *progress;
        if progress.received_flits + holders as u32 != progress.expected_flits {
            return false;
        }
        if self.nics[key.0.index()].pending_flits() > 0 {
            return false;
        }
        let dst = progress.dst;
        let Ok(dst_coord) = self.mesh.coord_of(dst) else {
            return false;
        };

        // Verification pass A: each listed router holds exactly one
        // forwardable flit of the message.  (`arena.live() == holders` then
        // proves no *unlisted* component hides a flit.)
        self.scratch_ff.clear();
        for slot in 0..self.active_routers.len() {
            let router = self.active_routers.list[slot];
            let index = router as usize;
            let Some((input, flit_id)) = self.routers[index].only_flit() else {
                return false;
            };
            let flit = self.arena.get(flit_id);
            if flit.dst != dst {
                return false;
            }
            let out = self.routers[index].route_to(dst);
            match self.routers[index].hold_packet(out) {
                Some(held) => {
                    if flit.packet != held || flit.kind.is_head() {
                        return false;
                    }
                }
                None => {
                    if !flit.kind.is_head() {
                        return false;
                    }
                }
            }
            let dist = self.routers[index].coord().manhattan_distance(dst_coord);
            self.scratch_ff.push(FfHolder {
                dist,
                router,
                input,
                flit: flit_id,
            });
        }
        self.scratch_ff.sort_unstable_by_key(|h| h.dist);
        let m_min = self.scratch_ff[0].dist;
        let m_max = self.scratch_ff[holders - 1].dist;
        for (offset, holder) in self.scratch_ff.iter().enumerate() {
            // Strictly consecutive distances: the unimpeded one-hop-per-cycle
            // pipeline shape (gaps would interleave idle grants mid-span).
            if holder.dist != m_min + offset as u32 {
                return false;
            }
        }
        let now = self.cycle;
        let last_delivery = now + 1 + u64::from(m_max);
        if last_delivery > cap {
            return false;
        }
        // A fault activation or retransmission release inside the jump window
        // would interleave with the worm; fall back to per-cycle stepping.
        if self
            .pending_activation
            .is_some_and(|due| due <= last_delivery)
        {
            return false;
        }
        if self.retransmit.iter().any(|r| r.due <= last_delivery) {
            return false;
        }

        // Verification pass B: walk the XY path destination-ward from the
        // tail-most holder; every holder must sit on it at its claimed
        // distance, fed through the path-facing input.
        {
            let mut cur = self.scratch_ff[holders - 1].router as usize;
            for m in (0..=m_max).rev() {
                let out = self.routers[cur].route_to(dst);
                if m == 0 {
                    if out != Port::Local {
                        return false;
                    }
                    break;
                }
                let Port::Mesh(dir) = out else {
                    return false;
                };
                let next = self.neighbor[cur][out.index()];
                if next == NONE {
                    return false;
                }
                if m > m_min {
                    let downstream = &self.scratch_ff[(m - 1 - m_min) as usize];
                    if downstream.router != next || downstream.input != Port::Mesh(dir.opposite()) {
                        return false;
                    }
                }
                cur = next as usize;
            }
        }

        // Apply pass: replay every path router's transit span in closed
        // form, walking destination-ward from the tail-most holder.
        let mut cur = self.scratch_ff[holders - 1].router as usize;
        let mut upstream_in: Option<Port> = None;
        for m in (0..=m_max).rev() {
            let out = self.routers[cur].route_to(dst);
            let effective = m.max(m_min);
            let pass = u64::from(m_max - effective) + 1;
            let first_decide = now + 1 + u64::from(m_min.saturating_sub(m));
            self.scratch_heads.clear();
            for mj in effective..=m_max {
                let holder = self.scratch_ff[(mj - m_min) as usize];
                if self.arena.get(holder.flit).kind.is_head() {
                    let input = if mj == m {
                        holder.input
                    } else {
                        upstream_in.expect("flits above arrive via the walked hop")
                    };
                    self.scratch_heads.push(input);
                }
            }
            self.routers[cur].ff_transit(&self.arena, out, &self.scratch_heads, first_decide, pass);
            self.port_flits[cur * Port::COUNT + out.index()] += pass;
            if m >= m_min {
                let holder = self.scratch_ff[(m - m_min) as usize];
                if let Port::Mesh(dir) = holder.input {
                    // The credit consumed when this flit was forwarded into
                    // `cur` is finally returned as the worm moves on.
                    let upstream = self.neighbor[cur][holder.input.index()];
                    debug_assert_ne!(upstream, NONE, "mesh input implies a neighbour");
                    self.routers[upstream as usize].credit_return(Port::Mesh(dir.opposite()), 0);
                }
                let popped = self.routers[cur].ff_pop(holder.input);
                debug_assert_eq!(popped, holder.flit, "verified front flit");
            }
            if m == 0 {
                break;
            }
            let Port::Mesh(dir) = out else {
                unreachable!("verified path")
            };
            upstream_in = Some(Port::Mesh(dir.opposite()));
            cur = self.neighbor[cur][out.index()] as usize;
        }

        // Ejection bookkeeping, in delivery order (nearest flit first).
        for slot in 0..holders {
            let holder = self.scratch_ff[slot];
            let flit = *self.arena.get(holder.flit);
            self.arena.free(holder.flit);
            self.stats.flits_delivered += 1;
            if flit.kind.is_tail() {
                self.stats.packets_delivered += 1;
            }
        }
        let progress = self.tracker.remove(&key).expect("present above");
        let end_to_end = last_delivery.saturating_sub(progress.created);
        let traversal =
            last_delivery.saturating_sub(progress.first_injection.unwrap_or(progress.created));
        self.stats
            .record_message(progress.flow, end_to_end, traversal);
        self.delivered.push(Delivered {
            message: key.1,
            src: key.0,
            dst,
            flow: progress.flow,
            created: progress.created,
            delivered: last_delivery,
        });
        self.active_routers.clear();
        self.cycle = last_delivery;
        self.stats.cycles = last_delivery;
        self.fast_forwards += 1;
        true
    }

    /// The enriched stall diagnostic for the current network state.
    fn stall_error(&self, drain_limit: u64) -> Error {
        let router_flits: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let link_flits: usize = self.links.iter().map(SimLink::in_flight).sum();
        let nic_flits: usize = self.nics.iter().map(Nic::pending_flits).sum();
        Error::SimulationStalled {
            drain_limit,
            cycle: self.cycle,
            buffered_flits: (router_flits + link_flits + nic_flits) as u64,
            stalled_routers: self
                .routers
                .iter()
                .filter(|r| r.buffered_flits() > 0)
                .count(),
            cause: self.stall_cause(),
        }
    }

    /// Classifies a failed drain: if any stuck flit's destination is
    /// unreachable from where the flit sits (its remaining route would cross
    /// failed hardware), the stall is a **partition**; otherwise it is a
    /// credit-cycle **deadlock** candidate.  A healthy network (no faults
    /// ever activated) always classifies as a deadlock candidate.
    fn stall_cause(&self) -> StallCause {
        let Some(tree) = &self.tree else {
            return StallCause::Deadlock;
        };
        let severed_at = |index: usize, id: FlitId| -> bool {
            let at = self
                .mesh
                .coord_of(NodeId(index))
                .expect("router index in mesh");
            match self.mesh.coord_of(self.arena.get(id).dst) {
                Ok(dst) => !tree.reachable(at, dst),
                Err(_) => true,
            }
        };
        let mut severed = 0u64;
        for (index, router) in self.routers.iter().enumerate() {
            severed += router
                .buffered_flit_ids()
                .filter(|&id| severed_at(index, id))
                .count() as u64;
        }
        for (link, sim_link) in self.links.iter().enumerate() {
            // In-flight flits are judged from the downstream router they are
            // about to enter.
            let (to, _) = self.link_dst[link];
            severed += sim_link
                .in_flight_ids()
                .filter(|&id| severed_at(to as usize, id))
                .count() as u64;
        }
        for (index, nic) in self.nics.iter().enumerate() {
            severed += nic
                .pending_ids()
                .filter(|&id| severed_at(index, id))
                .count() as u64;
        }
        if severed > 0 {
            StallCause::Partition {
                severed_flits: severed,
            }
        } else {
            StallCause::Deadlock
        }
    }

    /// Buffered-flit count per router, in router index order, skipping empty
    /// routers — the per-router occupancy snapshot failure logs attach to a
    /// stalled run.
    pub fn per_router_occupancy(&self) -> Vec<(NodeId, usize)> {
        self.routers
            .iter()
            .enumerate()
            .filter(|(_, r)| r.buffered_flits() > 0)
            .map(|(index, r)| (NodeId(index), r.buffered_flits()))
            .collect()
    }

    /// Steps until the network drains or `max_cycles` additional cycles have
    /// elapsed; returns `true` if it drained.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        self.step_until_quiescent(max_cycles).is_ok()
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Installs a fault plan: permanent link/router failures that activate at
    /// their scheduled cycles, with `policy` governing the retransmission of
    /// messages caught in a fault epoch.
    ///
    /// Faults whose activation is not in the future take effect immediately
    /// (install before offering traffic to start in a degraded topology);
    /// later activations fire at the top of their scheduled cycle, before any
    /// component acts.  Each activation performs a **full epoch flush**: every
    /// in-network flit is purged, every live message is NACKed back to its
    /// source NIC — re-offered after an exponential backoff under the same
    /// message id, or dropped as undeliverable once its endpoints are severed
    /// or its retry budget is exhausted — and all surviving routers switch to
    /// deadlock-free up*/down* tree routing over the surviving topology.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if a non-empty plan is already
    /// installed, or the plan's validation error if it does not fit the mesh.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, policy: RetransmitPolicy) -> Result<()> {
        if !self.plan.is_empty() {
            return Err(Error::InvalidConfig {
                reason: "fault plan already installed".into(),
            });
        }
        plan.validate(&self.mesh)?;
        self.plan = plan;
        self.policy = policy;
        let now = self.cycle;
        if self.plan.faults().iter().any(|f| f.activation <= now) {
            // Between steps the decisions of `now` are already taken, so the
            // pre-fault epoch closes *through* `now` (an in-step activation
            // closes through `now - 1` instead).
            self.apply_fault_state(now, now + 1);
        } else {
            self.pending_activation = self.plan.next_activation_after(now);
        }
        Ok(())
    }

    /// The installed fault plan (empty when none was installed).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The faults active right now, or `None` before the first activation.
    pub fn active_faults(&self) -> Option<&FaultSet> {
        self.faults.as_ref()
    }

    /// The fault-tolerant tree routing in force, or `None` while the network
    /// still routes XY (no activation has fired).
    pub fn tree_routing(&self) -> Option<&TreeRouting> {
        self.tree.as_ref()
    }

    /// Messages currently waiting out a retransmission backoff.
    pub fn retransmit_backlog(&self) -> usize {
        self.retransmit.len()
    }

    /// Applies every fault scheduled at or before `active_cycle` and flushes
    /// the epoch.  `replay_next` is the replay horizon that closes the
    /// pre-fault epoch: every router's lazily-skipped arbiter cycles up to
    /// `replay_next - 1` are settled against the *pre-purge* frozen state, so
    /// the dense and event-horizon kernels — bit-identical before the flush —
    /// remain bit-identical after it.
    fn apply_fault_state(&mut self, active_cycle: Cycle, replay_next: Cycle) {
        debug_assert!(
            self.scratch_wire.is_empty(),
            "activation runs before phase 1"
        );
        let faults = self.plan.active_at(&self.mesh, active_cycle);
        self.pending_activation = self.plan.next_activation_after(active_cycle);
        let tree = TreeRouting::new(&faults);

        // Close the pre-fault epoch: settle every router's skipped arbiter
        // cycles against the frozen pre-purge request state.
        for router in &mut self.routers {
            router.replay_idle(&self.arena, replay_next);
        }

        // Epoch flush: purge every queued and in-flight flit, reset credits
        // to construction values (everything is empty again), clear holds,
        // and swap the surviving routers to tree-routed LUTs.  Dead routers
        // keep their stale state — nothing routes to or through them again.
        let mut purged = Vec::new();
        // Degraded-mode reconfiguration covers arbitration, not just routes:
        // WaW quotas are a static function of the flow-to-route mapping, so
        // the surviving routers' arbiters are rebuilt from the survivors'
        // tree routes (round-robin arbiters carry no route-derived state and
        // keep their construction instances).
        let reweighted = (self.config.arbitration == ArbitrationPolicy::Waw).then(|| {
            let reroute = reroute_flows(&self.construction_flows, &tree)
                .expect("pairs the forest reports reachable always have a tree route");
            WeightTable::from_flow_set(&reroute.flows)
        });
        for (index, coord) in self.mesh.routers().enumerate() {
            let credits = self.construction_credits(coord);
            self.routers[index].purge_for_epoch(&credits, &mut purged);
            if tree.alive(coord) {
                if let Ok(lut) = tree.lut_for(coord) {
                    self.routers[index].set_route_lut(lut);
                }
                if let Some(weights) = &reweighted {
                    self.routers[index].reset_arbiters(self.config.arbitration, weights);
                }
            }
        }
        for link in &mut self.links {
            link.purge_into(&mut purged);
        }
        for nic in &mut self.nics {
            nic.purge_into(&mut purged);
        }
        self.stats.flits_purged += purged.len() as u64;
        for id in purged {
            self.arena.free(id);
        }
        debug_assert!(
            self.arena.is_empty(),
            "epoch flush frees every live flit at cycle {active_cycle}"
        );
        self.active_routers.clear();
        self.active_links.clear();
        self.active_nics.clear();

        // NACK every live message in deterministic (source, id) order:
        // deliverable pairs re-enter through the retransmission queue after
        // an exponential backoff; severed pairs and exhausted retry budgets
        // drop as undeliverable.
        let mut nacked: Vec<((NodeId, MessageId), MessageProgress)> =
            self.tracker.drain().collect();
        nacked.sort_unstable_by_key(|&(key, _)| key);
        for ((src, message), progress) in nacked {
            let reachable = match (self.mesh.coord_of(src), self.mesh.coord_of(progress.dst)) {
                (Ok(s), Ok(d)) => tree.reachable(s, d),
                _ => false,
            };
            if !reachable || progress.retries >= self.policy.max_retries {
                self.stats.messages_undeliverable += 1;
                continue;
            }
            self.stats.messages_retransmitted += 1;
            *self
                .stats
                .retransmits_by_flow
                .entry(progress.flow)
                .or_insert(0) += 1;
            self.retransmit.push(Retransmit {
                due: active_cycle.saturating_add(self.policy.backoff_delay(progress.retries)),
                src,
                dst: progress.dst,
                flow: progress.flow,
                message,
                regular_flits: progress.regular_flits,
                created: progress.created,
                retry: progress.retries,
            });
        }
        self.faults = Some(faults);
        self.tree = Some(tree);
    }

    /// Re-offers every retransmission whose backoff expired, in deterministic
    /// `(due, src, message)` order.  A later activation may have severed a
    /// pair after its NACK, so reachability is re-checked at release.
    fn release_due_retransmits(&mut self, now: Cycle) {
        if !self.retransmit.iter().any(|r| r.due <= now) {
            return;
        }
        let mut due: Vec<Retransmit> = Vec::new();
        let mut index = 0;
        while index < self.retransmit.len() {
            if self.retransmit[index].due <= now {
                due.push(self.retransmit.swap_remove(index));
            } else {
                index += 1;
            }
        }
        due.sort_unstable_by_key(|r| (r.due, r.src, r.message));
        for entry in due {
            let reachable = match (
                self.tree.as_ref(),
                self.mesh.coord_of(entry.src),
                self.mesh.coord_of(entry.dst),
            ) {
                (Some(tree), Ok(s), Ok(d)) => tree.reachable(s, d),
                (None, ..) => true,
                _ => false,
            };
            if !reachable {
                self.stats.messages_undeliverable += 1;
                continue;
            }
            let offered = self.nics[entry.src.index()].reoffer(
                &mut self.arena,
                entry.dst,
                entry.flow,
                entry.regular_flits,
                now,
                entry.message,
            );
            self.active_nics.insert(entry.src.index());
            self.tracker.insert(
                (entry.src, entry.message),
                MessageProgress {
                    flow: entry.flow,
                    dst: entry.dst,
                    created: entry.created,
                    first_injection: None,
                    expected_flits: offered.wire_flits,
                    received_flits: 0,
                    regular_flits: entry.regular_flits,
                    retries: entry.retry + 1,
                },
            );
        }
    }

    /// The construction-time output-credit array of `coord` — what the
    /// constructor derived from [`BufferConfig::credits_towards`], recomputed
    /// for the epoch-flush credit reset (with every ring empty, credits
    /// return to their full construction values).
    fn construction_credits(&self, coord: Coord) -> [u32; Port::COUNT] {
        let node = self.mesh.node_id(coord).expect("router coord in mesh");
        let mut output_credits = [0u32; Port::COUNT];
        for port in Port::ALL {
            output_credits[port.index()] = match port {
                Port::Mesh(dir) => match self.mesh.neighbor(coord, dir) {
                    Some(downstream) => self.buffers.credits_towards(
                        self.mesh.node_id(downstream).expect("neighbour in mesh"),
                        Port::Mesh(dir.opposite()),
                    ),
                    None => 0,
                },
                Port::Local => self.buffers.depth(node, Port::Local),
            };
        }
        output_credits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(side: u16, config: NocConfig) -> Network {
        let mesh = Mesh::square(side).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        Network::new(mesh, config, &flows).unwrap()
    }

    fn node(network: &Network, row: u16, col: u16) -> NodeId {
        network
            .mesh()
            .node_id(Coord::from_row_col(row, col))
            .unwrap()
    }

    #[test]
    fn single_message_is_delivered() {
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(1_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        assert_eq!(noc.stats().flits_delivered, 4);
        assert_eq!(noc.stats().packets_delivered, 1);
    }

    #[test]
    fn wap_message_is_delivered_with_overhead() {
        let mut noc = build(4, NocConfig::waw_wap());
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(1_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        // The 4-flit message became 5 single-flit packets.
        assert_eq!(noc.stats().flits_delivered, 5);
        assert_eq!(noc.stats().packets_delivered, 5);
    }

    #[test]
    fn zero_load_latency_matches_hop_count() {
        // A single message in an empty network: traversal latency is the number
        // of routers plus link hops plus serialisation.
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 1).unwrap();
        assert!(noc.run_until_drained(100));
        let flow = noc.flow_id(src, dst);
        let latency = noc.stats().flow_traversal_latency(flow).unwrap().max;
        // 3 hops with a single-cycle router and single-cycle links: the flit
        // advances one hop per cycle and is then ejected.
        assert!((3..=10).contains(&latency), "latency {latency}");
    }

    #[test]
    fn flit_conservation_under_random_offers() {
        let mut noc = build(4, NocConfig::regular(4));
        let dst = node(&noc, 0, 0);
        let mut offered_flits = 0;
        for row in 0..4u16 {
            for col in 0..4u16 {
                if row == 0 && col == 0 {
                    continue;
                }
                let src = node(&noc, row, col);
                noc.offer(src, dst, 4).unwrap();
                offered_flits += 4;
            }
        }
        assert!(noc.run_until_drained(10_000));
        assert_eq!(noc.stats().flits_delivered, offered_flits);
        assert_eq!(noc.stats().messages_delivered, 15);
        assert_eq!(noc.stats().messages_offered, 15);
        // Every arena slot was recycled back to the free list.
        assert!(noc.arena().is_empty());
    }

    #[test]
    fn self_messages_and_bad_sizes_rejected() {
        let mut noc = build(2, NocConfig::regular(4));
        let a = node(&noc, 0, 0);
        let b = node(&noc, 1, 1);
        assert!(noc.offer(a, a, 1).is_err());
        assert!(noc.offer(a, b, 0).is_err());
        assert!(noc.offer(a, b, 1).is_ok());
    }

    #[test]
    fn contention_increases_latency() {
        // One message alone vs the same message while every node hammers the
        // destination: the contended latency must be strictly larger.
        let solo_latency = {
            let mut noc = build(4, NocConfig::regular(4));
            let src = node(&noc, 3, 3);
            let dst = node(&noc, 0, 0);
            noc.offer(src, dst, 4).unwrap();
            noc.run_until_drained(10_000);
            let flow = noc.flow_id(src, dst);
            noc.stats().flow_traversal_latency(flow).unwrap().max
        };
        let contended_latency = {
            let mut noc = build(4, NocConfig::regular(4));
            let dst = node(&noc, 0, 0);
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    for _ in 0..4 {
                        noc.offer(node(&noc, row, col), dst, 4).unwrap();
                    }
                }
            }
            noc.run_until_drained(100_000);
            let src = node(&noc, 3, 3);
            let flow = noc.flow_id(src, dst);
            noc.stats().flow_traversal_latency(flow).unwrap().max
        };
        assert!(
            contended_latency > solo_latency,
            "contended {contended_latency} vs solo {solo_latency}"
        );
    }

    #[test]
    fn stats_track_port_utilisation() {
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        noc.run_until_drained(1_000);
        // Every link along the row carried the 4 flits.
        let flits = noc.port_flits(Coord::from_row_col(0, 2), Port::Mesh(Direction::West));
        assert_eq!(flits, 4);
        // The ejection port of the destination also saw them.
        let ejected = noc.port_flits(Coord::from_row_col(0, 0), Port::Local);
        assert_eq!(ejected, 4);
        assert!(noc.port_utilisation(Coord::from_row_col(0, 0), Port::Local) > 0.0);
        // Out-of-mesh coordinates read as zero.
        assert_eq!(noc.port_flits(Coord::new(9, 9), Port::Local), 0);
    }

    #[test]
    fn drained_network_reports_idle() {
        let mut noc = build(3, NocConfig::waw_wap());
        assert!(noc.is_drained());
        let src = node(&noc, 2, 2);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(!noc.is_drained());
        assert!(noc.run_until_drained(1_000));
        assert!(noc.is_drained());
    }

    #[test]
    fn stall_error_reports_cycle_and_occupancy() {
        // Not a real deadlock (XY routing is deadlock free): an *undersized*
        // drain budget triggers the same diagnostic path.
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        let err = noc.step_until_quiescent(1).unwrap_err();
        match err {
            Error::SimulationStalled {
                drain_limit,
                cycle,
                buffered_flits,
                stalled_routers: _,
                cause,
            } => {
                assert_eq!(drain_limit, 1);
                assert_eq!(cycle, noc.cycle());
                assert!(buffered_flits > 0, "traffic is still in the system");
                // No fault was ever activated: the stall classifies as a
                // deadlock candidate, never a partition.
                assert_eq!(cause, StallCause::Deadlock);
            }
            other => panic!("expected SimulationStalled, got {other:?}"),
        }
        assert!(!noc.per_router_occupancy().is_empty() || noc.nic_backlog(src) > 0);
        // With a real budget the same network drains cleanly.
        assert!(noc.step_until_quiescent(1_000).is_ok());
        assert!(noc.per_router_occupancy().is_empty());
    }

    #[test]
    fn drain_delivered_into_keeps_capacity() {
        let mut noc = build(3, NocConfig::regular(4));
        let src = node(&noc, 2, 2);
        let dst = node(&noc, 0, 0);
        let mut sink = Vec::new();
        for round in 0..3 {
            noc.offer(src, dst, 2).unwrap();
            assert!(noc.run_until_drained(1_000));
            noc.drain_delivered_into(&mut sink);
            assert_eq!(sink.len(), round + 1);
        }
        assert_eq!(noc.take_delivered(), Vec::new());
        assert!(sink.iter().all(|d| d.src == src && d.dst == dst));
    }

    #[test]
    fn default_buffer_config_matches_two_scalar_construction() {
        // `Network::new` and an explicit uniform BufferConfig at the default
        // depth must be indistinguishable, observation for observation.
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let config = NocConfig::waw_wap();
        let run = |mut noc: Network| {
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    let src = noc.mesh().node_id(Coord::from_row_col(row, col)).unwrap();
                    let dst = noc.mesh().node_id(Coord::from_row_col(0, 0)).unwrap();
                    noc.offer(src, dst, 2).unwrap();
                }
            }
            assert!(noc.run_until_drained(100_000));
            noc.stats().clone()
        };
        let classic = run(Network::new(mesh, config, &flows).unwrap());
        let explicit = run(Network::with_buffers(
            mesh,
            config,
            &flows,
            &BufferConfig::uniform(config.input_buffer_flits),
        )
        .unwrap());
        assert_eq!(classic.traversal_latency, explicit.traversal_latency);
        assert_eq!(classic.flits_delivered, explicit.flits_delivered);
        assert_eq!(classic.cycles, explicit.cycles);
    }

    #[test]
    fn heterogeneous_credits_follow_the_downstream_ring() {
        // Deepen a single input buffer: only the one upstream output facing
        // it gains credits (the constructor invariant assertion would abort
        // on any divergence).
        let mesh = Mesh::square(3).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let center = mesh.node_id(Coord::from_row_col(1, 1)).unwrap();
        let buffers = BufferConfig::uniform(2).with_buffer_depth(
            &mesh,
            center,
            Port::Mesh(Direction::East),
            7,
        );
        let noc = Network::with_buffers(mesh, NocConfig::regular(4), &flows, &buffers).unwrap();
        // R(1,1)'s *east-facing input* receives from its eastern neighbour
        // R(2,1), whose *west output* must now hold 7 credits.
        let east_neighbor = mesh.node_id(Coord::from_row_col(1, 2)).unwrap();
        assert_eq!(
            noc.routers[east_neighbor.index()].credits(Port::Mesh(Direction::West), 0),
            7
        );
        assert_eq!(
            noc.routers[center.index()].input_capacity(Port::Mesh(Direction::East), 0),
            7
        );
        // Every other port keeps the base depth.
        assert_eq!(
            noc.routers[center.index()].input_capacity(Port::Local, 0),
            2
        );
        assert_eq!(noc.buffers().max_depth(), 7);
    }

    #[test]
    fn depth_one_network_still_delivers() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        for config in [NocConfig::regular(4), NocConfig::waw_wap()] {
            let mut noc =
                Network::with_buffers(mesh, config, &flows, &BufferConfig::uniform(1)).unwrap();
            let dst = mesh.node_id(Coord::from_row_col(0, 0)).unwrap();
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    let src = mesh.node_id(Coord::from_row_col(row, col)).unwrap();
                    noc.offer(src, dst, 4).unwrap();
                }
            }
            assert!(noc.run_until_drained(200_000), "{}", config.label());
            assert_eq!(noc.stats().messages_delivered, 15);
            assert!(noc.arena().is_empty());
        }
    }

    #[test]
    fn cycle_zero_router_fault_reroutes_and_rejects_unreachable() {
        let mut noc = build(4, NocConfig::regular(4));
        let mut plan = FaultPlan::new();
        plan.fail_router(Coord::from_row_col(1, 1), 0);
        noc.install_fault_plan(plan, RetransmitPolicy::default())
            .unwrap();
        assert!(
            noc.tree_routing().is_some(),
            "activation applied at install"
        );
        let dead = node(&noc, 1, 1);
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        // Endpoints on the dead router are unreachable in either direction.
        assert!(matches!(
            noc.offer(src, dead, 2),
            Err(Error::Unreachable { .. })
        ));
        assert!(matches!(
            noc.offer(dead, dst, 2),
            Err(Error::Unreachable { .. })
        ));
        // Surviving pairs deliver over the tree-routed detour.
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(10_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        assert_eq!(noc.stats().messages_undeliverable, 0);
        // A second plan cannot be installed over the first.
        assert!(noc
            .install_fault_plan(FaultPlan::new(), RetransmitPolicy::default())
            .is_err());
    }

    #[test]
    fn midrun_link_fault_retransmits_under_original_id() {
        let mut noc = build(4, NocConfig::regular(4));
        let mut plan = FaultPlan::new();
        // The XY route (0,3) -> (0,0) runs west along row 0; cut it mid-worm.
        plan.fail_link(Coord::from_row_col(0, 2), Direction::West, 3);
        noc.install_fault_plan(plan, RetransmitPolicy::default())
            .unwrap();
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        let id = noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(10_000));
        let stats = noc.stats();
        assert_eq!(stats.messages_retransmitted, 1, "worm caught in the flush");
        assert_eq!(stats.messages_delivered, 1);
        assert_eq!(stats.messages_undeliverable, 0);
        assert!(stats.flits_purged > 0, "in-flight flits were purged");
        let flow = noc.flow_id(src, dst);
        assert_eq!(noc.stats().retransmits_by_flow.get(&flow), Some(&1));
        let delivered = noc.take_delivered();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, id, "same message id after the NACK");
        assert_eq!(delivered[0].created, 0, "latency spans the outage");
    }

    #[test]
    fn destination_death_drops_undeliverable_and_still_drains() {
        let mut noc = build(4, NocConfig::regular(4));
        let mut plan = FaultPlan::new();
        plan.fail_router(Coord::from_row_col(0, 0), 3);
        noc.install_fault_plan(plan, RetransmitPolicy::default())
            .unwrap();
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        // The network must drain — dropping the severed message — rather
        // than wedge on traffic that can never arrive.
        assert!(noc.run_until_drained(10_000));
        assert_eq!(noc.stats().messages_delivered, 0);
        assert_eq!(noc.stats().messages_undeliverable, 1);
        assert_eq!(noc.stats().messages_retransmitted, 0);
        assert!(noc.arena().is_empty());
    }

    #[test]
    fn exhausted_retry_budget_drops_the_message() {
        let mut noc = build(4, NocConfig::regular(4));
        let mut plan = FaultPlan::new();
        plan.fail_link(Coord::from_row_col(0, 2), Direction::West, 3);
        let policy = RetransmitPolicy {
            max_retries: 0,
            ..RetransmitPolicy::default()
        };
        noc.install_fault_plan(plan, policy).unwrap();
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(10_000));
        assert_eq!(noc.stats().messages_delivered, 0);
        assert_eq!(noc.stats().messages_undeliverable, 1);
    }

    #[test]
    fn kernels_agree_across_midrun_fault_epoch() {
        // The fault epoch flush must preserve the dense / event-horizon
        // bit-identity contract: same deliveries, same cycles, same latencies
        // through an activation that truncates in-flight worms.
        let run = |dense: bool| {
            let mut noc = build(4, NocConfig::waw_wap());
            if dense {
                noc.set_dense_kernel(true);
            }
            let mut plan = FaultPlan::new();
            plan.fail_link(Coord::from_row_col(1, 1), Direction::East, 5);
            plan.fail_router(Coord::from_row_col(2, 2), 40);
            noc.install_fault_plan(plan, RetransmitPolicy::default())
                .unwrap();
            let dst = node(&noc, 0, 0);
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    let src = node(&noc, row, col);
                    if noc.offer(src, dst, 3).is_err() {
                        unreachable!("all pairs reachable before activation");
                    }
                }
            }
            noc.step_until_quiescent(50_000).unwrap();
            let delivered = noc.take_delivered();
            (
                noc.cycle(),
                noc.stats().flits_delivered,
                noc.stats().messages_delivered,
                noc.stats().messages_retransmitted,
                noc.stats().messages_undeliverable,
                noc.stats().flits_purged,
                noc.stats().overall_traversal_latency(),
                delivered,
            )
        };
        let horizon = run(false);
        let dense = run(true);
        assert_eq!(horizon, dense);
    }

    #[test]
    fn idle_heavy_run_visits_no_components() {
        // After draining, a million idle steps are pure counter increments:
        // the arena holds no live flits and the worklists stay empty.
        let mut noc = build(8, NocConfig::waw_wap());
        let src = node(&noc, 7, 7);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(10_000));
        let delivered = noc.stats().flits_delivered;
        noc.run_for(100_000);
        assert_eq!(noc.stats().flits_delivered, delivered);
        assert!(noc.is_drained());
        assert_eq!(noc.stats().cycles, noc.cycle());
    }
}
