//! The complete NoC: routers, links, NICs and end-to-end message tracking,
//! executed by an allocation-free **active-set kernel**.
//!
//! # Kernel design
//!
//! Flits live in one contiguous [`FlitArena`]; every queue (router input
//! buffers, link pipelines, NIC injection queues) holds 4-byte [`FlitId`]
//! handles.  [`Network::step`] runs the same four phases as the dense
//! reference kernel — router decisions, link deliveries, NIC injection,
//! ejection bookkeeping — but each phase only visits the components on its
//! *active set*, a dirty-bit worklist maintained incrementally:
//!
//! * a **router** is active while it buffers at least one flit (routers are
//!   visited in ascending index order, preserving the reference kernel's
//!   same-cycle credit-return ordering bit for bit; skipped idle cycles are
//!   replayed into the WaW arbiters in O(1) — see [`Router::decide`]);
//! * a **link** is active while flits are in flight on it;
//! * a **NIC** is active while flits await injection.
//!
//! Idle components cost nothing, so a closed-loop probing campaign on a large
//! mesh scales with live traffic instead of mesh size, and quiescence
//! ([`Network::is_drained`]) is an O(1) check: empty worklists plus an empty
//! message tracker.  After construction and a warm-up in which scratch
//! buffers and stats tables reach their steady-state footprint, `step`
//! performs **zero heap allocations** (enforced by the `zero_alloc`
//! integration test with a counting global allocator).

use std::collections::HashMap;

use wnoc_core::flow::FlowSet;
use wnoc_core::packetization::Packetizer;
use wnoc_core::weights::WeightTable;
use wnoc_core::{
    BufferConfig, Cycle, Direction, Error, FlowId, Mesh, MessageId, NocConfig, NodeId, Port, Result,
};

use crate::arena::{FlitArena, FlitId};
use crate::hash::FxBuildHasher;
use crate::link::SimLink;
use crate::nic::Nic;
use crate::router::{Forward, Router};
use crate::stats::NetworkStats;

/// Sentinel for "no neighbour / no link" in the per-router lookup tables.
const NONE: u32 = u32::MAX;

/// Progress of one message through the network.
#[derive(Debug, Clone, Copy)]
struct MessageProgress {
    flow: FlowId,
    dst: NodeId,
    created: Cycle,
    first_injection: Option<Cycle>,
    expected_flits: u32,
    received_flits: u32,
}

/// A message that has been completely delivered to its destination NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Message id (unique per source NIC).
    pub message: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Flow the message belonged to.
    pub flow: FlowId,
    /// Cycle the message was offered to the source NIC.
    pub created: Cycle,
    /// Cycle its last flit was ejected at the destination.
    pub delivered: Cycle,
}

/// A membership-tracked worklist of component indices.
///
/// `take` hands the current membership to the caller's scratch vector (both
/// vectors keep their capacity, so steady-state stepping never allocates);
/// components that remain busy are re-inserted during the sweep.
#[derive(Debug, Default)]
struct ActiveSet {
    list: Vec<u32>,
    member: Vec<bool>,
}

impl ActiveSet {
    fn with_capacity(len: usize) -> Self {
        Self {
            list: Vec::with_capacity(len),
            member: vec![false; len],
        }
    }

    fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    fn insert(&mut self, index: usize) {
        if !self.member[index] {
            self.member[index] = true;
            self.list.push(index as u32);
        }
    }

    /// Moves the membership list into `scratch` (cleared first); membership
    /// bits stay set and must be maintained by the sweep via
    /// [`ActiveSet::keep`] / [`ActiveSet::remove`].
    fn take(&mut self, scratch: &mut Vec<u32>) {
        scratch.clear();
        std::mem::swap(&mut self.list, scratch);
    }

    /// Re-inserts a still-busy component during a sweep (its bit is set).
    fn keep(&mut self, index: usize) {
        debug_assert!(self.member[index]);
        self.list.push(index as u32);
    }

    /// Drops a drained component during a sweep.
    fn remove(&mut self, index: usize) {
        debug_assert!(self.member[index]);
        self.member[index] = false;
    }
}

/// A cycle-accurate wormhole mesh NoC.
///
/// The network is driven externally: callers offer messages with
/// [`Network::offer`] and advance time with [`Network::step`]; statistics are
/// available at any point through [`Network::stats`].
///
/// # Examples
///
/// ```
/// use wnoc_core::{Coord, NocConfig, Mesh};
/// use wnoc_core::flow::FlowSet;
/// use wnoc_sim::network::Network;
///
/// let mesh = Mesh::square(4)?;
/// let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0))?;
/// let mut noc = Network::new(mesh, NocConfig::waw_wap(), &flows)?;
/// let src = mesh.node_id(Coord::from_row_col(3, 3))?;
/// let dst = mesh.node_id(Coord::from_row_col(0, 0))?;
/// noc.offer(src, dst, 4)?;
/// noc.run_until_drained(10_000);
/// assert_eq!(noc.stats().messages_delivered, 1);
/// # Ok::<(), wnoc_core::Error>(())
/// ```
#[derive(Debug)]
pub struct Network {
    mesh: Mesh,
    config: NocConfig,
    buffers: BufferConfig,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    /// All unidirectional links, indexed densely.
    links: Vec<SimLink>,
    /// `(downstream router index, downstream input port)` per link.
    link_dst: Vec<(u32, Port)>,
    /// Outgoing link index per `(router, output port)`; [`NONE`] at edges.
    link_out: Vec<[u32; Port::COUNT]>,
    /// Neighbour router index per `(router, mesh port)`; [`NONE`] at edges.
    neighbor: Vec<[u32; Port::COUNT]>,
    /// The flit slab shared by every queue in the network.
    arena: FlitArena,
    active_routers: ActiveSet,
    active_links: ActiveSet,
    active_nics: ActiveSet,
    /// Reusable sweep scratch (the double buffer of each active set).
    scratch_routers: Vec<u32>,
    scratch_links: Vec<u32>,
    scratch_nics: Vec<u32>,
    /// Reusable per-router forwarding scratch.
    scratch_forwards: Vec<Forward>,
    /// Flits ejected this cycle, in router index order.
    scratch_ejected: Vec<FlitId>,
    /// Flow id lookup for (src, dst) pairs, extended on demand.
    flow_ids: HashMap<(NodeId, NodeId), FlowId, FxBuildHasher>,
    next_flow: usize,
    /// In-flight message progress; touched on every offer, injection and
    /// ejection, hence the fast deterministic hasher.
    tracker: HashMap<(NodeId, MessageId), MessageProgress, FxBuildHasher>,
    delivered: Vec<Delivered>,
    stats: NetworkStats,
    cycle: Cycle,
}

impl Network {
    /// Builds a network over `mesh` with the given design configuration.
    ///
    /// `flows` describes the platform's communication flows; it is used to
    /// derive the WaW arbitration weights (and pre-registers flow ids for
    /// statistics).  Under round-robin arbitration the weights are ignored but
    /// the flow ids are still registered.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid.
    pub fn new(mesh: Mesh, config: NocConfig, flows: &FlowSet) -> Result<Self> {
        let buffers = BufferConfig::uniform(config.input_buffer_flits);
        Self::with_buffers(mesh, config, flows, &buffers)
    }

    /// Builds a network whose router input buffers follow `buffers` instead
    /// of the uniform [`NocConfig::input_buffer_flits`] depth.
    ///
    /// Buffer depths size the input rings; every credit counter is *derived*
    /// from the downstream neighbour's configured depth through
    /// [`BufferConfig::credits_towards`] — the single source of truth — and
    /// the construction asserts, link by link, that each output's credits
    /// equal the capacity of the input buffer it feeds.  The active-set
    /// kernel's invariants (arena slab, dirty-bit worklists, zero steady-state
    /// allocations) are depth-independent; a uniform config at the default
    /// depth is bit-for-bit identical to [`Network::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid or
    /// `buffers` does not cover `mesh`.
    pub fn with_buffers(
        mesh: Mesh,
        config: NocConfig,
        flows: &FlowSet,
        buffers: &BufferConfig,
    ) -> Result<Self> {
        config.validate()?;
        buffers.validate(&mesh)?;
        let weights = WeightTable::from_flow_set(flows);
        let count = mesh.router_count();
        let mut routers = Vec::with_capacity(count);
        let mut nics = Vec::with_capacity(count);
        let mut links = Vec::with_capacity(mesh.link_count());
        let mut link_dst = Vec::with_capacity(mesh.link_count());
        let mut link_out = vec![[NONE; Port::COUNT]; count];
        let mut neighbor = vec![[NONE; Port::COUNT]; count];
        for (index, coord) in mesh.routers().enumerate() {
            let node = mesh.node_id(coord)?;
            let mut input_depths = [1u32; Port::COUNT];
            let mut output_credits = [0u32; Port::COUNT];
            for port in Port::ALL {
                input_depths[port.index()] = buffers.depth(node, port);
                // Credits are the downstream input buffer's depth: the
                // neighbour's facing port for mesh outputs, this router's own
                // local buffer for the (never credit-limited) ejection port.
                output_credits[port.index()] = match port {
                    Port::Mesh(dir) => match mesh.neighbor(coord, dir) {
                        Some(downstream) => buffers
                            .credits_towards(mesh.node_id(downstream)?, Port::Mesh(dir.opposite())),
                        None => 0,
                    },
                    Port::Local => buffers.depth(node, Port::Local),
                };
            }
            routers.push(Router::new(
                coord,
                &mesh,
                config.arbitration,
                &weights,
                &input_depths,
                &output_credits,
            ));
            nics.push(Nic::new(
                node,
                Packetizer::new(config.packetization, config.geometry)?,
            ));
            for dir in Direction::ALL {
                let Some(downstream) = mesh.neighbor(coord, dir) else {
                    continue;
                };
                let downstream_index = mesh.node_id(downstream)?.index();
                let port = Port::Mesh(dir).index();
                neighbor[index][port] = downstream_index as u32;
                link_out[index][port] = links.len() as u32;
                links.push(SimLink::new(config.timing.link_cycles));
                link_dst.push((downstream_index as u32, Port::Mesh(dir.opposite())));
            }
        }
        // Constructor invariant: credit counters agree with the rings they
        // guard.  With heterogeneous depths a divergence here would mean
        // silent flow-control corruption (overflowing `Router::accept`), so
        // the check is unconditional, not debug-only.
        for (index, coord) in mesh.routers().enumerate() {
            for dir in Direction::ALL {
                let Some(downstream) = mesh.neighbor(coord, dir) else {
                    continue;
                };
                let downstream_index = mesh.node_id(downstream)?.index();
                let credits = routers[index].credits(Port::Mesh(dir));
                let capacity = routers[downstream_index].input_capacity(Port::Mesh(dir.opposite()));
                assert_eq!(
                    credits as usize, capacity,
                    "credits of {coord} towards {dir} diverge from the downstream ring"
                );
            }
        }
        let mut flow_ids: HashMap<_, _, FxBuildHasher> = HashMap::default();
        for (id, flow) in flows.iter() {
            flow_ids.insert((flow.src, flow.dst), id);
        }
        let next_flow = flows.len();
        let link_count = links.len();
        Ok(Self {
            mesh,
            config,
            buffers: buffers.clone(),
            routers,
            nics,
            links,
            link_dst,
            link_out,
            neighbor,
            arena: FlitArena::new(),
            active_routers: ActiveSet::with_capacity(count),
            active_links: ActiveSet::with_capacity(link_count),
            active_nics: ActiveSet::with_capacity(count),
            scratch_routers: Vec::with_capacity(count),
            scratch_links: Vec::with_capacity(link_count),
            scratch_nics: Vec::with_capacity(count),
            scratch_forwards: Vec::with_capacity(Port::COUNT),
            scratch_ejected: Vec::with_capacity(count),
            flow_ids,
            next_flow,
            tracker: HashMap::default(),
            delivered: Vec::new(),
            stats: NetworkStats::new(),
            cycle: 0,
        })
    }

    /// Drains and returns the messages delivered since the last call.
    ///
    /// Prefer [`Network::drain_delivered_into`] in loops: this convenience
    /// hands ownership out, so the internal buffer restarts at zero capacity.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Appends the messages delivered since the last drain to `out`, keeping
    /// the internal buffer's capacity (the allocation-free variant for
    /// closed-loop drivers that poll deliveries every cycle).
    pub fn drain_delivered_into(&mut self, out: &mut Vec<Delivered>) {
        out.append(&mut self.delivered);
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The design configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The router input-buffer configuration the network was built with.
    pub fn buffers(&self) -> &BufferConfig {
        &self.buffers
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The flit arena (diagnostics: live flit count, slab high-water mark).
    pub fn arena(&self) -> &FlitArena {
        &self.arena
    }

    /// The flow id used for messages from `src` to `dst`, registering a new one
    /// if this pair was not part of the construction flow set.
    pub fn flow_id(&mut self, src: NodeId, dst: NodeId) -> FlowId {
        if let Some(&id) = self.flow_ids.get(&(src, dst)) {
            return id;
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flow_ids.insert((src, dst), id);
        id
    }

    /// Number of flits queued at the NIC of `node` and not yet injected.
    pub fn nic_backlog(&self, node: NodeId) -> usize {
        self.nics[node.index()].pending_flits()
    }

    /// Offers a message of `size_flits` flits (regular-packetization size) from
    /// `src` to `dst`.  Returns the message id assigned by the source NIC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SelfFlow`] if `src == dst`, or an out-of-bounds error if
    /// either node does not exist.
    pub fn offer(&mut self, src: NodeId, dst: NodeId, size_flits: u32) -> Result<MessageId> {
        if src == dst {
            return Err(Error::SelfFlow { node: src });
        }
        self.mesh.coord_of(src)?;
        self.mesh.coord_of(dst)?;
        if size_flits == 0 {
            return Err(Error::EmptyMessage);
        }
        let flow = self.flow_id(src, dst);
        let now = self.cycle;
        let offered = self.nics[src.index()].offer(&mut self.arena, dst, flow, size_flits, now);
        self.active_nics.insert(src.index());
        self.stats.messages_offered += 1;
        self.tracker.insert(
            (src, offered.id),
            MessageProgress {
                flow,
                dst,
                created: now,
                first_injection: None,
                expected_flits: offered.wire_flits,
                received_flits: 0,
            },
        );
        Ok(offered.id)
    }

    /// Advances the network by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;

        // Phase 1: busy routers take their forwarding decisions and the
        // network applies them (link pushes, ejections, credit returns).
        // Ascending index order matches the dense reference kernel, so
        // same-cycle credit visibility between routers is preserved exactly.
        self.active_routers.take(&mut self.scratch_routers);
        self.scratch_routers.sort_unstable();
        for slot in 0..self.scratch_routers.len() {
            let index = self.scratch_routers[slot] as usize;
            self.scratch_forwards.clear();
            self.routers[index].decide(&self.arena, now, &mut self.scratch_forwards);
            for entry in 0..self.scratch_forwards.len() {
                let fwd = self.scratch_forwards[entry];
                let coord = self.routers[index].coord();
                self.stats.record_port_flit(coord, fwd.output);
                // Return a credit to the upstream router that fed this input.
                if let Port::Mesh(dir) = fwd.input {
                    let upstream = self.neighbor[index][fwd.input.index()];
                    debug_assert_ne!(upstream, NONE, "mesh input implies a neighbour");
                    self.routers[upstream as usize].credit_return(Port::Mesh(dir.opposite()));
                }
                match fwd.output {
                    Port::Local => self.scratch_ejected.push(fwd.flit),
                    Port::Mesh(_) => {
                        let link = self.link_out[index][fwd.output.index()];
                        debug_assert_ne!(link, NONE, "output port implies link");
                        self.links[link as usize]
                            .push(now, fwd.flit)
                            .expect("one forward per output per cycle");
                        self.active_links.insert(link as usize);
                    }
                }
            }
            if self.routers[index].buffered_flits() > 0 {
                self.active_routers.keep(index);
            } else {
                self.active_routers.remove(index);
            }
        }

        // Phase 2: active links advance; arriving flits enter the downstream
        // buffers.  Each link feeds a distinct (router, input) pair, so the
        // sweep order is immaterial.
        self.active_links.take(&mut self.scratch_links);
        for slot in 0..self.scratch_links.len() {
            let index = self.scratch_links[slot] as usize;
            if let Some(id) = self.links[index].advance(now) {
                let (to, input) = self.link_dst[index];
                self.routers[to as usize]
                    .accept(input, id)
                    .expect("credit flow control guarantees buffer space");
                self.active_routers.insert(to as usize);
            }
            if self.links[index].in_flight() > 0 {
                self.active_links.keep(index);
            } else {
                self.active_links.remove(index);
            }
        }

        // Phase 3: backlogged NICs inject into the local input buffers.
        self.active_nics.take(&mut self.scratch_nics);
        self.scratch_nics.sort_unstable();
        for slot in 0..self.scratch_nics.len() {
            let index = self.scratch_nics[slot] as usize;
            let src = self.nics[index].node();
            while self.routers[index].free_slots(Port::Local) > 0 {
                if self.nics[index].peek().is_none() {
                    break;
                }
                let id = self.nics[index]
                    .inject(&mut self.arena, now)
                    .expect("peeked flit exists");
                let flit = self.arena.get(id);
                if let Some(progress) = self.tracker.get_mut(&(src, flit.message)) {
                    if progress.first_injection.is_none() {
                        progress.first_injection = Some(now);
                    }
                }
                self.stats.flits_injected += 1;
                if flit.kind.is_head() {
                    self.stats.packets_injected += 1;
                }
                self.routers[index]
                    .accept(Port::Local, id)
                    .expect("free slot checked above");
                self.active_routers.insert(index);
            }
            if self.nics[index].pending_flits() > 0 {
                self.active_nics.keep(index);
            } else {
                self.active_nics.remove(index);
            }
        }

        // Phase 4: ejections complete messages and release arena slots.
        for slot in 0..self.scratch_ejected.len() {
            let id = self.scratch_ejected[slot];
            let flit = *self.arena.get(id);
            self.arena.free(id);
            self.stats.flits_delivered += 1;
            if flit.kind.is_tail() {
                self.stats.packets_delivered += 1;
            }
            let key = (flit.src, flit.message);
            let finished = if let Some(progress) = self.tracker.get_mut(&key) {
                progress.received_flits += 1;
                progress.received_flits >= progress.expected_flits
            } else {
                false
            };
            if finished {
                let progress = self.tracker.remove(&key).expect("present above");
                let end_to_end = now.saturating_sub(progress.created);
                let traversal =
                    now.saturating_sub(progress.first_injection.unwrap_or(progress.created));
                self.stats
                    .record_message(progress.flow, end_to_end, traversal);
                self.delivered.push(Delivered {
                    message: flit.message,
                    src: flit.src,
                    dst: progress.dst,
                    flow: progress.flow,
                    created: progress.created,
                    delivered: now,
                });
            }
        }
        self.scratch_ejected.clear();

        self.stats.cycles = self.cycle;
    }

    /// Returns `true` when no flit is buffered, in flight or awaiting injection
    /// anywhere in the network.
    ///
    /// With the active-set kernel this is an O(1) check: every component
    /// holding traffic is on a worklist, and every tracked message still has
    /// flits somewhere in the system.
    pub fn is_drained(&self) -> bool {
        let quiescent = self.active_routers.is_empty()
            && self.active_links.is_empty()
            && self.active_nics.is_empty()
            && self.tracker.is_empty();
        debug_assert_eq!(
            quiescent,
            self.nics.iter().all(Nic::is_drained)
                && self.routers.iter().all(Router::is_idle)
                && self.links.iter().all(|l| l.in_flight() == 0)
                && self.tracker.is_empty()
                && self.arena.is_empty(),
            "active sets drifted from component state at cycle {}",
            self.cycle
        );
        quiescent
    }

    /// Steps until the network is quiescent or `max_cycles` additional cycles
    /// have elapsed.
    ///
    /// This is the single drain driver every simulation loop builds on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SimulationStalled`] — enriched with the stuck cycle,
    /// the number of flits still in the system and the number of routers
    /// holding them — if the network fails to drain within the budget.
    pub fn step_until_quiescent(&mut self, max_cycles: u64) -> Result<()> {
        for _ in 0..max_cycles {
            if self.is_drained() {
                return Ok(());
            }
            self.step();
        }
        if self.is_drained() {
            return Ok(());
        }
        Err(self.stall_error(max_cycles))
    }

    /// The enriched stall diagnostic for the current network state.
    fn stall_error(&self, drain_limit: u64) -> Error {
        let router_flits: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let link_flits: usize = self.links.iter().map(SimLink::in_flight).sum();
        let nic_flits: usize = self.nics.iter().map(Nic::pending_flits).sum();
        Error::SimulationStalled {
            drain_limit,
            cycle: self.cycle,
            buffered_flits: (router_flits + link_flits + nic_flits) as u64,
            stalled_routers: self
                .routers
                .iter()
                .filter(|r| r.buffered_flits() > 0)
                .count(),
        }
    }

    /// Buffered-flit count per router, in router index order, skipping empty
    /// routers — the per-router occupancy snapshot failure logs attach to a
    /// stalled run.
    pub fn per_router_occupancy(&self) -> Vec<(NodeId, usize)> {
        self.routers
            .iter()
            .enumerate()
            .filter(|(_, r)| r.buffered_flits() > 0)
            .map(|(index, r)| (NodeId(index), r.buffered_flits()))
            .collect()
    }

    /// Steps until the network drains or `max_cycles` additional cycles have
    /// elapsed; returns `true` if it drained.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        self.step_until_quiescent(max_cycles).is_ok()
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnoc_core::Coord;

    fn build(side: u16, config: NocConfig) -> Network {
        let mesh = Mesh::square(side).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        Network::new(mesh, config, &flows).unwrap()
    }

    fn node(network: &Network, row: u16, col: u16) -> NodeId {
        network
            .mesh()
            .node_id(Coord::from_row_col(row, col))
            .unwrap()
    }

    #[test]
    fn single_message_is_delivered() {
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(1_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        assert_eq!(noc.stats().flits_delivered, 4);
        assert_eq!(noc.stats().packets_delivered, 1);
    }

    #[test]
    fn wap_message_is_delivered_with_overhead() {
        let mut noc = build(4, NocConfig::waw_wap());
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(1_000));
        assert_eq!(noc.stats().messages_delivered, 1);
        // The 4-flit message became 5 single-flit packets.
        assert_eq!(noc.stats().flits_delivered, 5);
        assert_eq!(noc.stats().packets_delivered, 5);
    }

    #[test]
    fn zero_load_latency_matches_hop_count() {
        // A single message in an empty network: traversal latency is the number
        // of routers plus link hops plus serialisation.
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 1).unwrap();
        assert!(noc.run_until_drained(100));
        let flow = noc.flow_id(src, dst);
        let latency = noc.stats().flow_traversal_latency(flow).unwrap().max;
        // 3 hops with a single-cycle router and single-cycle links: the flit
        // advances one hop per cycle and is then ejected.
        assert!((3..=10).contains(&latency), "latency {latency}");
    }

    #[test]
    fn flit_conservation_under_random_offers() {
        let mut noc = build(4, NocConfig::regular(4));
        let dst = node(&noc, 0, 0);
        let mut offered_flits = 0;
        for row in 0..4u16 {
            for col in 0..4u16 {
                if row == 0 && col == 0 {
                    continue;
                }
                let src = node(&noc, row, col);
                noc.offer(src, dst, 4).unwrap();
                offered_flits += 4;
            }
        }
        assert!(noc.run_until_drained(10_000));
        assert_eq!(noc.stats().flits_delivered, offered_flits);
        assert_eq!(noc.stats().messages_delivered, 15);
        assert_eq!(noc.stats().messages_offered, 15);
        // Every arena slot was recycled back to the free list.
        assert!(noc.arena().is_empty());
    }

    #[test]
    fn self_messages_and_bad_sizes_rejected() {
        let mut noc = build(2, NocConfig::regular(4));
        let a = node(&noc, 0, 0);
        let b = node(&noc, 1, 1);
        assert!(noc.offer(a, a, 1).is_err());
        assert!(noc.offer(a, b, 0).is_err());
        assert!(noc.offer(a, b, 1).is_ok());
    }

    #[test]
    fn contention_increases_latency() {
        // One message alone vs the same message while every node hammers the
        // destination: the contended latency must be strictly larger.
        let solo_latency = {
            let mut noc = build(4, NocConfig::regular(4));
            let src = node(&noc, 3, 3);
            let dst = node(&noc, 0, 0);
            noc.offer(src, dst, 4).unwrap();
            noc.run_until_drained(10_000);
            let flow = noc.flow_id(src, dst);
            noc.stats().flow_traversal_latency(flow).unwrap().max
        };
        let contended_latency = {
            let mut noc = build(4, NocConfig::regular(4));
            let dst = node(&noc, 0, 0);
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    for _ in 0..4 {
                        noc.offer(node(&noc, row, col), dst, 4).unwrap();
                    }
                }
            }
            noc.run_until_drained(100_000);
            let src = node(&noc, 3, 3);
            let flow = noc.flow_id(src, dst);
            noc.stats().flow_traversal_latency(flow).unwrap().max
        };
        assert!(
            contended_latency > solo_latency,
            "contended {contended_latency} vs solo {solo_latency}"
        );
    }

    #[test]
    fn stats_track_port_utilisation() {
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 0, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        noc.run_until_drained(1_000);
        // Every link along the row carried the 4 flits.
        let flits = noc
            .stats()
            .port_flits
            .get(&(Coord::from_row_col(0, 2), Port::Mesh(Direction::West)))
            .copied()
            .unwrap_or(0);
        assert_eq!(flits, 4);
        // The ejection port of the destination also saw them.
        let ejected = noc
            .stats()
            .port_flits
            .get(&(Coord::from_row_col(0, 0), Port::Local))
            .copied()
            .unwrap_or(0);
        assert_eq!(ejected, 4);
    }

    #[test]
    fn drained_network_reports_idle() {
        let mut noc = build(3, NocConfig::waw_wap());
        assert!(noc.is_drained());
        let src = node(&noc, 2, 2);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(!noc.is_drained());
        assert!(noc.run_until_drained(1_000));
        assert!(noc.is_drained());
    }

    #[test]
    fn stall_error_reports_cycle_and_occupancy() {
        // Not a real deadlock (XY routing is deadlock free): an *undersized*
        // drain budget triggers the same diagnostic path.
        let mut noc = build(4, NocConfig::regular(4));
        let src = node(&noc, 3, 3);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        let err = noc.step_until_quiescent(1).unwrap_err();
        match err {
            Error::SimulationStalled {
                drain_limit,
                cycle,
                buffered_flits,
                stalled_routers: _,
            } => {
                assert_eq!(drain_limit, 1);
                assert_eq!(cycle, noc.cycle());
                assert!(buffered_flits > 0, "traffic is still in the system");
            }
            other => panic!("expected SimulationStalled, got {other:?}"),
        }
        assert!(!noc.per_router_occupancy().is_empty() || noc.nic_backlog(src) > 0);
        // With a real budget the same network drains cleanly.
        assert!(noc.step_until_quiescent(1_000).is_ok());
        assert!(noc.per_router_occupancy().is_empty());
    }

    #[test]
    fn drain_delivered_into_keeps_capacity() {
        let mut noc = build(3, NocConfig::regular(4));
        let src = node(&noc, 2, 2);
        let dst = node(&noc, 0, 0);
        let mut sink = Vec::new();
        for round in 0..3 {
            noc.offer(src, dst, 2).unwrap();
            assert!(noc.run_until_drained(1_000));
            noc.drain_delivered_into(&mut sink);
            assert_eq!(sink.len(), round + 1);
        }
        assert_eq!(noc.take_delivered(), Vec::new());
        assert!(sink.iter().all(|d| d.src == src && d.dst == dst));
    }

    #[test]
    fn default_buffer_config_matches_two_scalar_construction() {
        // `Network::new` and an explicit uniform BufferConfig at the default
        // depth must be indistinguishable, observation for observation.
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let config = NocConfig::waw_wap();
        let run = |mut noc: Network| {
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    let src = noc.mesh().node_id(Coord::from_row_col(row, col)).unwrap();
                    let dst = noc.mesh().node_id(Coord::from_row_col(0, 0)).unwrap();
                    noc.offer(src, dst, 2).unwrap();
                }
            }
            assert!(noc.run_until_drained(100_000));
            noc.stats().clone()
        };
        let classic = run(Network::new(mesh, config, &flows).unwrap());
        let explicit = run(Network::with_buffers(
            mesh,
            config,
            &flows,
            &BufferConfig::uniform(config.input_buffer_flits),
        )
        .unwrap());
        assert_eq!(classic.traversal_latency, explicit.traversal_latency);
        assert_eq!(classic.flits_delivered, explicit.flits_delivered);
        assert_eq!(classic.cycles, explicit.cycles);
    }

    #[test]
    fn heterogeneous_credits_follow_the_downstream_ring() {
        // Deepen a single input buffer: only the one upstream output facing
        // it gains credits (the constructor invariant assertion would abort
        // on any divergence).
        let mesh = Mesh::square(3).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        let center = mesh.node_id(Coord::from_row_col(1, 1)).unwrap();
        let buffers = BufferConfig::uniform(2).with_buffer_depth(
            &mesh,
            center,
            Port::Mesh(Direction::East),
            7,
        );
        let noc = Network::with_buffers(mesh, NocConfig::regular(4), &flows, &buffers).unwrap();
        // R(1,1)'s *east-facing input* receives from its eastern neighbour
        // R(2,1), whose *west output* must now hold 7 credits.
        let east_neighbor = mesh.node_id(Coord::from_row_col(1, 2)).unwrap();
        assert_eq!(
            noc.routers[east_neighbor.index()].credits(Port::Mesh(Direction::West)),
            7
        );
        assert_eq!(
            noc.routers[center.index()].input_capacity(Port::Mesh(Direction::East)),
            7
        );
        // Every other port keeps the base depth.
        assert_eq!(noc.routers[center.index()].input_capacity(Port::Local), 2);
        assert_eq!(noc.buffers().max_depth(), 7);
    }

    #[test]
    fn depth_one_network_still_delivers() {
        let mesh = Mesh::square(4).unwrap();
        let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
        for config in [NocConfig::regular(4), NocConfig::waw_wap()] {
            let mut noc =
                Network::with_buffers(mesh, config, &flows, &BufferConfig::uniform(1)).unwrap();
            let dst = mesh.node_id(Coord::from_row_col(0, 0)).unwrap();
            for row in 0..4u16 {
                for col in 0..4u16 {
                    if row == 0 && col == 0 {
                        continue;
                    }
                    let src = mesh.node_id(Coord::from_row_col(row, col)).unwrap();
                    noc.offer(src, dst, 4).unwrap();
                }
            }
            assert!(noc.run_until_drained(200_000), "{}", config.label());
            assert_eq!(noc.stats().messages_delivered, 15);
            assert!(noc.arena().is_empty());
        }
    }

    #[test]
    fn idle_heavy_run_visits_no_components() {
        // After draining, a million idle steps are pure counter increments:
        // the arena holds no live flits and the worklists stay empty.
        let mut noc = build(8, NocConfig::waw_wap());
        let src = node(&noc, 7, 7);
        let dst = node(&noc, 0, 0);
        noc.offer(src, dst, 4).unwrap();
        assert!(noc.run_until_drained(10_000));
        let delivered = noc.stats().flits_delivered;
        noc.run_for(100_000);
        assert_eq!(noc.stats().flits_delivered, delivered);
        assert!(noc.is_drained());
        assert_eq!(noc.stats().cycles, noc.cycle());
    }
}
