//! Simulation statistics: per-flow latency distributions, throughput and link
//! utilisation.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use wnoc_core::{Cycle, FlowId};

/// Running summary of a latency distribution (count, sum, min, max).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for LatencyStats {
    /// Same as [`LatencyStats::new`]: `min` starts at `u64::MAX`, not 0, so
    /// the first recorded sample always wins.
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reconstructs a summary from its four raw fields, validating the merge
    /// algebra's invariants — the safe deserialization entry point for
    /// checkpointed aggregates (the conformance fleet runner's partial
    /// reports round-trip stats through files and must reject hand-edited or
    /// truncated values rather than merge them).
    ///
    /// Returns `None` unless the fields describe a summary that
    /// [`LatencyStats::record`]/[`LatencyStats::merge`] could actually have
    /// produced: an empty summary must equal [`LatencyStats::new`] exactly,
    /// and a non-empty one must satisfy `min <= max <= sum`.
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64) -> Option<Self> {
        let stats = Self {
            count,
            sum,
            min,
            max,
        };
        let valid = if count == 0 {
            stats == Self::new()
        } else {
            min <= max && max <= sum
        };
        valid.then_some(stats)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(latency);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Mean latency, or 0.0 when no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Aggregated statistics of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of simulated cycles.
    pub cycles: Cycle,
    /// Messages handed to source NICs.
    pub messages_offered: u64,
    /// Messages fully delivered to their destination NIC.
    pub messages_delivered: u64,
    /// Packets injected into the router network.
    pub packets_injected: u64,
    /// Packets fully received at their destination.
    pub packets_delivered: u64,
    /// Flits injected into the router network.
    pub flits_injected: u64,
    /// Flits delivered (ejected) at destinations.
    pub flits_delivered: u64,
    /// End-to-end message latency (creation to last flit delivery) per flow.
    pub message_latency: HashMap<FlowId, LatencyStats>,
    /// Network traversal latency (injection of first flit to delivery of last
    /// flit) per flow.
    pub traversal_latency: HashMap<FlowId, LatencyStats>,
    /// Messages NACKed by a fault epoch flush and re-queued for
    /// retransmission.  The fault counters only serialize when non-zero, so
    /// a fault-free run's serialized stats stay byte-identical to builds
    /// that predate fault injection.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub messages_retransmitted: u64,
    /// Messages dropped as undeliverable: their endpoint pair was severed by
    /// the active fault set, or their retry budget was exhausted.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub messages_undeliverable: u64,
    /// Flits purged from router rings, link pipelines and NIC queues by
    /// fault epoch flushes.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub flits_purged: u64,
    /// Retransmissions per flow (ordered map: deterministic serialization).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub retransmits_by_flow: BTreeMap<FlowId, u64>,
}

/// `skip_serializing_if` helper for the fault counters (referenced by name
/// from the `serde` field attributes, which the offline shim ignores).
#[allow(dead_code)]
fn is_zero(value: &u64) -> bool {
    *value == 0
}

impl NetworkStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivered message's end-to-end and traversal latencies.
    pub fn record_message(&mut self, flow: FlowId, end_to_end: u64, traversal: u64) {
        self.messages_delivered += 1;
        self.message_latency
            .entry(flow)
            .or_default()
            .record(end_to_end);
        self.traversal_latency
            .entry(flow)
            .or_default()
            .record(traversal);
    }

    /// Aggregate message-latency summary across all flows.
    pub fn overall_message_latency(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for stats in self.message_latency.values() {
            all.merge(stats);
        }
        all
    }

    /// Aggregate traversal-latency summary across all flows.
    pub fn overall_traversal_latency(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for stats in self.traversal_latency.values() {
            all.merge(stats);
        }
        all
    }

    /// Message latency summary of one flow, if any message of it was delivered.
    pub fn flow_message_latency(&self, flow: FlowId) -> Option<&LatencyStats> {
        self.message_latency.get(&flow)
    }

    /// Traversal latency summary of one flow.
    pub fn flow_traversal_latency(&self, flow: FlowId) -> Option<&LatencyStats> {
        self.traversal_latency.get(&flow)
    }

    /// Accepted throughput in flits per cycle.
    pub fn delivered_throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basic() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        s.record(10);
        s.record(20);
        s.record(5);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 20);
        assert!((s.mean() - 35.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(30);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 2);
        assert_eq!(a.max, 30);
        let empty = LatencyStats::new();
        a.merge(&empty);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        // The parallel campaign runner folds per-scenario summaries in
        // whatever order workers finish; the fold must not care.
        let samples: [&[u64]; 4] = [&[3, 9], &[], &[100], &[7, 7, 2]];
        let stats: Vec<LatencyStats> = samples
            .iter()
            .map(|s| {
                let mut l = LatencyStats::new();
                for &v in *s {
                    l.record(v);
                }
                l
            })
            .collect();

        // Commutativity: a ⊕ b == b ⊕ a, for every pair.
        for a in &stats {
            for b in &stats {
                let mut ab = *a;
                ab.merge(b);
                let mut ba = *b;
                ba.merge(a);
                assert_eq!(ab, ba);
            }
        }

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), for every triple.
        for a in &stats {
            for b in &stats {
                for c in &stats {
                    let mut left = *a;
                    left.merge(b);
                    left.merge(c);
                    let mut bc = *b;
                    bc.merge(c);
                    let mut right = *a;
                    right.merge(&bc);
                    assert_eq!(left, right);
                }
            }
        }

        // The empty summary is the identity element.
        let empty = LatencyStats::new();
        for a in &stats {
            let mut merged = empty;
            merged.merge(a);
            assert_eq!(&merged, a);
        }
    }

    #[test]
    fn from_parts_accepts_exactly_the_reachable_summaries() {
        // Round trip: anything record/merge built is accepted verbatim.
        let mut recorded = LatencyStats::new();
        recorded.record(5);
        recorded.record(9);
        assert_eq!(
            LatencyStats::from_parts(recorded.count, recorded.sum, recorded.min, recorded.max),
            Some(recorded)
        );
        let empty = LatencyStats::new();
        assert_eq!(
            LatencyStats::from_parts(empty.count, empty.sum, empty.min, empty.max),
            Some(empty)
        );
        // All-zero samples are a legal distribution.
        assert!(LatencyStats::from_parts(3, 0, 0, 0).is_some());

        // Rejected: an "empty" summary whose min/max were tampered with
        // would corrupt every later merge (min 0 would win over any sample).
        assert!(LatencyStats::from_parts(0, 0, 0, 0).is_none());
        assert!(LatencyStats::from_parts(0, 1, u64::MAX, 0).is_none());
        // Rejected: inverted extremes or a sum below the max.
        assert!(LatencyStats::from_parts(2, 14, 9, 5).is_none());
        assert!(LatencyStats::from_parts(2, 3, 1, 9).is_none());
    }

    #[test]
    fn network_stats_records_per_flow() {
        let mut stats = NetworkStats::new();
        stats.record_message(FlowId(0), 100, 80);
        stats.record_message(FlowId(0), 60, 50);
        stats.record_message(FlowId(1), 10, 8);
        assert_eq!(stats.messages_delivered, 3);
        assert_eq!(stats.flow_message_latency(FlowId(0)).unwrap().max, 100);
        assert_eq!(stats.flow_traversal_latency(FlowId(1)).unwrap().max, 8);
        let overall = stats.overall_message_latency();
        assert_eq!(overall.count, 3);
        assert_eq!(overall.min, 10);
    }

    #[test]
    fn throughput_tracks_delivered_flits() {
        let mut stats = NetworkStats::new();
        stats.cycles = 100;
        stats.flits_delivered = 50;
        assert!((stats.delivered_throughput() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        let n = NetworkStats::new();
        assert_eq!(n.delivered_throughput(), 0.0);
    }
}
