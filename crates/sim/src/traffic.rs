//! Synthetic traffic generators used by the evaluation and the benchmarks.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use wnoc_core::{Coord, Cycle, Error, Mesh, NodeId, Result};

/// A message to be offered to the network at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfferedTraffic {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message size in regular-packetization flits.
    pub size_flits: u32,
}

/// Spatial traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every node sends to a single hotspot (the paper's memory controller at
    /// `R(0,0)`).
    AllToOne {
        /// The hotspot destination.
        dst: Coord,
    },
    /// Uniformly random destinations.
    UniformRandom,
    /// Matrix-transpose permutation: node `(x, y)` sends to `(y, x)`.
    Transpose,
    /// Bit-complement-like permutation: node `(x, y)` sends to the node at the
    /// opposite corner position `(W-1-x, H-1-y)`.
    Complement,
}

/// A Bernoulli-injection synthetic traffic generator: every cycle each node
/// independently generates a message with probability `injection_rate`.
///
/// The per-cycle draw *is* the injection semantics (one RNG stream advance
/// per node per cycle), so the open-loop driver ticks the network cycle by
/// cycle while a generator is attached; only the closed-loop and drain
/// drivers advance horizon to horizon.  Offered messages carry absolute
/// creation cycles either way.
///
/// # Examples
///
/// ```
/// use wnoc_core::{Coord, Mesh};
/// use wnoc_sim::traffic::{RandomTraffic, TrafficPattern};
///
/// let mesh = Mesh::square(4)?;
/// let mut gen = RandomTraffic::new(mesh, TrafficPattern::UniformRandom, 0.1, 4, 42)?;
/// let offered = gen.messages_for_cycle(0);
/// assert!(offered.iter().all(|m| m.src != m.dst));
/// # Ok::<(), wnoc_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomTraffic {
    mesh: Mesh,
    pattern: TrafficPattern,
    injection_rate: f64,
    message_flits: u32,
    rng: ChaCha8Rng,
}

impl RandomTraffic {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the injection rate is not in
    /// `(0.0, 1.0]` or the message size is zero, and a bounds error if an
    /// `AllToOne` destination lies outside the mesh.
    pub fn new(
        mesh: Mesh,
        pattern: TrafficPattern,
        injection_rate: f64,
        message_flits: u32,
        seed: u64,
    ) -> Result<Self> {
        if !(injection_rate > 0.0 && injection_rate <= 1.0) {
            return Err(Error::InvalidConfig {
                reason: format!("injection rate {injection_rate} must be in (0, 1]"),
            });
        }
        if message_flits == 0 {
            return Err(Error::EmptyMessage);
        }
        if let TrafficPattern::AllToOne { dst } = pattern {
            mesh.check(dst)?;
        }
        Ok(Self {
            mesh,
            pattern,
            injection_rate,
            message_flits,
            rng: ChaCha8Rng::seed_from_u64(seed),
        })
    }

    /// The spatial pattern.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// The per-node, per-cycle injection probability.
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }

    /// Destination of a message generated at `src` under the configured
    /// pattern, or `None` when the pattern maps the node onto itself.
    fn destination(&mut self, src: Coord) -> Option<NodeId> {
        let dst_coord = match self.pattern {
            TrafficPattern::AllToOne { dst } => dst,
            TrafficPattern::Transpose => Coord::new(src.y, src.x),
            TrafficPattern::Complement => Coord::new(
                self.mesh.width() - 1 - src.x,
                self.mesh.height() - 1 - src.y,
            ),
            TrafficPattern::UniformRandom => {
                let count = self.mesh.router_count();
                let idx = self.rng.gen_range(0..count);
                self.mesh.coord_of(NodeId(idx)).expect("index in range")
            }
        };
        if dst_coord == src {
            return None;
        }
        Some(self.mesh.node_id(dst_coord).expect("pattern stays in mesh"))
    }

    /// The messages every node decides to generate in this cycle.
    pub fn messages_for_cycle(&mut self, _cycle: Cycle) -> Vec<OfferedTraffic> {
        // The mesh is `Copy`, so iterating a local copy frees `self` for the
        // RNG calls below without collecting the coordinates first.
        let mesh = self.mesh;
        let mut offered = Vec::new();
        for src in mesh.routers() {
            if self.rng.gen_bool(self.injection_rate) {
                if let Some(dst) = self.destination(src) {
                    offered.push(OfferedTraffic {
                        src: self.mesh.node_id(src).expect("router coord"),
                        dst,
                        size_flits: self.message_flits,
                    });
                }
            }
        }
        offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::square(4).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        let m = mesh();
        assert!(RandomTraffic::new(m, TrafficPattern::UniformRandom, 0.0, 4, 1).is_err());
        assert!(RandomTraffic::new(m, TrafficPattern::UniformRandom, 1.5, 4, 1).is_err());
        assert!(RandomTraffic::new(m, TrafficPattern::UniformRandom, 0.5, 0, 1).is_err());
        assert!(RandomTraffic::new(
            m,
            TrafficPattern::AllToOne {
                dst: Coord::new(9, 9)
            },
            0.5,
            4,
            1
        )
        .is_err());
    }

    #[test]
    fn all_to_one_targets_the_hotspot() {
        let m = mesh();
        let dst = Coord::from_row_col(0, 0);
        let mut gen = RandomTraffic::new(m, TrafficPattern::AllToOne { dst }, 1.0, 4, 7).unwrap();
        let offered = gen.messages_for_cycle(0);
        // Every node except the hotspot generates a message to the hotspot.
        assert_eq!(offered.len(), 15);
        let hotspot = m.node_id(dst).unwrap();
        assert!(offered.iter().all(|o| o.dst == hotspot));
    }

    #[test]
    fn transpose_is_a_permutation() {
        let m = mesh();
        let mut gen = RandomTraffic::new(m, TrafficPattern::Transpose, 1.0, 2, 7).unwrap();
        let offered = gen.messages_for_cycle(0);
        // Diagonal nodes map to themselves and generate nothing.
        assert_eq!(offered.len(), 12);
        let mut dsts: Vec<NodeId> = offered.iter().map(|o| o.dst).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 12);
    }

    #[test]
    fn complement_maps_corners_to_corners() {
        let m = mesh();
        let mut gen = RandomTraffic::new(m, TrafficPattern::Complement, 1.0, 2, 7).unwrap();
        let offered = gen.messages_for_cycle(0);
        let corner = m.node_id(Coord::new(0, 0)).unwrap();
        let opposite = m.node_id(Coord::new(3, 3)).unwrap();
        assert!(offered.iter().any(|o| o.src == corner && o.dst == opposite));
    }

    #[test]
    fn injection_rate_controls_volume() {
        let m = mesh();
        let mut low = RandomTraffic::new(m, TrafficPattern::UniformRandom, 0.05, 4, 11).unwrap();
        let mut high = RandomTraffic::new(m, TrafficPattern::UniformRandom, 0.8, 4, 11).unwrap();
        let count = |gen: &mut RandomTraffic| -> usize {
            (0..200).map(|c| gen.messages_for_cycle(c).len()).sum()
        };
        let low_total = count(&mut low);
        let high_total = count(&mut high);
        assert!(
            high_total > 5 * low_total,
            "high {high_total} low {low_total}"
        );
    }

    #[test]
    fn seeded_generators_are_deterministic() {
        let m = mesh();
        let mut a = RandomTraffic::new(m, TrafficPattern::UniformRandom, 0.3, 4, 99).unwrap();
        let mut b = RandomTraffic::new(m, TrafficPattern::UniformRandom, 0.3, 4, 99).unwrap();
        for cycle in 0..50 {
            assert_eq!(a.messages_for_cycle(cycle), b.messages_for_cycle(cycle));
        }
    }
}
