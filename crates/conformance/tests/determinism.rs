//! Determinism guarantees of the conformance stack: seeded traffic
//! reproduces, closed-loop probing reproduces, and the parallel campaign
//! runner produces a worker-count-independent report.

use wnoc_conformance::Campaign;
use wnoc_core::flow::FlowSet;
use wnoc_core::{Coord, Mesh, NocConfig};
use wnoc_sim::{RandomTraffic, SaturatedReport, Simulation, TrafficPattern};

fn traffic_run(pattern: TrafficPattern, seed: u64) -> SaturatedReport {
    let mesh = Mesh::square(4).unwrap();
    let flows = FlowSet::all_to_all(&mesh).unwrap();
    let mut sim = Simulation::new(mesh, NocConfig::waw_wap(), &flows).unwrap();
    let mut traffic = RandomTraffic::new(mesh, pattern, 0.08, 4, seed).unwrap();
    sim.run_traffic_report(&mut traffic, 600, 20_000).unwrap()
}

#[test]
fn same_seed_same_saturated_report() {
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::AllToOne {
            dst: Coord::from_row_col(0, 0),
        },
        TrafficPattern::Transpose,
    ] {
        let a = traffic_run(pattern, 2024);
        let b = traffic_run(pattern, 2024);
        assert_eq!(a, b, "same seed must reproduce under {pattern:?}");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_differ() {
    // Uniform random traffic draws destinations from the stream, so two
    // seeds virtually never produce identical per-flow summaries.
    let a = traffic_run(TrafficPattern::UniformRandom, 1);
    let b = traffic_run(TrafficPattern::UniformRandom, 2);
    assert_ne!(a, b, "different seeds should produce different reports");
}

#[test]
fn closed_loop_probing_reproduces() {
    let mesh = Mesh::square(5).unwrap();
    let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(2, 2)).unwrap();
    let run = || {
        let mut sim = Simulation::new(mesh, NocConfig::regular(4), &flows).unwrap();
        sim.run_closed_loop(&flows, 4, 2_000).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn campaign_report_is_worker_count_independent() {
    let campaign = Campaign::new(42, 4);
    let single = campaign.run(1).unwrap();
    let parallel = campaign.run(3).unwrap();
    assert_eq!(single, parallel);
    assert_eq!(single.render(), parallel.render());
}
