//! Buffer-depth edge cases and properties: depth-1 wormhole liveness,
//! heterogeneous determinism, and the envelope property of single-buffer
//! deepening.
//!
//! # On monotonicity of *observations*
//!
//! The analytic buffer-aware bound tightens monotonically with depth (a
//! machine-checked ordering invariant), but observed latencies do **not**:
//! wormhole meshes exhibit classic scheduling anomalies where extra
//! buffering admits more cross-traffic into a contested FIFO ahead of a
//! probe.  Concrete counterexample (pinned by
//! `deepening_one_buffer_can_raise_an_observation_but_never_escapes_the_envelope`):
//! on the 4×4 WaW + WaP all-to-one hotspot with uniform depth-2 buffers,
//! deepening only `R(0,0)`'s south input buffer to 6 flits raises flow f6's
//! worst closed-loop latency from 17 to 28 cycles.  The sound property — and
//! the one the analysis actually promises — is that every post-deepening
//! observation stays within the buffer-aware bound of the *original*
//! (shallower) configuration: anomalies never escape the analytic envelope.

use proptest::prelude::*;

use wnoc_conformance::{BufferChoice, Scenario};
use wnoc_core::analysis::oracle::{BufferAwareOracle, WcttBoundModel};
use wnoc_core::flow::FlowSet;
use wnoc_core::{BufferConfig, Coord, Mesh, NocConfig, NodeId, Port};
use wnoc_sim::Simulation;

/// Depth-1 wormhole still drains: `SimulationStalled` never fires on
/// conformance-legal scenarios (XY routing is deadlock-free at any depth;
/// depth 1 only serialises the pipeline).
#[test]
fn depth_one_never_stalls_on_sampled_scenarios() {
    let mut checked = 0;
    for index in 0..60 {
        let mut scenario = Scenario::sample(index, 31);
        if scenario.side > 5 {
            continue; // keep the debug-build runtime reasonable
        }
        scenario.buffers = BufferChoice::Uniform { depth: 1 };
        scenario.cycles = scenario.cycles.min(2_000);
        let outcome = scenario
            .run()
            .unwrap_or_else(|e| panic!("{} stalled or failed: {e}", scenario.label()));
        assert!(outcome.observed.count > 0, "{}", scenario.label());
        checked += 1;
        if checked >= 8 {
            break;
        }
    }
    assert!(checked >= 4, "too few small scenarios sampled");
}

/// Heterogeneous configurations are deterministic end to end: the same
/// seeded per-port assignment produces byte-identical scenario outcomes.
#[test]
fn heterogeneous_config_runs_are_deterministic() {
    let mut scenario = Scenario::sample(2, 17);
    // Pin a small platform so the test is brisk in debug builds.
    while scenario.side > 5 {
        scenario = Scenario::sample(scenario.index + 7, 17);
    }
    scenario.buffers = BufferChoice::Heterogeneous { seed: 4242 };
    scenario.cycles = scenario.cycles.min(2_000);
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a, b, "heterogeneous runs must reproduce");
    assert!(a.passed(), "{:?} {:?}", a.violations, a.ordering_violations);
}

/// The pinned anomaly counterexample plus its envelope property, documented
/// at module level: deepening one buffer raises an observation yet stays
/// within the shallow config's buffer-aware bound.
#[test]
fn deepening_one_buffer_can_raise_an_observation_but_never_escapes_the_envelope() {
    let mesh = Mesh::square(4).unwrap();
    let flows = FlowSet::all_to_one(&mesh, Coord::from_row_col(0, 0)).unwrap();
    let config = NocConfig::waw_wap();
    let shallow = BufferConfig::uniform(2);
    let run = |buffers: &BufferConfig| {
        let mut sim = Simulation::with_buffers(mesh, config, &flows, buffers).unwrap();
        sim.run_closed_loop(&flows, 1, 1_500).unwrap()
    };
    let before = run(&shallow);
    let hotspot = mesh.node_id(Coord::from_row_col(0, 0)).unwrap();
    let deepened_cfg =
        shallow.with_buffer_depth(&mesh, hotspot, Port::Mesh(wnoc_core::Direction::South), 6);
    let after = run(&deepened_cfg);

    // The anomaly is real: at least one flow got *worse* with more buffer.
    let anomaly = after
        .per_flow_max()
        .iter()
        .any(|&(flow, max)| before.flow_max(flow).is_some_and(|b| max > b));
    assert!(anomaly, "expected a deepening anomaly on this platform");

    // ...but every observation stays inside the shallow config's envelope.
    let mut envelope = BufferAwareOracle::new(&flows, &config, mesh, shallow);
    for (flow, observed) in after.per_flow_max() {
        let bound = envelope.message_bound(flow, 1).unwrap();
        assert!(
            observed <= bound,
            "{flow}: deepened observation {observed} escaped shallow envelope {bound}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Deepening any single buffer keeps every per-flow observed maximum
    /// within the buffer-aware bound of the original configuration (and, by
    /// dominance, within the deepened configuration's own bound).
    #[test]
    fn single_buffer_deepening_stays_within_the_shallow_envelope(
        side in 2u16..=4,
        base_depth in 1u32..=4,
        node_roll in any::<u64>(),
        port_roll in 0usize..5,
        extra in 1u32..=8,
        hotspot_roll in any::<u64>(),
    ) {
        let mesh = Mesh::square(side).unwrap();
        let nodes = usize::from(side) * usize::from(side);
        let hotspot = Coord::new(
            (hotspot_roll % u64::from(side)) as u16,
            ((hotspot_roll >> 8) % u64::from(side)) as u16,
        );
        // The buffer-aware analysis covers output-consistent WaW platforms;
        // all-to-one hotspots are its canonical class.
        let flows = FlowSet::all_to_one(&mesh, hotspot).unwrap();
        let config = NocConfig::waw_wap();
        let shallow = BufferConfig::uniform(base_depth);
        let node = NodeId((node_roll as usize) % nodes);
        let port = Port::from_index(port_roll);
        let deepened = shallow.with_buffer_depth(&mesh, node, port, base_depth + extra);

        let run = |buffers: &BufferConfig| {
            let mut sim = Simulation::with_buffers(mesh, config, &flows, buffers).unwrap();
            sim.run_closed_loop(&flows, 1, 1_200).unwrap()
        };
        let observed = run(&deepened);
        let mut shallow_envelope = BufferAwareOracle::new(&flows, &config, mesh, shallow);
        let mut deep_envelope = BufferAwareOracle::new(&flows, &config, mesh, deepened);
        for (flow, max) in observed.per_flow_max() {
            let loose = shallow_envelope.message_bound(flow, 1).unwrap();
            let tight = deep_envelope.message_bound(flow, 1).unwrap();
            prop_assert!(tight <= loose, "{flow}: deepening raised the bound {loose} -> {tight}");
            prop_assert!(
                max <= tight,
                "{flow}: observation {max} above deepened bound {tight}"
            );
        }
    }
}
