//! Property-based conformance: for randomized small platforms, every analysis
//! bound dominates the simulated per-flow maximum and the cross-analysis
//! orderings hold.
//!
//! The proptest shim samples from a fixed-seed deterministic stream, so any
//! failure reproduces identically on every run (seed-pinned by construction);
//! the sampled scenario is embedded in the panic message via `prop_assert!`.

use proptest::prelude::*;

use wnoc_conformance::{
    BufferChoice, DesignChoice, FaultChoice, Scenario, ScenarioFamily, TrafficChoice, VcChoice,
};
use wnoc_core::vc::VcAssignment;
use wnoc_core::{BufferConfig, Coord, Mesh, NodeId};

fn vc_strategy() -> impl Strategy<Value = VcChoice> {
    prop_oneof![
        Just(VcChoice::Default),
        Just(VcChoice::Count {
            count: 2,
            assignment: VcAssignment::FlowIndex
        }),
        Just(VcChoice::Count {
            count: 3,
            assignment: VcAssignment::Distance
        }),
        Just(VcChoice::Count {
            count: 4,
            assignment: VcAssignment::FlowIndex
        }),
    ]
}

fn buffer_strategy() -> impl Strategy<Value = BufferChoice> {
    prop_oneof![
        Just(BufferChoice::Default),
        Just(BufferChoice::Uniform { depth: 1 }),
        Just(BufferChoice::Uniform { depth: 2 }),
        Just(BufferChoice::Uniform { depth: 8 }),
        Just(BufferChoice::Uniform {
            depth: BufferConfig::INFINITE_EQUIVALENT
        }),
        (0u64..1_000).prop_map(|seed| BufferChoice::Heterogeneous { seed }),
    ]
}

fn design_strategy() -> impl Strategy<Value = DesignChoice> {
    prop_oneof![
        Just(DesignChoice::WawWap),
        Just(DesignChoice::Regular {
            max_packet_flits: 1
        }),
        Just(DesignChoice::Regular {
            max_packet_flits: 2
        }),
        Just(DesignChoice::Regular {
            max_packet_flits: 4
        }),
    ]
}

/// Builds the family from two rolls, staying inside a `side`-sized mesh.
fn family(side: u16, family_roll: u32, position_roll: u64) -> ScenarioFamily {
    let x = (position_roll % u64::from(side)) as u16;
    let y = ((position_roll >> 8) % u64::from(side)) as u16;
    match family_roll % 3 {
        0 => ScenarioFamily::AllToOne {
            hotspot: Coord::new(x, y),
        },
        1 => ScenarioFamily::OneToAll {
            source: Coord::new(x, y),
        },
        _ => {
            // A short deterministic pair list derived from the roll.
            let nodes = usize::from(side) * usize::from(side);
            let mut pairs = Vec::new();
            let mut state = position_roll | 1;
            while pairs.len() < 4 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let src = NodeId((state >> 16) as usize % nodes);
                let dst = NodeId((state >> 40) as usize % nodes);
                if src != dst && !pairs.contains(&(src, dst)) {
                    pairs.push((src, dst));
                }
            }
            ScenarioFamily::RandomPairs { pairs }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dominance and ordering hold on randomized small platforms: no observed
    /// per-flow maximum ever exceeds an observation-safe analytic bound.
    #[test]
    fn every_bound_dominates_the_simulated_maximum(
        side in 2u16..=4,
        design in design_strategy(),
        family_roll in 0u32..3,
        position_roll in any::<u64>(),
        message_flits in 1u32..=6,
        buffers in buffer_strategy(),
        vcs in vc_strategy(),
    ) {
        let message_flits = match design {
            // Single slices under WaW + WaP (the per-packet quantity the
            // analysis bounds; see wnoc_core::analysis::oracle).
            DesignChoice::WawWap => 1,
            DesignChoice::Regular { .. } => message_flits,
        };
        // Multi-VC platforms replace the weighted arbiter with per-VC
        // priority, so the WaW analyses no longer model them; mirror the
        // campaign sampler and keep WaW on the single-queue design.
        let vcs = match design {
            DesignChoice::WawWap => VcChoice::Default,
            DesignChoice::Regular { .. } => vcs,
        };
        let scenario = Scenario {
            index: 0,
            seed: position_roll,
            side,
            family: family(side, family_roll, position_roll),
            design,
            message_flits,
            cycles: 1_500,
            buffers,
            vcs,
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::None,
        };
        let outcome = scenario.run().unwrap();
        prop_assert!(
            outcome.violations.is_empty(),
            "dominance violated for {}: {:?}",
            scenario.label(),
            outcome.violations
        );
        prop_assert!(
            outcome.ordering_violations.is_empty(),
            "ordering violated for {}: {:?}",
            scenario.label(),
            outcome.ordering_violations
        );
        // Sanity: the platform was actually exercised.
        let mesh = Mesh::square(side).unwrap();
        let flows = scenario.family.flow_set(&mesh).unwrap();
        prop_assert!(!flows.is_empty());
        prop_assert!(outcome.observed.count > 0);
        if outcome.dominance_checked {
            prop_assert!(outcome.tightness.max <= 1.0);
        }
    }
}
