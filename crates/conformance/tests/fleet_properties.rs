//! Property-based fleet conformance: for random (scenario count, shard
//! count, merge order) triples, the sharded pipeline — partition, per-shard
//! partial reports, a full JSON round trip through the checkpoint codec,
//! and an order-shuffled merge — produces a report *byte-identical* to the
//! single-process [`Campaign::run`] output.
//!
//! The proptest shim samples from a fixed-seed deterministic stream, so any
//! failure reproduces identically on every run.

use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use std::path::Path;

use wnoc_conformance::{partition, Campaign, ConformanceReport, PartialReport};

/// Fisher–Yates shuffle driven by a seeded ChaCha stream (the vendored
/// `rand` shim has no `SliceRandom`).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharding is invisible: any shard count, any merge order, with every
    /// partial pushed through the render/parse codec, reproduces the
    /// single-process report byte for byte.
    #[test]
    fn sharded_merge_is_byte_identical_to_single_process(
        scenarios in 0usize..=5,
        shards in 1usize..=8,
        seed in 1u64..=500,
        shuffle_seed in any::<u64>(),
        buffer_depths in any::<bool>(),
    ) {
        let campaign = if buffer_depths {
            Campaign::buffer_sweep(seed, scenarios)
        } else {
            Campaign::new(seed, scenarios)
        };
        let reference = campaign.run(2).unwrap();

        // Compute every shard's partial and round-trip it through the
        // checkpoint codec, exactly as the on-disk resume path does.
        let mut partials: Vec<PartialReport> = partition(scenarios, shards)
            .into_iter()
            .map(|range| {
                let partial = PartialReport::compute(&campaign, range).unwrap();
                let json = partial.render_json();
                let back = PartialReport::parse_json(&json, Path::new("inline")).unwrap();
                assert_eq!(back, partial, "codec round trip");
                back
            })
            .collect();

        // Merge in a random completion order: the fold must not care.
        shuffle(&mut partials, shuffle_seed);
        let mut merged = ConformanceReport::empty(campaign.seed);
        for partial in partials {
            merged.merge(partial.into_report());
        }

        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.render_json(), reference.render_json());
        prop_assert_eq!(merged.render(), reference.render());
    }
}
