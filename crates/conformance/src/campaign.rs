//! The parallel campaign runner and the aggregated conformance report.
//!
//! A [`Campaign`] is a seeded list of scenarios (see
//! [`Scenario::sample`](crate::Scenario::sample)).  [`Campaign::run`] executes
//! them on a work-stealing-lite pool: `std::thread::scope` workers pull
//! scenario indices from one shared atomic cursor, so a worker that lands on
//! cheap 2×2 scenarios simply pulls more of them while another grinds through
//! a 12×12 platform — no pre-partitioning, no idle tails, no dependencies
//! beyond the standard library.
//!
//! Outcomes are reassembled in scenario order, so the produced
//! [`ConformanceReport`] is byte-identical regardless of the worker count —
//! the report of a 16-thread campaign can be diffed against a single-threaded
//! rerun.

use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use wnoc_core::Result;
use wnoc_sim::LatencyStats;

use crate::scenario::{FlowSetCache, Scenario, ScenarioOutcome, TightnessSummary};

/// The sampling space of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignDimension {
    /// The legacy space: mesh side, flow family, design, message size — all
    /// platforms at the default buffering.
    Core,
    /// The legacy space *times* the buffer-depth dimension: uniform depths
    /// {1, 2, 4, 8, ∞-equivalent} plus seeded heterogeneous per-port
    /// assignments ([`Scenario::sample_buffered`]).
    BufferDepth,
    /// The legacy space *times* the virtual-channel dimension: VC counts
    /// 1–4 crossed with both static flow → VC assignment rules
    /// ([`Scenario::sample_vc`]).
    VcSweep,
    /// The bursty arrival-curve dimension: open-loop WaW + WaP platforms with
    /// per-flow bursts, jittered sustained rates and heterogeneous buffer
    /// depths, checked against the graph-based buffer-aware bound
    /// ([`Scenario::sample_bursty`]).
    BurstySweep,
    /// The fault-injection dimension: the legacy platform space *times*
    /// sampled link/router failures at cycle 0 (degraded-oracle dominance)
    /// or mid-run (epoch-flush drain checks) — see
    /// [`Scenario::sample_fault`].
    FaultSweep,
}

impl CampaignDimension {
    /// Stable one-word tag used by checkpoint files and command-line flags.
    pub fn tag(&self) -> &'static str {
        match self {
            CampaignDimension::Core => "core",
            CampaignDimension::BufferDepth => "buffer-depth",
            CampaignDimension::VcSweep => "vc",
            CampaignDimension::BurstySweep => "bursty",
            CampaignDimension::FaultSweep => "fault",
        }
    }

    /// Inverse of [`CampaignDimension::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "core" => Some(CampaignDimension::Core),
            "buffer-depth" => Some(CampaignDimension::BufferDepth),
            "vc" => Some(CampaignDimension::VcSweep),
            "bursty" => Some(CampaignDimension::BurstySweep),
            "fault" => Some(CampaignDimension::FaultSweep),
            _ => None,
        }
    }
}

/// A seeded conformance campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Campaign {
    /// Master seed; scenario `i` is `Scenario::sample(i, seed)` (or
    /// `Scenario::sample_buffered` under [`CampaignDimension::BufferDepth`]).
    pub seed: u64,
    /// Number of scenarios.
    pub scenarios: usize,
    /// The sampled scenario space.
    pub dimension: CampaignDimension,
}

impl Campaign {
    /// Creates a campaign over the legacy scenario space.
    pub fn new(seed: u64, scenarios: usize) -> Self {
        Self {
            seed,
            scenarios,
            dimension: CampaignDimension::Core,
        }
    }

    /// Creates a campaign sweeping the buffer-depth dimension as well.
    pub fn buffer_sweep(seed: u64, scenarios: usize) -> Self {
        Self {
            seed,
            scenarios,
            dimension: CampaignDimension::BufferDepth,
        }
    }

    /// Creates a campaign sweeping the virtual-channel dimension as well.
    pub fn vc_sweep(seed: u64, scenarios: usize) -> Self {
        Self {
            seed,
            scenarios,
            dimension: CampaignDimension::VcSweep,
        }
    }

    /// Creates a campaign over the bursty arrival-curve dimension.
    pub fn bursty_sweep(seed: u64, scenarios: usize) -> Self {
        Self {
            seed,
            scenarios,
            dimension: CampaignDimension::BurstySweep,
        }
    }

    /// Creates a campaign over the fault-injection dimension.
    pub fn fault_sweep(seed: u64, scenarios: usize) -> Self {
        Self {
            seed,
            scenarios,
            dimension: CampaignDimension::FaultSweep,
        }
    }

    /// Materialises scenario `index` of the campaign.  Sampling is a pure
    /// function of `(dimension, seed, index)`, which is what makes the fleet
    /// runner's shards independent: any process can materialise any index
    /// range and produce the same outcomes the single-process run would.
    pub fn scenario(&self, index: usize) -> Scenario {
        match self.dimension {
            CampaignDimension::Core => Scenario::sample(index, self.seed),
            CampaignDimension::BufferDepth => Scenario::sample_buffered(index, self.seed),
            CampaignDimension::VcSweep => Scenario::sample_vc(index, self.seed),
            CampaignDimension::BurstySweep => Scenario::sample_bursty(index, self.seed),
            CampaignDimension::FaultSweep => Scenario::sample_fault(index, self.seed),
        }
    }

    /// Materialises every scenario of the campaign.
    pub fn generate(&self) -> Vec<Scenario> {
        (0..self.scenarios)
            .map(|index| self.scenario(index))
            .collect()
    }

    /// Runs the campaign on `threads` workers (clamped to at least one).
    ///
    /// # Errors
    ///
    /// Returns the first scenario error encountered (sampled scenarios are
    /// valid by construction, so this indicates a generator or platform bug).
    pub fn run(&self, threads: usize) -> Result<ConformanceReport> {
        let scenarios = self.generate();
        let cursor = AtomicUsize::new(0);
        let workers = threads.max(1).min(scenarios.len().max(1));

        let mut slots: Vec<Option<ScenarioOutcome>> = Vec::new();
        slots.resize_with(scenarios.len(), || None);

        std::thread::scope(|scope| -> Result<()> {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| -> Result<Vec<(usize, ScenarioOutcome)>> {
                        let mut completed = Vec::new();
                        // Per-worker flow-set memo: samplers repeat families
                        // (four paper placements, colliding hotspots), and
                        // the memo skips their route and contention-count
                        // rebuilds without any cross-thread sharing.
                        let mut cache = FlowSetCache::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(scenario) = scenarios.get(index) else {
                                return Ok(completed);
                            };
                            // A failing scenario aborts the campaign with the
                            // first error, wrapped with the scenario label so
                            // the full diagnostic (a stalled simulation
                            // reports its stuck cycle and buffered-flit
                            // count) carries *which* platform wedged.
                            let outcome = scenario.run_with_cache(&mut cache).map_err(|error| {
                                error.with_context(format!(
                                    "conformance scenario {}",
                                    scenario.label()
                                ))
                            })?;
                            completed.push((index, outcome));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (index, outcome) in handle.join().expect("campaign worker panicked")? {
                    slots[index] = Some(outcome);
                }
            }
            Ok(())
        })?;

        Ok(ConformanceReport {
            seed: self.seed,
            outcomes: slots
                .into_iter()
                .map(|slot| slot.expect("every scenario index was claimed"))
                .collect(),
        })
    }
}

/// Aggregated tightness over a group of scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignSummary {
    /// Scenarios in the group.
    pub scenarios: usize,
    /// Observed flows across the group.
    pub flows: usize,
    /// Flow-weighted mean tightness ratio.
    pub mean_tightness: f64,
    /// Largest per-flow tightness ratio in the group.
    pub max_tightness: f64,
}

/// The machine-checked verdict of a campaign, one outcome per scenario in
/// campaign order (independent of the worker count that produced it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// The campaign's master seed.
    pub seed: u64,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ConformanceReport {
    /// An empty report for `seed` — the identity element of
    /// [`ConformanceReport::merge`].
    pub fn empty(seed: u64) -> Self {
        Self {
            seed,
            outcomes: Vec::new(),
        }
    }

    /// Folds another report into this one, lifting the [`LatencyStats::merge`]
    /// algebra to whole reports: outcomes are concatenated and re-sorted by
    /// scenario index, so partial reports over disjoint index ranges merge
    /// into *exactly* the report a single-process run would have produced —
    /// byte-identical renderings — in any merge order (scenario indices are
    /// unique per campaign, making the sort total) and for any shard
    /// partition.  Every aggregate ([`ConformanceReport::observed`],
    /// tightness, per-design summaries) is derived from the outcome list, so
    /// no other state needs reconciling.
    ///
    /// The merge is total: it never fails.  Merging reports of *different*
    /// campaigns is outside the contract (the result keeps `self.seed` and
    /// whatever outcomes both sides carried) — the fleet runner's manifest
    /// config hashes exist to prevent exactly that, up front.
    pub fn merge(&mut self, other: ConformanceReport) {
        if self.outcomes.is_empty() {
            self.outcomes = other.outcomes;
        } else {
            self.outcomes.extend(other.outcomes);
        }
        self.outcomes.sort_by_key(|outcome| outcome.scenario.index);
    }

    /// Number of scenarios.
    pub fn scenario_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Total dominance violations across the campaign.
    pub fn dominance_violations(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Total cross-analysis ordering violations across the campaign.
    pub fn ordering_violations(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.ordering_violations.len())
            .sum()
    }

    /// `true` when no scenario recorded any violation.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(ScenarioOutcome::passed)
    }

    /// Total cycles the simulator executed across every scenario of the
    /// campaign — the closed-loop kernel-throughput numerator reported by
    /// `expt-perf-smoke` as `cycles_per_sec`.
    pub fn simulated_cycles(&self) -> u64 {
        self.outcomes.iter().map(|o| o.simulated_cycles).sum()
    }

    /// Every observation of the campaign folded into one summary (merged with
    /// [`LatencyStats::merge`] in scenario order).
    pub fn observed(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for outcome in &self.outcomes {
            all.merge(&outcome.observed);
        }
        all
    }

    /// Flow-weighted aggregate tightness over all scenarios.
    pub fn tightness(&self) -> TightnessSummary {
        Self::aggregate_tightness(self.outcomes.iter())
    }

    /// The scenario with the largest per-flow tightness ratio, if any flow
    /// was observed.
    pub fn tightest_scenario(&self) -> Option<&ScenarioOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.tightness.flows > 0)
            .max_by(|a, b| {
                a.tightness
                    .max
                    .partial_cmp(&b.tightness.max)
                    .expect("tightness ratios are finite")
            })
    }

    /// Aggregate tightness per design label, in deterministic label order.
    pub fn per_design(&self) -> Vec<(String, DesignSummary)> {
        let mut labels: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| o.scenario.design.label())
            .collect();
        labels.sort();
        labels.dedup();
        labels
            .into_iter()
            .map(|label| {
                let group: Vec<&ScenarioOutcome> = self
                    .outcomes
                    .iter()
                    .filter(|o| o.scenario.design.label() == label)
                    .collect();
                let summary = Self::aggregate_tightness(group.iter().copied());
                (
                    label,
                    DesignSummary {
                        scenarios: group.len(),
                        flows: summary.flows,
                        mean_tightness: summary.mean,
                        max_tightness: summary.max,
                    },
                )
            })
            .collect()
    }

    fn aggregate_tightness<'a>(
        outcomes: impl Iterator<Item = &'a ScenarioOutcome>,
    ) -> TightnessSummary {
        let mut flows = 0usize;
        let mut weighted_sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for outcome in outcomes {
            let t = outcome.tightness;
            if t.flows == 0 {
                continue;
            }
            flows += t.flows;
            weighted_sum += t.mean * t.flows as f64;
            min = min.min(t.min);
            max = max.max(t.max);
        }
        if flows == 0 {
            TightnessSummary {
                flows: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
            }
        } else {
            TightnessSummary {
                flows,
                mean: weighted_sum / flows as f64,
                min,
                max,
            }
        }
    }

    /// Renders the report as deterministic JSON — the machine-readable
    /// artifact the nightly `deep-conformance` CI job uploads.  Hand-built
    /// (the vendored serde shim has no serializer); per-scenario entries
    /// carry enough to diagnose a regression from the run page alone.
    pub fn render_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        let observed = self.observed();
        let tightness = self.tightness();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"scenario_count\": {},\n",
            self.scenario_count()
        ));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!(
            "  \"dominance_violations\": {},\n",
            self.dominance_violations()
        ));
        out.push_str(&format!(
            "  \"ordering_violations\": {},\n",
            self.ordering_violations()
        ));
        out.push_str(&format!(
            "  \"observed\": {{\"count\": {}, \"min\": {}, \"max\": {}}},\n",
            observed.count,
            if observed.is_empty() { 0 } else { observed.min },
            observed.max
        ));
        out.push_str(&format!(
            "  \"tightness\": {{\"flows\": {}, \"mean\": {:.6}, \"max\": {:.6}}},\n",
            tightness.flows, tightness.mean, tightness.max
        ));
        out.push_str("  \"per_design\": [\n");
        let per_design = self.per_design();
        for (position, (label, summary)) in per_design.iter().enumerate() {
            let comma = if position + 1 < per_design.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"design\": \"{}\", \"scenarios\": {}, \"flows\": {}, \
                 \"mean_tightness\": {:.6}, \"max_tightness\": {:.6}}}{comma}\n",
                escape(label),
                summary.scenarios,
                summary.flows,
                summary.mean_tightness,
                summary.max_tightness
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"scenarios\": [\n");
        for (position, outcome) in self.outcomes.iter().enumerate() {
            let comma = if position + 1 < self.outcomes.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"flows\": {}, \"dominance_checked\": {}, \
                 \"violations\": {}, \"ordering_violations\": {}, \"observed_max\": {}, \
                 \"tightness_max\": {:.6}}}{comma}\n",
                escape(&outcome.scenario.label()),
                outcome.flow_count,
                outcome.dominance_checked,
                outcome.violations.len(),
                outcome.ordering_violations.len(),
                outcome.observed.max,
                outcome.tightness.max
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the deterministic human-readable summary printed by
    /// `expt-conformance`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Conformance campaign — {} scenarios, seed {}\n",
            self.scenario_count(),
            self.seed
        ));
        let observed = self.observed();
        out.push_str(&format!(
            "observations    : {} messages across {} checked flows\n",
            observed.count,
            self.tightness().flows
        ));
        let checked = self.outcomes.iter().filter(|o| o.dominance_checked).count();
        out.push_str(&format!(
            "dominance scope : {checked} scenarios checked, {} ordering-only \
             (WaW on divergent flow sets)\n",
            self.scenario_count() - checked
        ));
        out.push_str(&format!(
            "dominance       : {} violations\n",
            self.dominance_violations()
        ));
        out.push_str(&format!(
            "ordering        : {} violations\n",
            self.ordering_violations()
        ));
        out.push_str("design          | scenarios | flows | mean tightness | max tightness\n");
        for (label, summary) in self.per_design() {
            out.push_str(&format!(
                "{:<15} | {:>9} | {:>5} | {:>14.3} | {:>13.3}\n",
                label,
                summary.scenarios,
                summary.flows,
                summary.mean_tightness,
                summary.max_tightness
            ));
        }
        if let Some(tightest) = self.tightest_scenario() {
            out.push_str(&format!(
                "tightest        : {:.3} at {}\n",
                tightest.tightness.max,
                tightest.scenario.label()
            ));
        }
        if !self.passed() {
            out.push_str(
                "see docs/ORACLES.md for every oracle's assumptions, validity domain and the \
                 dominance/ordering lattice\n",
            );
        }
        for outcome in self.outcomes.iter().filter(|o| !o.passed()) {
            out.push_str(&format!(
                "FAILED {}: {} dominance, {} ordering violations\n",
                outcome.scenario.label(),
                outcome.violations.len(),
                outcome.ordering_violations.len()
            ));
            for violation in &outcome.violations {
                out.push_str(&format!(
                    "  {} observed {} > {} bound {}\n",
                    violation.flow, violation.observed, violation.oracle, violation.bound
                ));
            }
            for failure in &outcome.ordering_violations {
                out.push_str(&format!("  {failure}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let campaign = Campaign::new(7, 5);
        assert_eq!(campaign.generate(), campaign.generate());
        assert_eq!(campaign.generate().len(), 5);
    }

    #[test]
    fn small_campaign_passes_and_reports() {
        let report = Campaign::new(11, 6).run(2).unwrap();
        assert_eq!(report.scenario_count(), 6);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.dominance_violations(), 0);
        assert_eq!(report.ordering_violations(), 0);
        let tightness = report.tightness();
        assert!(tightness.flows > 0);
        assert!(tightness.max <= 1.0);
        assert!(report.observed().count > 0);
        let text = report.render();
        assert!(text.contains("6 scenarios"));
        assert!(text.contains("dominance       : 0 violations"));
    }

    #[test]
    fn report_is_identical_for_any_worker_count() {
        let campaign = Campaign::new(3, 5);
        let single = campaign.run(1).unwrap();
        let parallel = campaign.run(4).unwrap();
        let oversubscribed = campaign.run(64).unwrap();
        assert_eq!(single, parallel);
        assert_eq!(single, oversubscribed);
    }

    #[test]
    fn small_vc_campaign_passes() {
        let report = Campaign::vc_sweep(11, 8).run(2).unwrap();
        assert_eq!(report.scenario_count(), 8);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.dominance_violations(), 0);
        assert_eq!(report.ordering_violations(), 0);
    }

    #[test]
    fn small_bursty_campaign_passes() {
        let report = Campaign::bursty_sweep(7, 6).run(2).unwrap();
        assert_eq!(report.scenario_count(), 6);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.dominance_violations(), 0);
        assert_eq!(report.ordering_violations(), 0);
        // The dimension must actually exercise bursty traffic.
        assert!(report
            .outcomes
            .iter()
            .all(|o| !matches!(o.scenario.traffic, crate::TrafficChoice::ClosedLoop)));
        assert!(report.observed().count > 0);
    }

    #[test]
    fn small_fault_campaign_passes() {
        let report = Campaign::fault_sweep(7, 10).run(2).unwrap();
        assert_eq!(report.scenario_count(), 10);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.dominance_violations(), 0);
        assert_eq!(report.ordering_violations(), 0);
        // The dimension must actually exercise fault injection.
        assert!(report.outcomes.iter().any(|o| !o.scenario.faults.is_none()));
    }

    #[test]
    fn per_design_covers_every_outcome() {
        let report = Campaign::new(21, 8).run(4).unwrap();
        let per_design: usize = report.per_design().iter().map(|(_, s)| s.scenarios).sum();
        assert_eq!(per_design, report.scenario_count());
    }
}
