//! Sharded campaign fleet runner: checkpointed worker processes, byte-stable
//! merge, kill/resume.
//!
//! A [`Fleet`] partitions a [`Campaign`]'s scenario index space into
//! contiguous [`ShardRange`]s.  Each shard runs as an independent worker
//! process ([`Fleet::run_with`] spawns them; [`Fleet::run_shard`] is the
//! worker entry point) and commits two files to the campaign directory:
//!
//! * `shard-NNN.partial.json` — the shard's [`PartialReport`]: every
//!   [`ScenarioOutcome`] of its index range, serialized losslessly (floats as
//!   IEEE-754 bit patterns, so rendering the merged report reproduces the
//!   single-process bytes exactly);
//! * `shard-NNN.manifest.json` — the commit record: the campaign's config
//!   hash, the shard's range, and an FNV-1a digest of the partial file's
//!   bytes.
//!
//! Both are written to a temporary name and then renamed, and the manifest is
//! written *last*, so the manifest's validity is the shard's commit point: a
//! worker killed at any instant leaves either a complete, verifiable pair or
//! no manifest at all.  [`Fleet::scan`] classifies every shard as complete,
//! missing, or corrupt (unparseable, digest mismatch, config mismatch), and
//! [`Fleet::run_with`] re-runs exactly the shards that are not complete — a
//! SIGKILL'd campaign resumes from its last committed shard.
//!
//! The merge ([`Fleet::merge`]) folds the partials through
//! [`ConformanceReport::merge`], which re-sorts outcomes by scenario index:
//! because scenario sampling is a pure function of `(dimension, seed,
//! index)` and indices are unique, the merged report is **byte-identical**
//! to the single-process [`Campaign::run`] report for any shard count and
//! any completion order.
//!
//! The vendored serde shim has no serializer, so this module carries its own
//! small JSON codec.  It is a *closed* format — the parser accepts exactly
//! what the renderer emits (unsigned decimal integers, escaped strings,
//! objects, arrays) — not a general JSON implementation.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::time::{Duration, Instant};

use wnoc_core::{Coord, Error, FlowId, NodeId, Result};
use wnoc_sim::LatencyStats;

use crate::campaign::{Campaign, CampaignDimension, ConformanceReport};
use wnoc_core::vc::VcAssignment;

use crate::scenario::{
    BufferChoice, DesignChoice, FaultChoice, Scenario, ScenarioFamily, ScenarioOutcome,
    TightnessSummary, TrafficChoice, VcChoice, Violation,
};

/// Format tag embedded in every checkpoint artifact; bump on any codec
/// change so stale checkpoints are rejected instead of misparsed.  v3 added
/// the scenario `traffic` field (the bursty arrival-curve dimension).
///
/// The version is **dimension-dependent** (see [`format_version`]): v4 adds
/// the optional scenario `faults` field, which only the fault-sweep
/// dimension emits, so every legacy dimension keeps writing — and hashing —
/// the v3 tag and its existing checkpoints and goldens stay byte-identical.
pub const FORMAT_VERSION: &str = "wnoc-fleet/v3";

/// Format tag of dimensions whose scenarios carry fault plans.
pub const FORMAT_VERSION_V4: &str = "wnoc-fleet/v4";

/// The checkpoint format version a campaign dimension writes: v4 for the
/// fault sweep (its scenarios serialize a `faults` field), v3 for every
/// legacy dimension.  Shard *manifests* stay at v3 unconditionally — they
/// carry no scenario payload, only hashes and ranges.
pub fn format_version(dimension: CampaignDimension) -> &'static str {
    match dimension {
        CampaignDimension::FaultSweep => FORMAT_VERSION_V4,
        _ => FORMAT_VERSION,
    }
}

/// Test-only fault-injection hook: when this environment variable is set to
/// a millisecond count, [`Fleet::run_shard`] stalls for that long after
/// recording its attempt and computing its outcomes but *before* committing
/// the checkpoint — a deterministic window for kill-mid-shard tests.
pub const STALL_ENV: &str = "WNOC_FLEET_TEST_STALL_MS";

/// Like [`STALL_ENV`], but the stall applies only to a shard's *first*
/// attempt: the watchdog's kill-and-retry then runs against a worker that
/// hangs once and recovers, the success path a timeout test needs.
pub const STALL_ONCE_ENV: &str = "WNOC_FLEET_TEST_STALL_ONCE_MS";

// ---------------------------------------------------------------------------
// Shard partitioning
// ---------------------------------------------------------------------------

/// One contiguous slice of a campaign's scenario index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Shard number (position in the plan).
    pub index: usize,
    /// First scenario index (inclusive).
    pub start: usize,
    /// One past the last scenario index (exclusive).
    pub end: usize,
}

impl ShardRange {
    /// Scenarios in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for a shard with no scenarios (never produced by
    /// [`partition`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for ShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {:03} [{}..{})", self.index, self.start, self.end)
    }
}

/// Partitions `scenarios` indices into at most `shards` contiguous,
/// maximally balanced ranges.
///
/// * An empty campaign partitions into **no** shards (there is nothing to
///   run; the merged report is the empty report).
/// * `shards` is clamped to `1..=scenarios`, so no shard is ever empty —
///   asking for more shards than scenarios yields one single-scenario shard
///   per scenario.
/// * The first `scenarios % shards` shards carry one extra scenario.
pub fn partition(scenarios: usize, shards: usize) -> Vec<ShardRange> {
    if scenarios == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, scenarios);
    let base = scenarios / shards;
    let extra = scenarios % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for index in 0..shards {
        let len = base + usize::from(index < extra);
        ranges.push(ShardRange {
            index,
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, scenarios);
    ranges
}

// ---------------------------------------------------------------------------
// Digest
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a over a byte string — the checkpoint digest.  Deterministic
/// across platforms and processes (unlike the std hasher, which is
/// per-process seeded).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The config hash stamped into every checkpoint artifact of a campaign:
/// FNV-1a over a canonical description of `(format version, dimension,
/// seed, scenario count)`.  The shard *plan* is deliberately excluded —
/// manifests record their own ranges, so resuming with a different shard
/// count simply re-runs the shards whose ranges changed — but any change to
/// the campaign itself (seed, size, dimension, codec version) makes every
/// existing checkpoint unmergeable.
pub fn config_hash(campaign: &Campaign) -> u64 {
    fnv1a(
        format!(
            "{} dimension={} seed={} scenarios={}",
            format_version(campaign.dimension),
            campaign.dimension.tag(),
            campaign.seed,
            campaign.scenarios
        )
        .as_bytes(),
    )
}

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (the checkpoint codec's reader half)
// ---------------------------------------------------------------------------

/// A parsed JSON value.  Numbers are unsigned 64-bit integers only — the
/// checkpoint format encodes floats as IEEE-754 bit patterns precisely so
/// that no decimal float ever needs to round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    UInt(u64),
    Bool(bool),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields
                .iter()
                .find_map(|(name, value)| (name == key).then_some(value)),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(value) => Some(*value),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(value) => Some(value),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(value) => Some(*value),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in the checkpoint JSON: backslash, quote,
/// and control characters (the parser understands exactly these escapes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct JsonParser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0 }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        let rest = &self.text.as_bytes()[self.pos..];
        let skipped = rest
            .iter()
            .take_while(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            .count();
        self.pos += skipped;
    }

    fn peek(&self) -> Option<u8> {
        self.text.as_bytes().get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'0'..=b'9') => self.parse_uint(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn parse_object(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.text[self.pos..];
            let mut chars = rest.char_indices();
            let Some((_, ch)) = chars.next() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += ch.len_utf8();
            match ch {
                '"' => return Ok(out),
                '\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .text
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.error("non-scalar \\u escape"))?;
                            self.pos += 4;
                            out.push(ch);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn parse_uint(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.text[start..self.pos]
            .parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| self.error("integer out of range"))
    }

    fn parse_bool(&mut self) -> std::result::Result<Json, String> {
        for (literal, value) in [("true", true), ("false", false)] {
            if self.text[self.pos..].starts_with(literal) {
                self.pos += literal.len();
                return Ok(Json::Bool(value));
            }
        }
        Err(self.error("expected 'true' or 'false'"))
    }
}

/// Parses one checkpoint JSON document (and requires it to span the whole
/// input).
fn parse_json(text: &str) -> std::result::Result<Json, String> {
    let mut parser = JsonParser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != text.len() {
        return Err(parser.error("trailing bytes after document"));
    }
    Ok(value)
}

/// Shorthand: a [`Error::CorruptCheckpoint`] for `path`.
fn corrupt(path: &Path, reason: impl Into<String>) -> Error {
    Error::CorruptCheckpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Fetches a required field, typed, or reports the checkpoint corrupt.
fn field<'a>(value: &'a Json, key: &str, path: &Path) -> Result<&'a Json> {
    value
        .get(key)
        .ok_or_else(|| corrupt(path, format!("missing field \"{key}\"")))
}

fn field_u64(value: &Json, key: &str, path: &Path) -> Result<u64> {
    field(value, key, path)?
        .as_u64()
        .ok_or_else(|| corrupt(path, format!("field \"{key}\" is not an integer")))
}

fn field_usize(value: &Json, key: &str, path: &Path) -> Result<usize> {
    field(value, key, path)?
        .as_usize()
        .ok_or_else(|| corrupt(path, format!("field \"{key}\" is not an index")))
}

fn field_str<'a>(value: &'a Json, key: &str, path: &Path) -> Result<&'a str> {
    field(value, key, path)?
        .as_str()
        .ok_or_else(|| corrupt(path, format!("field \"{key}\" is not a string")))
}

fn field_bool(value: &Json, key: &str, path: &Path) -> Result<bool> {
    field(value, key, path)?
        .as_bool()
        .ok_or_else(|| corrupt(path, format!("field \"{key}\" is not a bool")))
}

fn field_array<'a>(value: &'a Json, key: &str, path: &Path) -> Result<&'a [Json]> {
    field(value, key, path)?
        .as_array()
        .ok_or_else(|| corrupt(path, format!("field \"{key}\" is not an array")))
}

// ---------------------------------------------------------------------------
// Scenario / outcome codec
// ---------------------------------------------------------------------------

fn render_coord(coord: Coord) -> String {
    format!("[{},{}]", coord.x, coord.y)
}

fn parse_coord(value: &Json, path: &Path) -> Result<Coord> {
    let items = value
        .as_array()
        .filter(|items| items.len() == 2)
        .ok_or_else(|| corrupt(path, "coordinate is not a two-element array"))?;
    let component = |item: &Json| {
        item.as_u64()
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(|| corrupt(path, "coordinate component out of range"))
    };
    Ok(Coord::new(component(&items[0])?, component(&items[1])?))
}

fn render_coords(coords: &[Coord]) -> String {
    let items: Vec<String> = coords.iter().map(|&c| render_coord(c)).collect();
    format!("[{}]", items.join(","))
}

fn parse_coords(items: &[Json], path: &Path) -> Result<Vec<Coord>> {
    items.iter().map(|item| parse_coord(item, path)).collect()
}

fn render_family(family: &ScenarioFamily) -> String {
    match family {
        ScenarioFamily::AllToOne { hotspot } => {
            format!(
                "{{\"kind\":\"all-to-one\",\"hotspot\":{}}}",
                render_coord(*hotspot)
            )
        }
        ScenarioFamily::OneToAll { source } => {
            format!(
                "{{\"kind\":\"one-to-all\",\"source\":{}}}",
                render_coord(*source)
            )
        }
        ScenarioFamily::Endpoints { memories } => {
            format!(
                "{{\"kind\":\"endpoints\",\"memories\":{}}}",
                render_coords(memories)
            )
        }
        ScenarioFamily::RandomPairs { pairs } => {
            let items: Vec<String> = pairs
                .iter()
                .map(|(src, dst)| format!("[{},{}]", src.0, dst.0))
                .collect();
            format!(
                "{{\"kind\":\"random-pairs\",\"pairs\":[{}]}}",
                items.join(",")
            )
        }
        ScenarioFamily::Placement {
            name,
            memory,
            cores,
        } => {
            format!(
                "{{\"kind\":\"placement\",\"name\":\"{}\",\"memory\":{},\"cores\":{}}}",
                escape(name),
                render_coord(*memory),
                render_coords(cores)
            )
        }
    }
}

fn parse_family(value: &Json, path: &Path) -> Result<ScenarioFamily> {
    match field_str(value, "kind", path)? {
        "all-to-one" => Ok(ScenarioFamily::AllToOne {
            hotspot: parse_coord(field(value, "hotspot", path)?, path)?,
        }),
        "one-to-all" => Ok(ScenarioFamily::OneToAll {
            source: parse_coord(field(value, "source", path)?, path)?,
        }),
        "endpoints" => Ok(ScenarioFamily::Endpoints {
            memories: parse_coords(field_array(value, "memories", path)?, path)?,
        }),
        "random-pairs" => {
            let pairs = field_array(value, "pairs", path)?
                .iter()
                .map(|item| {
                    let ends = item
                        .as_array()
                        .filter(|ends| ends.len() == 2)
                        .ok_or_else(|| corrupt(path, "flow pair is not a two-element array"))?;
                    let node = |end: &Json| {
                        end.as_usize()
                            .map(NodeId)
                            .ok_or_else(|| corrupt(path, "flow endpoint is not a node id"))
                    };
                    Ok((node(&ends[0])?, node(&ends[1])?))
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(ScenarioFamily::RandomPairs { pairs })
        }
        "placement" => Ok(ScenarioFamily::Placement {
            name: field_str(value, "name", path)?.to_string(),
            memory: parse_coord(field(value, "memory", path)?, path)?,
            cores: parse_coords(field_array(value, "cores", path)?, path)?,
        }),
        unknown => Err(corrupt(path, format!("unknown family kind \"{unknown}\""))),
    }
}

fn render_design(design: &DesignChoice) -> String {
    match design {
        DesignChoice::Regular { max_packet_flits } => {
            format!("{{\"kind\":\"regular\",\"max_packet_flits\":{max_packet_flits}}}")
        }
        DesignChoice::WawWap => "{\"kind\":\"waw-wap\"}".to_string(),
    }
}

fn parse_design(value: &Json, path: &Path) -> Result<DesignChoice> {
    match field_str(value, "kind", path)? {
        "regular" => {
            let flits = field_u64(value, "max_packet_flits", path)?;
            let max_packet_flits =
                u32::try_from(flits).map_err(|_| corrupt(path, "max_packet_flits out of range"))?;
            Ok(DesignChoice::Regular { max_packet_flits })
        }
        "waw-wap" => Ok(DesignChoice::WawWap),
        unknown => Err(corrupt(path, format!("unknown design kind \"{unknown}\""))),
    }
}

fn render_buffers(buffers: &BufferChoice) -> String {
    match buffers {
        BufferChoice::Default => "{\"kind\":\"default\"}".to_string(),
        BufferChoice::Uniform { depth } => {
            format!("{{\"kind\":\"uniform\",\"depth\":{depth}}}")
        }
        BufferChoice::Heterogeneous { seed } => {
            format!("{{\"kind\":\"heterogeneous\",\"seed\":{seed}}}")
        }
    }
}

fn parse_buffers(value: &Json, path: &Path) -> Result<BufferChoice> {
    match field_str(value, "kind", path)? {
        "default" => Ok(BufferChoice::Default),
        "uniform" => {
            let depth = field_u64(value, "depth", path)?;
            let depth =
                u32::try_from(depth).map_err(|_| corrupt(path, "buffer depth out of range"))?;
            Ok(BufferChoice::Uniform { depth })
        }
        "heterogeneous" => Ok(BufferChoice::Heterogeneous {
            seed: field_u64(value, "seed", path)?,
        }),
        unknown => Err(corrupt(path, format!("unknown buffer kind \"{unknown}\""))),
    }
}

fn render_vcs(vcs: &VcChoice) -> String {
    match vcs {
        VcChoice::Default => "{\"kind\":\"default\"}".to_string(),
        VcChoice::Count { count, assignment } => {
            format!(
                "{{\"kind\":\"count\",\"count\":{count},\"assignment\":\"{}\"}}",
                assignment.tag()
            )
        }
    }
}

fn parse_vcs(value: &Json, path: &Path) -> Result<VcChoice> {
    match field_str(value, "kind", path)? {
        "default" => Ok(VcChoice::Default),
        "count" => {
            let count = field_u64(value, "count", path)?;
            let count = u32::try_from(count).map_err(|_| corrupt(path, "VC count out of range"))?;
            let assignment = match field_str(value, "assignment", path)? {
                "idx" => VcAssignment::FlowIndex,
                "dist" => VcAssignment::Distance,
                unknown => {
                    return Err(corrupt(
                        path,
                        format!("unknown VC assignment \"{unknown}\""),
                    ))
                }
            };
            Ok(VcChoice::Count { count, assignment })
        }
        unknown => Err(corrupt(path, format!("unknown VC kind \"{unknown}\""))),
    }
}

fn render_traffic(traffic: &TrafficChoice) -> String {
    match traffic {
        TrafficChoice::ClosedLoop => "{\"kind\":\"closed-loop\"}".to_string(),
        TrafficChoice::Bursty { burst, gap, cv } => {
            format!("{{\"kind\":\"bursty\",\"burst\":{burst},\"gap\":{gap},\"cv\":{cv}}}")
        }
    }
}

fn parse_traffic(value: &Json, path: &Path) -> Result<TrafficChoice> {
    match field_str(value, "kind", path)? {
        "closed-loop" => Ok(TrafficChoice::ClosedLoop),
        "bursty" => {
            let component = |key: &str| -> Result<u32> {
                let raw = field_u64(value, key, path)?;
                u32::try_from(raw).map_err(|_| corrupt(path, format!("{key} out of range")))
            };
            Ok(TrafficChoice::Bursty {
                burst: component("burst")?,
                gap: component("gap")?,
                cv: component("cv")?,
            })
        }
        unknown => Err(corrupt(path, format!("unknown traffic kind \"{unknown}\""))),
    }
}

fn render_faults(faults: &FaultChoice) -> String {
    match faults {
        FaultChoice::None => "{\"kind\":\"none\"}".to_string(),
        FaultChoice::Links {
            count,
            seed,
            activation,
        } => format!(
            "{{\"kind\":\"links\",\"count\":{count},\"seed\":{seed},\"activation\":{activation}}}"
        ),
        FaultChoice::Router { seed, activation } => {
            format!("{{\"kind\":\"router\",\"seed\":{seed},\"activation\":{activation}}}")
        }
    }
}

fn parse_faults(value: &Json, path: &Path) -> Result<FaultChoice> {
    match field_str(value, "kind", path)? {
        "none" => Ok(FaultChoice::None),
        "links" => {
            let count = field_u64(value, "count", path)?;
            Ok(FaultChoice::Links {
                count: u32::try_from(count)
                    .map_err(|_| corrupt(path, "fault count out of range"))?,
                seed: field_u64(value, "seed", path)?,
                activation: field_u64(value, "activation", path)?,
            })
        }
        "router" => Ok(FaultChoice::Router {
            seed: field_u64(value, "seed", path)?,
            activation: field_u64(value, "activation", path)?,
        }),
        unknown => Err(corrupt(path, format!("unknown fault kind \"{unknown}\""))),
    }
}

fn render_scenario(scenario: &Scenario) -> String {
    // The `faults` field is emitted only when present (v4): every legacy
    // dimension samples `FaultChoice::None`, so its checkpoints — and the
    // goldens hashed over them — remain byte-identical to v3.
    let faults = if scenario.faults.is_none() {
        String::new()
    } else {
        format!(",\"faults\":{}", render_faults(&scenario.faults))
    };
    format!(
        "{{\"index\":{},\"seed\":{},\"side\":{},\"family\":{},\"design\":{},\
         \"message_flits\":{},\"cycles\":{},\"buffers\":{},\"vcs\":{},\"traffic\":{}{}}}",
        scenario.index,
        scenario.seed,
        scenario.side,
        render_family(&scenario.family),
        render_design(&scenario.design),
        scenario.message_flits,
        scenario.cycles,
        render_buffers(&scenario.buffers),
        render_vcs(&scenario.vcs),
        render_traffic(&scenario.traffic),
        faults
    )
}

fn parse_scenario(value: &Json, path: &Path) -> Result<Scenario> {
    let side = field_u64(value, "side", path)?;
    let message_flits = field_u64(value, "message_flits", path)?;
    Ok(Scenario {
        index: field_usize(value, "index", path)?,
        seed: field_u64(value, "seed", path)?,
        side: u16::try_from(side).map_err(|_| corrupt(path, "mesh side out of range"))?,
        family: parse_family(field(value, "family", path)?, path)?,
        design: parse_design(field(value, "design", path)?, path)?,
        message_flits: u32::try_from(message_flits)
            .map_err(|_| corrupt(path, "message_flits out of range"))?,
        cycles: field_u64(value, "cycles", path)?,
        buffers: parse_buffers(field(value, "buffers", path)?, path)?,
        vcs: parse_vcs(field(value, "vcs", path)?, path)?,
        traffic: parse_traffic(field(value, "traffic", path)?, path)?,
        faults: match value.get("faults") {
            Some(faults) => parse_faults(faults, path)?,
            None => FaultChoice::None,
        },
    })
}

fn render_stats(stats: &LatencyStats) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
        stats.count, stats.sum, stats.min, stats.max
    )
}

fn parse_stats(value: &Json, path: &Path) -> Result<LatencyStats> {
    LatencyStats::from_parts(
        field_u64(value, "count", path)?,
        field_u64(value, "sum", path)?,
        field_u64(value, "min", path)?,
        field_u64(value, "max", path)?,
    )
    .ok_or_else(|| corrupt(path, "latency summary violates the merge algebra"))
}

/// Tightness ratios are serialized as IEEE-754 bit patterns: the merged
/// report re-renders them with the same `{:.6}`/`{:.3}` formatting as the
/// single-process run, so the bits — not a decimal approximation — must
/// survive the round trip.
fn render_tightness(tightness: &TightnessSummary) -> String {
    format!(
        "{{\"flows\":{},\"mean_bits\":{},\"min_bits\":{},\"max_bits\":{}}}",
        tightness.flows,
        tightness.mean.to_bits(),
        tightness.min.to_bits(),
        tightness.max.to_bits()
    )
}

fn parse_tightness(value: &Json, path: &Path) -> Result<TightnessSummary> {
    Ok(TightnessSummary {
        flows: field_usize(value, "flows", path)?,
        mean: f64::from_bits(field_u64(value, "mean_bits", path)?),
        min: f64::from_bits(field_u64(value, "min_bits", path)?),
        max: f64::from_bits(field_u64(value, "max_bits", path)?),
    })
}

fn render_violation(violation: &Violation) -> String {
    format!(
        "{{\"flow\":{},\"oracle\":\"{}\",\"observed\":{},\"bound\":{}}}",
        violation.flow.0,
        escape(&violation.oracle),
        violation.observed,
        violation.bound
    )
}

fn parse_violation(value: &Json, path: &Path) -> Result<Violation> {
    Ok(Violation {
        flow: FlowId(field_usize(value, "flow", path)?),
        oracle: field_str(value, "oracle", path)?.to_string(),
        observed: field_u64(value, "observed", path)?,
        bound: field_u64(value, "bound", path)?,
    })
}

fn render_outcome(outcome: &ScenarioOutcome) -> String {
    let violations: Vec<String> = outcome.violations.iter().map(render_violation).collect();
    let ordering: Vec<String> = outcome
        .ordering_violations
        .iter()
        .map(|text| format!("\"{}\"", escape(text)))
        .collect();
    format!(
        "{{\"scenario\":{},\"flow_count\":{},\"observed\":{},\"simulated_cycles\":{},\
         \"dominance_checked\":{},\"violations\":[{}],\"ordering_violations\":[{}],\
         \"tightness\":{}}}",
        render_scenario(&outcome.scenario),
        outcome.flow_count,
        render_stats(&outcome.observed),
        outcome.simulated_cycles,
        outcome.dominance_checked,
        violations.join(","),
        ordering.join(","),
        render_tightness(&outcome.tightness)
    )
}

fn parse_outcome(value: &Json, path: &Path) -> Result<ScenarioOutcome> {
    let violations = field_array(value, "violations", path)?
        .iter()
        .map(|item| parse_violation(item, path))
        .collect::<Result<Vec<_>>>()?;
    let ordering_violations = field_array(value, "ordering_violations", path)?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| corrupt(path, "ordering violation is not a string"))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ScenarioOutcome {
        scenario: parse_scenario(field(value, "scenario", path)?, path)?,
        flow_count: field_usize(value, "flow_count", path)?,
        observed: parse_stats(field(value, "observed", path)?, path)?,
        simulated_cycles: field_u64(value, "simulated_cycles", path)?,
        dominance_checked: field_bool(value, "dominance_checked", path)?,
        violations,
        ordering_violations,
        tightness: parse_tightness(field(value, "tightness", path)?, path)?,
    })
}

// ---------------------------------------------------------------------------
// Partial reports
// ---------------------------------------------------------------------------

/// The deterministic result of one shard: the campaign identity plus every
/// [`ScenarioOutcome`] of the shard's index range, in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialReport {
    /// The campaign the shard belongs to.
    pub campaign: Campaign,
    /// The shard's index range.
    pub shard: ShardRange,
    /// Outcomes for scenario indices `shard.start..shard.end`, in order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl PartialReport {
    /// Runs the shard's scenarios and collects their outcomes — the pure
    /// compute half of a worker, shared by the process entry point
    /// ([`Fleet::run_shard`]) and in-process tests.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error, wrapped with the scenario label
    /// (mirrors [`Campaign::run`]).
    pub fn compute(campaign: &Campaign, shard: ShardRange) -> Result<Self> {
        let mut outcomes = Vec::with_capacity(shard.len());
        for index in shard.start..shard.end {
            let scenario = campaign.scenario(index);
            let outcome = scenario.run().map_err(|error| {
                error.with_context(format!("conformance scenario {}", scenario.label()))
            })?;
            outcomes.push(outcome);
        }
        Ok(Self {
            campaign: *campaign,
            shard,
            outcomes,
        })
    }

    /// Converts the partial into a mergeable [`ConformanceReport`] fragment.
    pub fn into_report(self) -> ConformanceReport {
        ConformanceReport {
            seed: self.campaign.seed,
            outcomes: self.outcomes,
        }
    }

    /// Serializes the partial as deterministic JSON (one outcome per line).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "\"format\":\"{}\",\n",
            format_version(self.campaign.dimension)
        ));
        out.push_str("\"kind\":\"partial\",\n");
        out.push_str(&format!(
            "\"config_hash\":{},\n",
            config_hash(&self.campaign)
        ));
        out.push_str(&format!(
            "\"dimension\":\"{}\",\n",
            self.campaign.dimension.tag()
        ));
        out.push_str(&format!("\"seed\":{},\n", self.campaign.seed));
        out.push_str(&format!(
            "\"scenario_count\":{},\n",
            self.campaign.scenarios
        ));
        out.push_str(&format!(
            "\"shard\":{{\"index\":{},\"start\":{},\"end\":{}}},\n",
            self.shard.index, self.shard.start, self.shard.end
        ));
        out.push_str("\"outcomes\":[\n");
        for (position, outcome) in self.outcomes.iter().enumerate() {
            let comma = if position + 1 < self.outcomes.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("{}{comma}\n", render_outcome(outcome)));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a partial report and validates its internal consistency: the
    /// format tag, the embedded config hash against the campaign fields, and
    /// that the outcomes are exactly the shard's indices in order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] (with `path` as the blamed
    /// artifact) on any parse or consistency failure.
    pub fn parse_json(text: &str, path: &Path) -> Result<Self> {
        let value = parse_json(text).map_err(|reason| corrupt(path, reason))?;
        if field_str(&value, "kind", path)? != "partial" {
            return Err(corrupt(path, "not a partial report"));
        }
        // The expected format tag depends on the dimension (v4 for the fault
        // sweep, v3 otherwise), so resolve the dimension before checking it.
        let dimension_tag = field_str(&value, "dimension", path)?;
        let dimension = CampaignDimension::from_tag(dimension_tag)
            .ok_or_else(|| corrupt(path, format!("unknown dimension \"{dimension_tag}\"")))?;
        if field_str(&value, "format", path)? != format_version(dimension) {
            return Err(corrupt(path, "unknown format version"));
        }
        let campaign = Campaign {
            seed: field_u64(&value, "seed", path)?,
            scenarios: field_usize(&value, "scenario_count", path)?,
            dimension,
        };
        if field_u64(&value, "config_hash", path)? != config_hash(&campaign) {
            return Err(corrupt(path, "config hash does not match campaign fields"));
        }
        let shard_value = field(&value, "shard", path)?;
        let shard = ShardRange {
            index: field_usize(shard_value, "index", path)?,
            start: field_usize(shard_value, "start", path)?,
            end: field_usize(shard_value, "end", path)?,
        };
        if shard.start > shard.end || shard.end > campaign.scenarios {
            return Err(corrupt(path, "shard range outside the campaign"));
        }
        let outcomes = field_array(&value, "outcomes", path)?
            .iter()
            .map(|item| parse_outcome(item, path))
            .collect::<Result<Vec<_>>>()?;
        if outcomes.len() != shard.len() {
            return Err(corrupt(
                path,
                "outcome count does not match the shard range",
            ));
        }
        for (offset, outcome) in outcomes.iter().enumerate() {
            if outcome.scenario.index != shard.start + offset {
                return Err(corrupt(
                    path,
                    "outcome indices do not match the shard range",
                ));
            }
            if outcome.scenario.seed != campaign.seed {
                return Err(corrupt(path, "outcome seed does not match the campaign"));
            }
        }
        Ok(Self {
            campaign,
            shard,
            outcomes,
        })
    }
}

// ---------------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------------

/// A shard's commit record, written (atomically, last) once its partial
/// report is durable.  A shard counts as complete exactly when its manifest
/// parses, carries the campaign's config hash and planned range, and the
/// digest matches the partial file's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// The campaign config hash the shard was run under.
    pub config_hash: u64,
    /// The shard's index range.
    pub shard: ShardRange,
    /// Outcomes in the partial report (== `shard.len()`).
    pub outcomes: usize,
    /// FNV-1a digest of the partial report file's exact bytes.
    pub partial_digest: u64,
}

impl ShardManifest {
    /// Serializes the manifest as deterministic JSON.
    pub fn render_json(&self) -> String {
        format!(
            "{{\n\"format\":\"{FORMAT_VERSION}\",\n\"kind\":\"manifest\",\n\
             \"config_hash\":{},\n\
             \"shard\":{{\"index\":{},\"start\":{},\"end\":{}}},\n\
             \"outcomes\":{},\n\"partial_digest\":{}\n}}\n",
            self.config_hash,
            self.shard.index,
            self.shard.start,
            self.shard.end,
            self.outcomes,
            self.partial_digest
        )
    }

    /// Parses a manifest.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] on any parse failure.
    pub fn parse_json(text: &str, path: &Path) -> Result<Self> {
        let value = parse_json(text).map_err(|reason| corrupt(path, reason))?;
        if field_str(&value, "format", path)? != FORMAT_VERSION {
            return Err(corrupt(path, "unknown format version"));
        }
        if field_str(&value, "kind", path)? != "manifest" {
            return Err(corrupt(path, "not a shard manifest"));
        }
        let shard_value = field(&value, "shard", path)?;
        Ok(Self {
            config_hash: field_u64(&value, "config_hash", path)?,
            shard: ShardRange {
                index: field_usize(shard_value, "index", path)?,
                start: field_usize(shard_value, "start", path)?,
                end: field_usize(shard_value, "end", path)?,
            },
            outcomes: field_usize(&value, "outcomes", path)?,
            partial_digest: field_u64(&value, "partial_digest", path)?,
        })
    }
}

// ---------------------------------------------------------------------------
// The fleet
// ---------------------------------------------------------------------------

/// Internal verdict of [`Fleet::verify_shard`]: which checkpoint artifact is
/// at fault, so [`Error::CorruptCheckpoint`] blames the actually-corrupt
/// file (a bad partial must not be reported against its manifest).
enum ShardFault {
    /// No manifest: the shard never committed (not a corruption).
    Missing,
    /// A checkpoint artifact failed validation.
    Corrupt {
        /// The artifact at fault (partial or manifest).
        path: PathBuf,
        /// Why it failed, with expected-vs-actual digests where applicable.
        reason: String,
    },
}

/// How a shard's checkpoint looked when scanned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardState {
    /// Manifest valid, digest matches: the shard will not be re-run.
    Complete,
    /// No manifest: the shard has never committed.
    Missing,
    /// A checkpoint artifact exists but failed validation (the reason says
    /// why); the shard is re-run and its files overwritten.
    Corrupt(String),
}

/// One shard's scan result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The planned range.
    pub range: ShardRange,
    /// Checkpoint state.
    pub state: ShardState,
    /// Recorded run attempts (lines in the shard's attempts file) — the
    /// fault-injection observable: a resumed campaign increments this only
    /// for the shards it actually re-ran.
    pub attempts: usize,
}

/// Summary of one [`Fleet::run_with`] invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRunSummary {
    /// Shards executed by this invocation, in plan order.
    pub ran: Vec<usize>,
    /// Shards whose checkpoints were already complete and were reused.
    pub reused: Vec<usize>,
    /// `true` when the invocation stopped early (`halt_after`), simulating a
    /// killed campaign; the directory is resumable.
    pub halted: bool,
}

/// A sharded, checkpointed campaign: the [`Campaign`], a shard count, and
/// the campaign directory holding the checkpoints.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The campaign being run.
    pub campaign: Campaign,
    /// Requested shard count (clamped by [`partition`]).
    pub shards: usize,
    /// Campaign directory (created by [`Fleet::prepare_dir`]).
    pub dir: PathBuf,
    /// Watchdog budget per worker attempt: a worker still running after this
    /// long is killed and its shard retried once; a second overrun fails the
    /// campaign with [`Error::ShardFailed`].  `None` (the default) disables
    /// the watchdog.
    pub shard_timeout: Option<Duration>,
}

impl Fleet {
    /// Creates a fleet description (no filesystem access).
    pub fn new(campaign: Campaign, shards: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            campaign,
            shards,
            dir: dir.into(),
            shard_timeout: None,
        }
    }

    /// Arms the per-shard watchdog (see [`Fleet::shard_timeout`]).
    #[must_use]
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// The shard plan.
    pub fn plan(&self) -> Vec<ShardRange> {
        partition(self.campaign.scenarios, self.shards)
    }

    /// The campaign's config hash (see [`config_hash`]).
    pub fn config_hash(&self) -> u64 {
        config_hash(&self.campaign)
    }

    /// Path of shard `index`'s partial report.
    pub fn partial_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("shard-{index:03}.partial.json"))
    }

    /// Path of shard `index`'s manifest.
    pub fn manifest_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("shard-{index:03}.manifest.json"))
    }

    /// Path of shard `index`'s attempts file (one line per run attempt).
    pub fn attempts_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("shard-{index:03}.attempts"))
    }

    /// Path of the campaign-level manifest.
    pub fn campaign_manifest_path(&self) -> PathBuf {
        self.dir.join("campaign.json")
    }

    fn render_campaign_manifest(&self) -> String {
        format!(
            "{{\n\"format\":\"{}\",\n\"kind\":\"campaign\",\n\
             \"config_hash\":{},\n\"dimension\":\"{}\",\n\"seed\":{},\n\
             \"scenario_count\":{}\n}}\n",
            format_version(self.campaign.dimension),
            self.config_hash(),
            self.campaign.dimension.tag(),
            self.campaign.seed,
            self.campaign.scenarios
        )
    }

    /// Creates the campaign directory and its `campaign.json` manifest, or
    /// validates an existing one for resume.
    ///
    /// A directory whose manifest carries a *different* config hash is a
    /// stale checkpoint dir from another campaign: it is **rejected**, never
    /// merged — pass `fresh = true` (the front-end's `--fresh`) to wipe and
    /// re-initialise it instead.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] for a config mismatch or an
    /// unreadable/unparseable manifest, and wraps filesystem errors the same
    /// way.
    pub fn prepare_dir(&self, fresh: bool) -> Result<()> {
        let manifest_path = self.campaign_manifest_path();
        if fresh && self.dir.exists() {
            fs::remove_dir_all(&self.dir)
                .map_err(|e| corrupt(&self.dir, format!("cannot clear directory: {e}")))?;
        }
        fs::create_dir_all(&self.dir)
            .map_err(|e| corrupt(&self.dir, format!("cannot create directory: {e}")))?;
        let expected = self.render_campaign_manifest();
        match fs::read_to_string(&manifest_path) {
            Ok(existing) => {
                let parsed =
                    parse_json(&existing).map_err(|reason| corrupt(&manifest_path, reason))?;
                let hash = field_u64(&parsed, "config_hash", &manifest_path)?;
                if hash != self.config_hash() {
                    return Err(corrupt(
                        &manifest_path,
                        format!(
                            "campaign config mismatch (directory has {:#018x}, this campaign \
                             is {:#018x}: seed {}, {} scenarios, {} dimension) — use a \
                             different --dir or pass --fresh to discard the old checkpoints",
                            hash,
                            self.config_hash(),
                            self.campaign.seed,
                            self.campaign.scenarios,
                            self.campaign.dimension.tag()
                        ),
                    ));
                }
                Ok(())
            }
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                write_atomic(&manifest_path, expected.as_bytes())
            }
            Err(error) => Err(corrupt(
                &manifest_path,
                format!("cannot read campaign manifest: {error}"),
            )),
        }
    }

    /// Classifies every planned shard's checkpoint (no scenario is run).
    pub fn scan(&self) -> Vec<ShardStatus> {
        self.plan()
            .into_iter()
            .map(|range| ShardStatus {
                range,
                state: self.shard_state(range),
                attempts: self.attempts(range.index),
            })
            .collect()
    }

    fn shard_state(&self, range: ShardRange) -> ShardState {
        match self.verify_shard(range) {
            Ok(()) => ShardState::Complete,
            Err(ShardFault::Missing) => ShardState::Missing,
            Err(ShardFault::Corrupt { path, reason }) => {
                ShardState::Corrupt(format!("{}: {reason}", path.display()))
            }
        }
    }

    /// Validates shard `range`'s checkpoint pair, blaming the artifact that
    /// actually failed: manifest faults (unreadable, unparseable, wrong
    /// config/range/count) name the manifest file; partial faults
    /// (unreadable, digest mismatch against the manifest's recorded FNV-1a)
    /// name the partial file.  Digest faults carry the expected and actual
    /// digests so a truncated or hand-edited partial is diagnosable from the
    /// error alone.
    fn verify_shard(&self, range: ShardRange) -> std::result::Result<(), ShardFault> {
        let manifest_path = self.manifest_path(range.index);
        let blame_manifest = |reason: String| ShardFault::Corrupt {
            path: manifest_path.clone(),
            reason,
        };
        let text = match fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                return Err(ShardFault::Missing);
            }
            Err(error) => return Err(blame_manifest(format!("manifest unreadable: {error}"))),
        };
        let manifest = ShardManifest::parse_json(&text, &manifest_path).map_err(|error| {
            blame_manifest(match error {
                Error::CorruptCheckpoint { reason, .. } => reason,
                other => other.to_string(),
            })
        })?;
        if manifest.config_hash != self.config_hash() {
            return Err(blame_manifest(format!(
                "manifest config hash mismatch: campaign is {:#018x}, manifest records {:#018x}",
                self.config_hash(),
                manifest.config_hash
            )));
        }
        if manifest.shard != range {
            return Err(blame_manifest(format!(
                "manifest range [{}..{}) does not match planned {range}",
                manifest.shard.start, manifest.shard.end
            )));
        }
        if manifest.outcomes != range.len() {
            return Err(blame_manifest(format!(
                "manifest outcome count mismatch: shard holds {} scenarios, manifest records {}",
                range.len(),
                manifest.outcomes
            )));
        }
        let partial_path = self.partial_path(range.index);
        let blame_partial = |reason: String| ShardFault::Corrupt {
            path: partial_path.clone(),
            reason,
        };
        let bytes = match fs::read(&partial_path) {
            Ok(bytes) => bytes,
            Err(error) => {
                return Err(blame_partial(format!("partial report unreadable: {error}")));
            }
        };
        let actual = fnv1a(&bytes);
        if actual != manifest.partial_digest {
            return Err(blame_partial(format!(
                "partial report digest mismatch: manifest expects {:#018x}, file bytes hash \
                 to {:#018x}",
                manifest.partial_digest, actual
            )));
        }
        Ok(())
    }

    /// Run attempts recorded for shard `index` (0 when never attempted).
    pub fn attempts(&self, index: usize) -> usize {
        fs::read_to_string(self.attempts_path(index))
            .map(|text| text.lines().count())
            .unwrap_or(0)
    }

    fn record_attempt(&self, index: usize) -> Result<()> {
        let path = self.attempts_path(index);
        let mut existing = fs::read_to_string(&path).unwrap_or_default();
        existing.push_str("attempt\n");
        write_atomic(&path, existing.as_bytes())
    }

    /// Worker entry point: runs shard `index`'s scenarios and commits its
    /// checkpoint (partial report first, manifest last, both written to a
    /// temporary name and renamed — the manifest is the commit point).
    ///
    /// Records one line in the shard's attempts file *before* running, so a
    /// worker killed mid-shard is still visible as an attempt.
    ///
    /// # Errors
    ///
    /// Returns scenario errors (wrapped with the scenario label) and
    /// filesystem failures as [`Error::CorruptCheckpoint`].
    pub fn run_shard(&self, index: usize) -> Result<()> {
        let plan = self.plan();
        let range = *plan.get(index).ok_or_else(|| Error::InvalidConfig {
            reason: format!("shard {index} outside the {}-shard plan", plan.len()),
        })?;
        fs::create_dir_all(&self.dir)
            .map_err(|e| corrupt(&self.dir, format!("cannot create directory: {e}")))?;
        self.record_attempt(index)?;
        let partial = PartialReport::compute(&self.campaign, range)?;
        // Deterministic fault-injection window for kill tests: outcomes are
        // computed, nothing is committed yet.
        if let Ok(stall) = std::env::var(STALL_ENV) {
            if let Ok(millis) = stall.parse::<u64>() {
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        // The attempt line above was this attempt's: count == 1 means no
        // prior attempt existed, i.e. this is the shard's first run.
        if self.attempts(index) == 1 {
            if let Ok(stall) = std::env::var(STALL_ONCE_ENV) {
                if let Ok(millis) = stall.parse::<u64>() {
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
        }
        let json = partial.render_json();
        write_atomic(&self.partial_path(index), json.as_bytes())?;
        let manifest = ShardManifest {
            config_hash: self.config_hash(),
            shard: range,
            outcomes: range.len(),
            partial_digest: fnv1a(json.as_bytes()),
        };
        write_atomic(
            &self.manifest_path(index),
            manifest.render_json().as_bytes(),
        )
    }

    /// Orchestrates the fleet: scans the directory, reuses complete shards,
    /// and drives the incomplete ones through worker processes — at most
    /// `workers` children at a time, spawned by `spawn` (typically
    /// `current_exe() --worker-shard <index>`).
    ///
    /// `halt_after` stops the invocation once that many shards have
    /// completed *in this invocation* (in-flight children are killed),
    /// simulating a campaign death for resume tests and the CI smoke; the
    /// summary comes back with `halted = true` and the directory resumes
    /// cleanly.
    ///
    /// # Errors
    ///
    /// Fails if a worker cannot be spawned, exits unsuccessfully, or exits
    /// successfully without leaving a valid checkpoint.  Completed shards
    /// keep their checkpoints either way — a failed campaign is resumable.
    /// With [`Fleet::shard_timeout`] armed, a worker that overruns the
    /// budget is killed and its shard respawned once; a second overrun
    /// returns [`Error::ShardFailed`] naming the shard.
    pub fn run_with(
        &self,
        workers: usize,
        halt_after: Option<usize>,
        mut spawn: impl FnMut(&ShardRange) -> std::io::Result<Child>,
    ) -> Result<FleetRunSummary> {
        struct Inflight {
            range: ShardRange,
            child: Child,
            started: Instant,
            /// Watchdog kills already spent on this shard (0 or 1).
            timeouts: usize,
        }
        let statuses = self.scan();
        let mut summary = FleetRunSummary {
            ran: Vec::new(),
            reused: Vec::new(),
            halted: false,
        };
        let mut pending: Vec<ShardRange> = Vec::new();
        for status in statuses {
            if status.state == ShardState::Complete {
                summary.reused.push(status.range.index);
            } else {
                pending.push(status.range);
            }
        }
        let workers = workers.max(1);
        let mut queue = pending.into_iter();
        let mut inflight: Vec<Inflight> = Vec::new();
        let mut completed_now = 0usize;
        let halt_budget = halt_after.unwrap_or(usize::MAX);

        loop {
            while inflight.len() < workers && completed_now < halt_budget {
                let Some(range) = queue.next() else { break };
                let child = spawn(&range).map_err(|e| {
                    corrupt(&self.dir, format!("cannot spawn worker for {range}: {e}"))
                })?;
                inflight.push(Inflight {
                    range,
                    child,
                    started: Instant::now(),
                    timeouts: 0,
                });
            }
            if inflight.is_empty() {
                break;
            }
            // std::process has no wait-any; poll the small in-flight set.
            let (position, status) = 'poll: loop {
                for (position, entry) in inflight.iter_mut().enumerate() {
                    match entry.child.try_wait() {
                        Ok(Some(status)) => break 'poll (position, status),
                        Ok(None) => {}
                        Err(error) => {
                            return Err(corrupt(
                                &self.dir,
                                format!("cannot wait for worker of {}: {error}", entry.range),
                            ));
                        }
                    }
                    // Watchdog: a worker past its wall-clock budget gets
                    // SIGKILL'd; its checkpoint is uncommitted (the manifest
                    // is the commit point), so the shard retries cleanly.
                    if let Some(timeout) = self.shard_timeout {
                        if entry.started.elapsed() >= timeout {
                            let _ = entry.child.kill();
                            let _ = entry.child.wait();
                            if entry.timeouts >= 1 {
                                let range = entry.range;
                                inflight.remove(position);
                                for other in inflight.iter_mut() {
                                    let _ = other.child.kill();
                                    let _ = other.child.wait();
                                }
                                return Err(Error::ShardFailed {
                                    shard: range.index,
                                    reason: format!(
                                        "worker exceeded the {timeout:?} shard timeout twice \
                                         (killed both times); completed shards are \
                                         checkpointed — re-run to resume"
                                    ),
                                });
                            }
                            entry.child = spawn(&entry.range).map_err(|e| {
                                corrupt(
                                    &self.dir,
                                    format!("cannot respawn worker for {}: {e}", entry.range),
                                )
                            })?;
                            entry.started = Instant::now();
                            entry.timeouts += 1;
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            let entry = inflight.swap_remove(position);
            let range = entry.range;
            if !status.success() {
                return Err(corrupt(
                    &self.dir,
                    format!(
                        "worker for {range} exited with {status}; completed shards are \
                         checkpointed — re-run to resume"
                    ),
                ));
            }
            if self.shard_state(range) != ShardState::Complete {
                return Err(corrupt(
                    &self.manifest_path(range.index),
                    format!("worker for {range} exited successfully without a valid checkpoint"),
                ));
            }
            summary.ran.push(range.index);
            completed_now += 1;
            if completed_now >= halt_budget && (queue.len() > 0 || !inflight.is_empty()) {
                // Simulate the campaign dying: kill in-flight workers
                // mid-shard and stop spawning.  Their shards stay incomplete
                // and re-run on resume.
                for entry in inflight.iter_mut() {
                    let _ = entry.child.kill();
                    let _ = entry.child.wait();
                }
                summary.halted = true;
                break;
            }
        }
        summary.ran.sort_unstable();
        summary.reused.sort_unstable();
        Ok(summary)
    }

    /// Merges every shard's partial report into the campaign's final
    /// [`ConformanceReport`] — byte-identical to the single-process
    /// [`Campaign::run`] output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] if any shard is missing or fails
    /// validation (run the fleet to completion first).
    pub fn merge(&self) -> Result<ConformanceReport> {
        let mut report = ConformanceReport::empty(self.campaign.seed);
        for range in self.plan() {
            match self.verify_shard(range) {
                Ok(()) => {}
                Err(ShardFault::Missing) => {
                    return Err(corrupt(
                        &self.manifest_path(range.index),
                        format!("{range} has no checkpoint; run the fleet to completion"),
                    ));
                }
                Err(ShardFault::Corrupt { path, reason }) => {
                    return Err(corrupt(&path, reason));
                }
            }
            let path = self.partial_path(range.index);
            let text = fs::read_to_string(&path)
                .map_err(|e| corrupt(&path, format!("partial unreadable: {e}")))?;
            let partial = PartialReport::parse_json(&text, &path)?;
            if partial.campaign != self.campaign {
                return Err(corrupt(&path, "partial campaign does not match the fleet"));
            }
            if partial.shard != range {
                return Err(corrupt(&path, "partial range does not match the plan"));
            }
            report.merge(partial.into_report());
        }
        Ok(report)
    }

    /// Renders the deterministic shard table printed by `expt-campaign`:
    /// the plan, each shard's attempts, and whether this invocation ran or
    /// reused it.  Contains no paths or timings, so it is golden-snapshot
    /// stable.
    pub fn render_status(&self, summary: &FleetRunSummary) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Campaign fleet — {} scenarios, seed {}, dimension {}, {} shard(s), \
             config {:#018x}\n",
            self.campaign.scenarios,
            self.campaign.seed,
            self.campaign.dimension.tag(),
            self.plan().len(),
            self.config_hash()
        ));
        out.push_str("shard | range        | scenarios | attempts | status\n");
        for status in self.scan() {
            let verdict = if summary.ran.contains(&status.range.index) {
                "ran"
            } else if summary.reused.contains(&status.range.index) {
                "reused"
            } else {
                match status.state {
                    ShardState::Complete => "complete",
                    ShardState::Missing => "missing",
                    ShardState::Corrupt(_) => "corrupt",
                }
            };
            out.push_str(&format!(
                "  {:03} | [{:>4}..{:>4}) | {:>9} | {:>8} | {}\n",
                status.range.index,
                status.range.start,
                status.range.end,
                status.range.len(),
                status.attempts,
                verdict
            ));
        }
        out
    }
}

/// Writes `bytes` to `path` atomically: a temporary sibling plus a rename,
/// so readers never observe a half-written checkpoint artifact.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes).map_err(|e| corrupt(&tmp, format!("cannot write: {e}")))?;
    fs::rename(&tmp, path).map_err(|e| corrupt(path, format!("cannot rename into place: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wnoc-fleet-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn partition_covers_every_index_contiguously() {
        for scenarios in [1usize, 2, 5, 7, 16, 100] {
            for shards in [1usize, 2, 3, 4, 7, 8, 200] {
                let plan = partition(scenarios, shards);
                assert!(!plan.is_empty());
                assert!(plan.len() <= shards.min(scenarios));
                assert_eq!(plan[0].start, 0);
                assert_eq!(plan.last().unwrap().end, scenarios);
                for window in plan.windows(2) {
                    assert_eq!(window[0].end, window[1].start, "contiguous");
                }
                for (index, range) in plan.iter().enumerate() {
                    assert_eq!(range.index, index);
                    assert!(!range.is_empty(), "no empty shards");
                }
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = plan.iter().map(ShardRange::len).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "{scenarios}/{shards}: {lens:?}");
            }
        }
    }

    #[test]
    fn partition_edge_cases() {
        // Empty campaign: nothing to run.
        assert!(partition(0, 4).is_empty());
        assert!(partition(0, 0).is_empty());
        // Shards clamped: more shards than scenarios yields one per scenario.
        assert_eq!(partition(3, 8).len(), 3);
        // Zero requested shards clamps up to one.
        assert_eq!(partition(5, 0).len(), 1);
        // Single shard spans everything.
        let single = partition(9, 1);
        assert_eq!(single.len(), 1);
        assert_eq!((single[0].start, single[0].end), (0, 9));
    }

    #[test]
    fn fnv1a_matches_the_published_vectors() {
        // The offset basis and the standard test vector for "a": the digest
        // must stay stable across releases or every checkpoint invalidates.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn config_hash_separates_campaigns() {
        let base = Campaign::new(7, 200);
        assert_eq!(config_hash(&base), config_hash(&Campaign::new(7, 200)));
        assert_ne!(config_hash(&base), config_hash(&Campaign::new(8, 200)));
        assert_ne!(config_hash(&base), config_hash(&Campaign::new(7, 201)));
        assert_ne!(
            config_hash(&base),
            config_hash(&Campaign::buffer_sweep(7, 200))
        );
        assert_ne!(config_hash(&base), config_hash(&Campaign::vc_sweep(7, 200)));
        assert_ne!(
            config_hash(&Campaign::buffer_sweep(7, 200)),
            config_hash(&Campaign::vc_sweep(7, 200))
        );
        assert_ne!(
            config_hash(&base),
            config_hash(&Campaign::bursty_sweep(7, 200))
        );
        assert_ne!(
            config_hash(&Campaign::vc_sweep(7, 200)),
            config_hash(&Campaign::bursty_sweep(7, 200))
        );
        assert_ne!(
            config_hash(&base),
            config_hash(&Campaign::fault_sweep(7, 200))
        );
        assert_ne!(
            config_hash(&Campaign::bursty_sweep(7, 200)),
            config_hash(&Campaign::fault_sweep(7, 200))
        );
    }

    /// Legacy dimensions must keep hashing the v3 format string: the
    /// expt-campaign golden embeds `config 0xb455082569e10341` for
    /// `Campaign::new(7, 25)`, and a silent hash change would orphan every
    /// existing checkpoint directory.
    #[test]
    fn legacy_config_hash_is_frozen() {
        assert_eq!(config_hash(&Campaign::new(7, 25)), 0xb455_0825_69e1_0341);
        assert_eq!(format_version(CampaignDimension::Core), FORMAT_VERSION);
        assert_eq!(
            format_version(CampaignDimension::FaultSweep),
            FORMAT_VERSION_V4
        );
    }

    /// A handcrafted outcome exercising every codec branch: violations,
    /// ordering strings with quotes/backslashes/newlines, non-finite-free
    /// floats that do not survive decimal printing, and an empty stats edge.
    fn nasty_outcome() -> ScenarioOutcome {
        let mut observed = LatencyStats::new();
        observed.record(17);
        observed.record(3);
        ScenarioOutcome {
            scenario: Scenario {
                index: 42,
                seed: 9,
                side: 5,
                family: ScenarioFamily::Placement {
                    name: "P\"\\\n1".to_string(),
                    memory: Coord::new(0, 0),
                    cores: vec![Coord::new(1, 2), Coord::new(3, 4)],
                },
                design: DesignChoice::Regular {
                    max_packet_flits: 8,
                },
                message_flits: 9,
                cycles: 1_234,
                buffers: BufferChoice::Heterogeneous { seed: 77 },
                vcs: VcChoice::Count {
                    count: 3,
                    assignment: VcAssignment::Distance,
                },
                traffic: TrafficChoice::Bursty {
                    burst: 5,
                    gap: 4_321,
                    cv: 50,
                },
                faults: FaultChoice::None,
            },
            flow_count: 3,
            observed,
            simulated_cycles: 9_876,
            dominance_checked: true,
            violations: vec![Violation {
                flow: FlowId(2),
                oracle: "buffer-aware".to_string(),
                observed: 100,
                bound: 99,
            }],
            ordering_violations: vec!["f0: \"slot\" above\nreference \\ bound".to_string()],
            tightness: TightnessSummary {
                flows: 3,
                mean: 0.1 + 0.2, // 0.30000000000000004: decimal printing loses it
                min: f64::MIN_POSITIVE,
                max: 1.0000000000000002,
            },
        }
    }

    #[test]
    fn outcome_codec_round_trips_exactly() {
        let outcome = nasty_outcome();
        let rendered = render_outcome(&outcome);
        let parsed = parse_json(&rendered).expect("rendered outcome parses");
        let back = parse_outcome(&parsed, Path::new("inline")).expect("outcome reconstructs");
        assert_eq!(back, outcome);
        // Float bits, not decimal approximations.
        assert_eq!(
            back.tightness.mean.to_bits(),
            outcome.tightness.mean.to_bits()
        );
        assert_eq!(
            back.tightness.min.to_bits(),
            outcome.tightness.min.to_bits()
        );
    }

    #[test]
    fn every_family_round_trips() {
        let families = [
            ScenarioFamily::AllToOne {
                hotspot: Coord::new(3, 1),
            },
            ScenarioFamily::OneToAll {
                source: Coord::new(0, 7),
            },
            ScenarioFamily::Endpoints {
                memories: vec![Coord::new(1, 1), Coord::new(2, 2)],
            },
            ScenarioFamily::RandomPairs {
                pairs: vec![(NodeId(0), NodeId(5)), (NodeId(9), NodeId(1))],
            },
            ScenarioFamily::Placement {
                name: "P3".to_string(),
                memory: Coord::new(0, 0),
                cores: vec![Coord::new(4, 4)],
            },
        ];
        for family in families {
            let rendered = render_family(&family);
            let parsed = parse_json(&rendered).expect("family renders as JSON");
            let back = parse_family(&parsed, Path::new("inline")).expect("family reconstructs");
            assert_eq!(back, family);
        }
    }

    #[test]
    fn every_traffic_choice_round_trips() {
        for traffic in [
            TrafficChoice::ClosedLoop,
            TrafficChoice::Bursty {
                burst: 0,
                gap: 1,
                cv: 0,
            },
            TrafficChoice::Bursty {
                burst: 6,
                gap: 123_456,
                cv: 50,
            },
        ] {
            let rendered = render_traffic(&traffic);
            let parsed = parse_json(&rendered).expect("traffic renders as JSON");
            let back = parse_traffic(&parsed, Path::new("inline")).expect("traffic reconstructs");
            assert_eq!(back, traffic);
        }
    }

    #[test]
    fn every_fault_choice_round_trips() {
        for faults in [
            FaultChoice::None,
            FaultChoice::Links {
                count: 3,
                seed: 987_654,
                activation: 0,
            },
            FaultChoice::Router {
                seed: 42,
                activation: 5_000,
            },
        ] {
            let rendered = render_faults(&faults);
            let parsed = parse_json(&rendered).expect("faults render as JSON");
            let back = parse_faults(&parsed, Path::new("inline")).expect("faults reconstruct");
            assert_eq!(back, faults);
        }
    }

    /// A fault-free scenario must serialize without any `faults` field so v3
    /// checkpoints (and the goldens hashed over them) stay byte-identical,
    /// while a faulted scenario round-trips through the optional field.
    #[test]
    fn fault_field_is_omitted_when_absent_and_round_trips_when_present() {
        let mut scenario = nasty_outcome().scenario;
        assert!(!render_scenario(&scenario).contains("faults"));

        scenario.faults = FaultChoice::Links {
            count: 2,
            seed: 31_337,
            activation: 617,
        };
        let rendered = render_scenario(&scenario);
        assert!(rendered.contains("\"faults\":"));
        let parsed = parse_json(&rendered).expect("scenario renders as JSON");
        let back = parse_scenario(&parsed, Path::new("inline")).expect("scenario reconstructs");
        assert_eq!(back, scenario);
    }

    /// Fault-sweep partials carry the v4 format tag and survive the full
    /// render → parse → validate cycle (including faulted scenarios).
    #[test]
    fn fault_sweep_partial_report_round_trips_at_v4() {
        let campaign = Campaign::fault_sweep(11, 4);
        let shard = ShardRange {
            index: 0,
            start: 0,
            end: 4,
        };
        let partial = PartialReport::compute(&campaign, shard).unwrap();
        let json = partial.render_json();
        assert!(json.contains(&format!("\"format\":\"{FORMAT_VERSION_V4}\"")));
        let back = PartialReport::parse_json(&json, Path::new("inline")).unwrap();
        assert_eq!(back, partial);

        // A v4 partial relabeled v3 is rejected: the format check is
        // dimension-aware.
        let downgraded = json.replacen(FORMAT_VERSION_V4, FORMAT_VERSION, 1);
        assert!(matches!(
            PartialReport::parse_json(&downgraded, Path::new("inline")),
            Err(Error::CorruptCheckpoint { .. })
        ));
    }

    #[test]
    fn partial_report_json_round_trips_and_validates() {
        let campaign = Campaign::new(11, 6);
        let shard = ShardRange {
            index: 1,
            start: 3,
            end: 6,
        };
        let partial = PartialReport::compute(&campaign, shard).unwrap();
        let json = partial.render_json();
        let back = PartialReport::parse_json(&json, Path::new("inline")).unwrap();
        assert_eq!(back, partial);

        // Tampered config hash is rejected.
        let tampered = json.replacen("\"config_hash\":", "\"config_hash\":1", 1);
        assert!(matches!(
            PartialReport::parse_json(&tampered, Path::new("inline")),
            Err(Error::CorruptCheckpoint { .. })
        ));
        // Truncation is rejected.
        assert!(PartialReport::parse_json(&json[..json.len() / 2], Path::new("inline")).is_err());
    }

    #[test]
    fn manifest_json_round_trips() {
        let manifest = ShardManifest {
            config_hash: 0xdead_beef,
            shard: ShardRange {
                index: 3,
                start: 10,
                end: 20,
            },
            outcomes: 10,
            partial_digest: fnv1a(b"partial bytes"),
        };
        let back = ShardManifest::parse_json(&manifest.render_json(), Path::new("inline")).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn merge_is_order_independent_and_matches_single_process() {
        let campaign = Campaign::new(3, 5);
        let reference = campaign.run(1).unwrap();
        let partials: Vec<PartialReport> = partition(campaign.scenarios, 3)
            .into_iter()
            .map(|range| PartialReport::compute(&campaign, range).unwrap())
            .collect();
        // Merge in reverse and in plan order: identical bytes either way.
        for order in [vec![2usize, 0, 1], vec![0, 1, 2], vec![1, 2, 0]] {
            let mut merged = ConformanceReport::empty(campaign.seed);
            for position in order {
                merged.merge(partials[position].clone().into_report());
            }
            assert_eq!(merged, reference);
            assert_eq!(merged.render(), reference.render());
            assert_eq!(merged.render_json(), reference.render_json());
        }
    }

    #[test]
    fn empty_report_is_the_merge_identity() {
        let campaign = Campaign::new(5, 3);
        let report = campaign.run(1).unwrap();
        let mut merged = ConformanceReport::empty(5);
        merged.merge(report.clone());
        merged.merge(ConformanceReport::empty(5));
        assert_eq!(merged, report);
    }

    #[test]
    fn fleet_checkpoints_scan_and_merge_on_disk() {
        let dir = temp_dir("roundtrip");
        let fleet = Fleet::new(Campaign::new(11, 5), 2, &dir);
        fleet.prepare_dir(false).unwrap();

        // Nothing committed yet.
        assert!(fleet
            .scan()
            .iter()
            .all(|status| status.state == ShardState::Missing && status.attempts == 0));
        assert!(fleet.merge().is_err());

        fleet.run_shard(0).unwrap();
        fleet.run_shard(1).unwrap();
        assert!(fleet
            .scan()
            .iter()
            .all(|status| status.state == ShardState::Complete && status.attempts == 1));

        let merged = fleet.merge().unwrap();
        let reference = fleet.campaign.run(1).unwrap();
        assert_eq!(merged, reference);
        assert_eq!(merged.render_json(), reference.render_json());

        // Truncating a partial flips exactly that shard to corrupt, and the
        // fault is blamed on the *partial* file — with the expected (from
        // the manifest) and actual digests — not on its healthy manifest.
        let partial_path = fleet.partial_path(1);
        let bytes = fs::read(&partial_path).unwrap();
        fs::write(&partial_path, &bytes[..bytes.len() / 2]).unwrap();
        let statuses = fleet.scan();
        assert_eq!(statuses[0].state, ShardState::Complete);
        let ShardState::Corrupt(reason) = &statuses[1].state else {
            panic!("truncated partial not flagged corrupt: {:?}", statuses[1]);
        };
        assert!(reason.contains("partial.json"), "{reason}");
        assert!(reason.contains("digest mismatch"), "{reason}");
        let manifest_text = fs::read_to_string(fleet.manifest_path(1)).unwrap();
        let recorded = ShardManifest::parse_json(&manifest_text, &fleet.manifest_path(1))
            .unwrap()
            .partial_digest;
        let truncated = fnv1a(&bytes[..bytes.len() / 2]);
        assert!(reason.contains(&format!("{recorded:#018x}")), "{reason}");
        assert!(reason.contains(&format!("{truncated:#018x}")), "{reason}");
        let merge_error = fleet.merge().unwrap_err();
        let rendered = merge_error.to_string();
        assert!(
            rendered.contains("partial.json") && !rendered.contains("manifest.json"),
            "merge must blame the partial, got: {rendered}"
        );

        // Tampering with the *manifest* blames the manifest instead.
        let manifest_path = fleet.manifest_path(0);
        let original_manifest = fs::read_to_string(&manifest_path).unwrap();
        fs::write(&manifest_path, original_manifest.replace('{', "")).unwrap();
        let statuses = fleet.scan();
        let ShardState::Corrupt(reason) = &statuses[0].state else {
            panic!("tampered manifest not flagged corrupt: {:?}", statuses[0]);
        };
        assert!(reason.contains("manifest.json"), "{reason}");
        fs::write(&manifest_path, original_manifest).unwrap();
        assert!(fleet.merge().is_err());

        // Re-running the shard repairs it; the attempt counter records it.
        fleet.run_shard(1).unwrap();
        assert_eq!(fleet.attempts(1), 2);
        assert_eq!(
            fleet.merge().unwrap().render_json(),
            reference.render_json()
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_campaign_dir_is_rejected_not_merged() {
        let dir = temp_dir("stale");
        let original = Fleet::new(Campaign::new(7, 4), 2, &dir);
        original.prepare_dir(false).unwrap();
        original.run_shard(0).unwrap();

        // A different campaign config must refuse the directory outright.
        for other in [
            Campaign::new(8, 4),
            Campaign::new(7, 5),
            Campaign::buffer_sweep(7, 4),
        ] {
            let stale = Fleet::new(other, 2, &dir);
            let error = stale.prepare_dir(false).unwrap_err();
            assert!(matches!(error, Error::CorruptCheckpoint { .. }), "{error}");
            assert!(error.to_string().contains("config mismatch"), "{error}");
        }

        // Same config resumes fine; --fresh wipes and re-initialises.
        original.prepare_dir(false).unwrap();
        assert_eq!(original.scan()[0].state, ShardState::Complete);
        let refreshed = Fleet::new(Campaign::new(8, 4), 2, &dir);
        refreshed.prepare_dir(true).unwrap();
        assert!(refreshed
            .scan()
            .iter()
            .all(|status| status.state == ShardState::Missing));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_shard_rejects_out_of_plan_indices() {
        let dir = temp_dir("oob");
        let fleet = Fleet::new(Campaign::new(1, 3), 2, &dir);
        assert!(fleet.run_shard(5).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
