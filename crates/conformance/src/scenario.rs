//! Randomized conformance scenarios: a sampled platform (mesh, flow set,
//! design, message size) plus the machine-checked invariants tying the
//! cycle-accurate simulator to the analytic WCTT bounds.
//!
//! Each scenario runs the simulator under the *closed-loop probing*
//! discipline ([`wnoc_sim::Simulation::run_closed_loop`]) and asserts, per
//! flow:
//!
//! * **dominance** — the worst observed traversal latency never exceeds the
//!   bound of any analysis that claims observation safety
//!   ([`WcttBoundModel::dominates_observation`]);
//! * **cross-analysis ordering** — the slot-model bottleneck envelope sits
//!   below the primary bound, and the UBD packetization composition sits
//!   between the single-flit bound and the naive sum of per-packet bounds.
//!
//! Scenario sampling is fully determined by `(campaign_seed, index)` through
//! `rand_chacha`, so any failure reproduces from two integers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use wnoc_core::analysis::oracle::{
    oracle_suite_with_counts, oracle_suite_with_curve, BufferAwareOracle, GraphBufferAwareOracle,
    WcttBoundModel,
};
use wnoc_core::analysis::preemptive::SATURATION_SENTINEL;
use wnoc_core::analysis::BufferAwareWcttModel;
use wnoc_core::buffers::per_port_table;
use wnoc_core::fault::{reroute_flows, Reroute};
use wnoc_core::flow::{FlowId, FlowSet, PortCounts};
use wnoc_core::vc::{VcAssignment, VcConfig};
use wnoc_core::{
    ArrivalCurve, BufferConfig, Coord, FaultPlan, Mesh, NocConfig, NodeId, Result,
    RetransmitPolicy, TreeRouting,
};
use wnoc_sim::{LatencyStats, SaturatedReport, Simulation};
use wnoc_workloads::Placement;

/// The NoC design a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignChoice {
    /// Baseline round-robin mesh with maximum packet size `L`.
    Regular {
        /// Maximum packet size in flits (the paper's `L`).
        max_packet_flits: u32,
    },
    /// The proposed WaW + WaP design.
    WawWap,
}

impl DesignChoice {
    /// The concrete configuration.
    pub fn config(&self) -> NocConfig {
        match *self {
            DesignChoice::Regular { max_packet_flits } => NocConfig::regular(max_packet_flits),
            DesignChoice::WawWap => NocConfig::waw_wap(),
        }
    }

    /// Human-readable label (matches [`NocConfig::label`]).
    pub fn label(&self) -> String {
        self.config().label()
    }
}

/// The router input-buffer sizing of a scenario — the buffer-depth dimension
/// of the conformance space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferChoice {
    /// The design's historical buffering (uniform at
    /// [`NocConfig::input_buffer_flits`]); scenarios sampled by
    /// [`Scenario::sample`] always use it, keeping legacy campaigns
    /// byte-identical.
    Default,
    /// Uniform buffers of the given depth, in flits — the sweep points
    /// {1, 2, 8, [`BufferConfig::INFINITE_EQUIVALENT`]} plus the default 4.
    Uniform {
        /// Buffer depth in flits.
        depth: u32,
    },
    /// A seeded heterogeneous assignment: every `(router, input port)` draws
    /// its depth from {1, 2, 4, 8} via `ChaCha8Rng(seed)`.
    Heterogeneous {
        /// Seed of the per-port depth assignment.
        seed: u64,
    },
}

impl BufferChoice {
    /// Materialises the concrete [`BufferConfig`] over `mesh`.
    pub fn config(&self, noc: &NocConfig, mesh: &Mesh) -> BufferConfig {
        match *self {
            BufferChoice::Default => BufferConfig::uniform(noc.input_buffer_flits),
            BufferChoice::Uniform { depth } => BufferConfig::uniform(depth),
            BufferChoice::Heterogeneous { seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                per_port_table(mesh, |_, _| 1 << rng.gen_range(0u32..4))
            }
        }
    }

    /// Label suffix for reports; empty for the default buffering so legacy
    /// scenario labels are unchanged.
    pub fn label_suffix(&self) -> String {
        match *self {
            BufferChoice::Default => String::new(),
            BufferChoice::Uniform { depth } => format!(" d={depth}"),
            BufferChoice::Heterogeneous { seed } => format!(" d=het#{seed}"),
        }
    }
}

/// The virtual-channel configuration of a scenario — the VC dimension of the
/// conformance space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcChoice {
    /// The paper's single-queue router ([`VcConfig::single`]); scenarios
    /// sampled by [`Scenario::sample`] and [`Scenario::sample_buffered`]
    /// always use it, keeping legacy campaigns byte-identical.
    Default,
    /// `count` virtual channels per input port with the given static flow →
    /// VC assignment (VC 0 is the highest priority class).
    Count {
        /// VCs per input port (2..=[`wnoc_core::vc::MAX_VCS`]).
        count: u32,
        /// The flow → VC assignment rule.
        assignment: VcAssignment,
    },
}

impl VcChoice {
    /// Materialises the concrete [`VcConfig`].
    pub fn config(&self) -> VcConfig {
        match *self {
            VcChoice::Default => VcConfig::single(),
            VcChoice::Count { count, assignment } => VcConfig::new(count, assignment)
                .expect("sampled VC counts are valid by construction"),
        }
    }

    /// Label suffix for reports; empty for the single-VC default so legacy
    /// scenario labels are unchanged.
    pub fn label_suffix(&self) -> String {
        match self {
            VcChoice::Default => String::new(),
            VcChoice::Count { .. } => format!(" {}", self.config().label()),
        }
    }
}

/// The traffic discipline of a scenario — the arrival dimension of the
/// conformance space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficChoice {
    /// Closed-loop probing ([`Simulation::run_closed_loop`]): every flow
    /// keeps exactly one message in flight, observing *traversal* latencies.
    /// Scenarios sampled outside the bursty dimension always use it, keeping
    /// legacy campaigns byte-identical.
    ClosedLoop,
    /// Open-loop bursty arrivals ([`Simulation::run_bursty`]): every flow
    /// releases messages along the arrival curve `(burst, gap, cv)`,
    /// observing *end-to-end message* latencies (queueing behind the flow's
    /// own admitted backlog included) against the graph-based buffer-aware
    /// bound.
    Bursty {
        /// Messages released back-to-back at cycle zero (the curve's `b`).
        burst: u32,
        /// Sustained inter-arrival gap in cycles.
        gap: u32,
        /// Jitter knob: each release may slip by up to `gap * cv / 100`
        /// cycles (seeded, per flow).
        cv: u32,
    },
}

impl TrafficChoice {
    /// The concrete arrival contract, or `None` for the closed-loop default.
    pub fn curve(&self) -> Option<ArrivalCurve> {
        match *self {
            TrafficChoice::ClosedLoop => None,
            TrafficChoice::Bursty { burst, gap, cv } => {
                Some(ArrivalCurve::bursty(burst, gap).with_jitter(cv))
            }
        }
    }

    /// Label suffix for reports; empty for the closed-loop default so legacy
    /// scenario labels are unchanged.
    pub fn label_suffix(&self) -> String {
        match *self {
            TrafficChoice::ClosedLoop => String::new(),
            TrafficChoice::Bursty { burst, gap, cv } => format!(" b={burst}/g={gap}/cv={cv}"),
        }
    }
}

/// The fault injection of a scenario — the degraded-mode dimension of the
/// conformance space.  Variants carry sampling *parameters* (seed, count,
/// activation), not concrete coordinates: the plan is rematerialised from the
/// mesh via the deterministic [`FaultPlan`] samplers, so a scenario stays a
/// small self-contained value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultChoice {
    /// The healthy network; scenarios sampled outside the fault dimension
    /// always use it, keeping legacy campaigns byte-identical (the fault
    /// machinery is never installed).
    None,
    /// `count` distinct directed-link failures, all activating at
    /// `activation` (cycle 0 = degraded from the start; later = mid-run
    /// epoch flush), sampled from `seed`
    /// ([`FaultPlan::sample_links`]).
    Links {
        /// Number of distinct directed links to fail (1–3 in the sweep).
        count: u32,
        /// Sampling seed of the link choice.
        seed: u64,
        /// Activation cycle of every sampled link fault.
        activation: u64,
    },
    /// One whole-router failure at `activation`, sampled from `seed`
    /// ([`FaultPlan::sample_router`]).
    Router {
        /// Sampling seed of the router choice.
        seed: u64,
        /// Activation cycle of the router fault.
        activation: u64,
    },
}

impl FaultChoice {
    /// Materialises the concrete [`FaultPlan`] over `mesh`, or `None` for
    /// the healthy default.
    ///
    /// # Errors
    ///
    /// Returns an error if the mesh has fewer directed links than `count`
    /// (cannot happen for generator-produced scenarios).
    pub fn plan(&self, mesh: &Mesh) -> Result<Option<FaultPlan>> {
        match *self {
            FaultChoice::None => Ok(None),
            FaultChoice::Links {
                count,
                seed,
                activation,
            } => FaultPlan::sample_links(mesh, seed, count as usize, activation).map(Some),
            FaultChoice::Router { seed, activation } => {
                Ok(Some(FaultPlan::sample_router(mesh, seed, activation)))
            }
        }
    }

    /// `true` for the healthy default.
    pub fn is_none(&self) -> bool {
        *self == FaultChoice::None
    }

    /// Label suffix for reports; empty for the healthy default so legacy
    /// scenario labels are unchanged.
    pub fn label_suffix(&self) -> String {
        match *self {
            FaultChoice::None => String::new(),
            FaultChoice::Links {
                count,
                seed,
                activation,
            } => format!(" f=L{count}#{seed}@{activation}"),
            FaultChoice::Router { seed, activation } => format!(" f=R#{seed}@{activation}"),
        }
    }
}

/// The flow-set family of a scenario, with its sampled parameters baked in so
/// the scenario is self-contained and serializable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioFamily {
    /// Every node sends to one hotspot (the paper's memory-controller
    /// scenario, with a randomized hotspot position).
    AllToOne {
        /// Hotspot destination.
        hotspot: Coord,
    },
    /// One source broadcasts to every other node.
    OneToAll {
        /// Broadcast source.
        source: Coord,
    },
    /// Request/response flows between every node and a few endpoint nodes
    /// (randomized memory-controller placements).
    Endpoints {
        /// Endpoint (memory controller) positions.
        memories: Vec<Coord>,
    },
    /// An explicit randomized set of (source, destination) pairs.
    RandomPairs {
        /// The sampled pairs (distinct, deduplicated).
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// One of the paper's 16-thread placements (`wnoc-workloads`), with
    /// request/response flows between every placed core and the memory
    /// controller at `R(0,0)` (8×8 mesh only).
    Placement {
        /// Placement name (`"P0"` … `"P3"`).
        name: String,
        /// Memory controller position.
        memory: Coord,
        /// The placed cores.
        cores: Vec<Coord>,
    },
}

impl ScenarioFamily {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            ScenarioFamily::AllToOne { hotspot } => format!("all-to-one({hotspot})"),
            ScenarioFamily::OneToAll { source } => format!("one-to-all({source})"),
            ScenarioFamily::Endpoints { memories } => format!("endpoints(x{})", memories.len()),
            ScenarioFamily::RandomPairs { pairs } => format!("random-pairs(x{})", pairs.len()),
            ScenarioFamily::Placement { name, .. } => format!("placement({name})"),
        }
    }

    /// Builds the concrete flow set over `mesh`.
    ///
    /// # Errors
    ///
    /// Returns an error if a sampled coordinate lies outside the mesh (cannot
    /// happen for generator-produced scenarios).
    pub fn flow_set(&self, mesh: &Mesh) -> Result<FlowSet> {
        match self {
            ScenarioFamily::AllToOne { hotspot } => FlowSet::all_to_one(mesh, *hotspot),
            ScenarioFamily::OneToAll { source } => FlowSet::one_to_all(mesh, *source),
            ScenarioFamily::Endpoints { memories } => {
                FlowSet::to_and_from_endpoints(mesh, memories)
            }
            ScenarioFamily::RandomPairs { pairs } => FlowSet::from_pairs(mesh, pairs.clone()),
            ScenarioFamily::Placement { memory, cores, .. } => {
                let memory_id = mesh.node_id(*memory)?;
                let mut pairs = Vec::with_capacity(2 * cores.len());
                for &core in cores {
                    let core_id = mesh.node_id(core)?;
                    pairs.push((core_id, memory_id));
                    pairs.push((memory_id, core_id));
                }
                FlowSet::from_pairs(mesh, pairs)
            }
        }
    }
}

/// A memo of materialised flow sets and their contention counts, keyed by
/// `(mesh side, family)`.  Campaign samplers draw the same families
/// repeatedly (there are only four paper placements, and hotspot positions
/// collide across indices), and scenario startup pays twice for every repeat:
/// route construction for the flow set and the O(total hops) contention-count
/// rebuild behind the slot envelope.  A per-worker cache skips both — the
/// counts are handed to [`oracle_suite_with_counts`], the same delta-
/// maintained structure the incremental analysis engine and
/// [`wnoc_core::analysis::oracle::SlotOracle::push_flow`] keep up to date —
/// while outcomes stay byte-identical to uncached runs (the cache only ever
/// returns what a fresh build would have produced).
#[derive(Debug, Default)]
pub struct FlowSetCache {
    entries: HashMap<(u16, String), (FlowSet, PortCounts)>,
}

/// Cached families per worker before the memo resets; campaigns sample a few
/// distinct families per mesh side, so evictions are rare in practice.
const FLOW_SET_CACHE_CAP: usize = 64;

impl FlowSetCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Families currently memoised.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The flow set and contention counts of `family` over `mesh`, built on
    /// first use and cloned out of the memo afterwards.
    ///
    /// # Errors
    ///
    /// Returns an error if the family does not fit the mesh (generator bugs
    /// only — sampled scenarios are valid by construction).
    pub fn get_or_build(
        &mut self,
        mesh: &Mesh,
        family: &ScenarioFamily,
    ) -> Result<(FlowSet, PortCounts)> {
        let key = (mesh.width(), format!("{family:?}"));
        if let Some(entry) = self.entries.get(&key) {
            return Ok(entry.clone());
        }
        let flows = family.flow_set(mesh)?;
        // Feed every route through the same add-delta the incremental layer
        // and `SlotOracle::push_flow` use, rather than the bulk rebuild.
        let mut counts = PortCounts::default();
        for (id, _flow) in flows.iter() {
            counts.add_route(flows.route(id).expect("member route"));
        }
        if self.entries.len() >= FLOW_SET_CACHE_CAP {
            self.entries.clear();
        }
        self.entries.insert(key, (flows.clone(), counts.clone()));
        Ok((flows, counts))
    }
}

/// One sampled conformance scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Position in the campaign (also the replay key together with `seed`).
    pub index: usize,
    /// The campaign seed this scenario was derived from.
    pub seed: u64,
    /// Mesh side (2–12).
    pub side: u16,
    /// Flow-set family.
    pub family: ScenarioFamily,
    /// NoC design.
    pub design: DesignChoice,
    /// Message size offered by every probe, in regular-packetization flits.
    pub message_flits: u32,
    /// Closed-loop probing cycles.
    pub cycles: u64,
    /// Router input-buffer sizing ([`BufferChoice::Default`] for scenarios
    /// sampled outside the buffer-depth dimension).
    pub buffers: BufferChoice,
    /// Virtual-channel configuration ([`VcChoice::Default`] for scenarios
    /// sampled outside the VC dimension).
    pub vcs: VcChoice,
    /// Traffic discipline ([`TrafficChoice::ClosedLoop`] for scenarios
    /// sampled outside the bursty dimension).
    pub traffic: TrafficChoice,
    /// Fault injection ([`FaultChoice::None`] for scenarios sampled outside
    /// the fault dimension).
    pub faults: FaultChoice,
}

/// One dominance violation: an observation above an analysis' bound.  An
/// empty violation list is the conformance verdict the harness exists to
/// check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The violating flow.
    pub flow: FlowId,
    /// Name of the analysis whose bound was exceeded.
    pub oracle: String,
    /// Worst observed traversal latency.
    pub observed: u64,
    /// The analytic bound that should have dominated it.
    pub bound: u64,
}

/// Summary of per-flow tightness ratios (`observed_max / primary_bound`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TightnessSummary {
    /// Flows with at least one observation.
    pub flows: usize,
    /// Mean ratio over observed flows (0 when no flow was observed).
    pub mean: f64,
    /// Smallest ratio (loosest bound).
    pub min: f64,
    /// Largest ratio (tightest — must stay ≤ 1 for a safe bound).
    pub max: f64,
}

impl TightnessSummary {
    fn from_ratios(ratios: &[f64]) -> Self {
        if ratios.is_empty() {
            return Self {
                flows: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let sum: f64 = ratios.iter().sum();
        Self {
            flows: ratios.len(),
            mean: sum / ratios.len() as f64,
            min: ratios.iter().copied().fold(f64::INFINITY, f64::min),
            max: ratios.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// The result of running one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// Flows in the sampled flow set.
    pub flow_count: usize,
    /// Messages observed during the run (all flows together).
    pub observed: LatencyStats,
    /// Cycles the simulator executed for this scenario (probing window plus
    /// drain) — the numerator of campaign-level `cycles_per_sec` throughput.
    pub simulated_cycles: u64,
    /// Whether observation dominance was asserted.  `false` only for WaW
    /// scenarios whose flow set is not output-consistent
    /// ([`FlowSet::is_output_consistent`]): FIFO head-of-line divergence puts
    /// such platforms outside what the weighted analysis models, so those
    /// scenarios carry the analytic ordering checks only.
    pub dominance_checked: bool,
    /// Dominance violations (observation above a safe bound).  Empty on pass.
    pub violations: Vec<Violation>,
    /// Cross-analysis ordering violations, as human-readable descriptions.
    /// Empty on pass.
    pub ordering_violations: Vec<String>,
    /// Tightness of the primary bound against the observations (empty when
    /// dominance was not checked).
    pub tightness: TightnessSummary,
}

impl ScenarioOutcome {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.ordering_violations.is_empty()
    }
}

impl Scenario {
    /// Deterministically samples scenario `index` of the campaign with seed
    /// `campaign_seed`.  The scenario space covers mesh sides 2–12, five flow
    /// families (including the paper's thread placements), the regular design
    /// with `L ∈ {1, 2, 4, 8}` and WaW + WaP, and message sizes from 1 flit up
    /// to two maximum packets (multi-packet messages).
    ///
    /// WaW + WaP scenarios always probe single slices: that is the quantity
    /// the paper's per-packet WCTT analysis bounds (multi-slice pipelining is
    /// covered by the analytic ordering checks instead — see
    /// [`wnoc_core::analysis::oracle`]).
    pub fn sample(index: usize, campaign_seed: u64) -> Self {
        let stream = campaign_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = ChaCha8Rng::seed_from_u64(stream);

        let family_roll = rng.gen_range(0u32..8);
        // The paper placements are defined on the 8×8 mesh; every other
        // family samples its side freely.
        let side: u16 = if family_roll == 7 {
            8
        } else {
            rng.gen_range(2u16..=12)
        };
        let mesh = Mesh::square(side).expect("side in 2..=12");
        let random_coord =
            |rng: &mut ChaCha8Rng| Coord::new(rng.gen_range(0..side), rng.gen_range(0..side));

        let family = match family_roll {
            // All-to-one is the paper's evaluation scenario; keep it the most
            // frequent family.
            0..=2 => ScenarioFamily::AllToOne {
                hotspot: random_coord(&mut rng),
            },
            3 => ScenarioFamily::OneToAll {
                source: random_coord(&mut rng),
            },
            4 => {
                let count = rng.gen_range(1usize..=2);
                let mut memories = vec![random_coord(&mut rng)];
                while memories.len() < count {
                    let extra = random_coord(&mut rng);
                    if !memories.contains(&extra) {
                        memories.push(extra);
                    }
                }
                ScenarioFamily::Endpoints { memories }
            }
            5 | 6 => {
                let nodes = usize::from(side) * usize::from(side);
                let want = rng.gen_range(2usize..=(3 * usize::from(side)).min(24));
                let mut pairs = Vec::new();
                // Rejection-sample distinct pairs; bounded attempts keep the
                // generator total even on tiny meshes.
                for _ in 0..(8 * want) {
                    if pairs.len() >= want {
                        break;
                    }
                    let src = NodeId(rng.gen_range(0..nodes));
                    let dst = NodeId(rng.gen_range(0..nodes));
                    if src != dst && !pairs.contains(&(src, dst)) {
                        pairs.push((src, dst));
                    }
                }
                ScenarioFamily::RandomPairs { pairs }
            }
            _ => {
                let memory = Coord::from_row_col(0, 0);
                let set = Placement::paper_set(&mesh, memory).expect("paper placements on 8x8");
                let placement = &set[rng.gen_range(0usize..set.len())];
                ScenarioFamily::Placement {
                    name: placement.name().to_string(),
                    memory,
                    cores: placement.cores().to_vec(),
                }
            }
        };

        let design = match rng.gen_range(0u32..6) {
            0 | 1 => DesignChoice::WawWap,
            2 => DesignChoice::Regular {
                max_packet_flits: 1,
            },
            3 => DesignChoice::Regular {
                max_packet_flits: 2,
            },
            4 => DesignChoice::Regular {
                max_packet_flits: 4,
            },
            _ => DesignChoice::Regular {
                max_packet_flits: 8,
            },
        };

        let message_flits = match design {
            // Single slices: the per-packet quantity the WaW+WaP analysis
            // bounds (see the type-level docs).
            DesignChoice::WawWap => 1,
            DesignChoice::Regular { max_packet_flits } => match rng.gen_range(0u32..4) {
                0 => 1,
                1 => max_packet_flits,
                // Up to two maximum packets: exercises the multi-packet
                // message composition.
                _ => rng.gen_range(1..=2 * max_packet_flits),
            },
        };

        let flow_count = family.flow_set(&mesh).map(|f| f.len() as u64).unwrap_or(0);
        // Enough probes per flow to squeeze the observations towards the
        // bound, scaled by platform size and capped to keep campaigns brisk.
        let cycles = (1_000 + 30 * flow_count * u64::from(message_flits).min(4)).min(12_000);

        Self {
            index,
            seed: campaign_seed,
            side,
            family,
            design,
            message_flits,
            cycles,
            buffers: BufferChoice::Default,
            vcs: VcChoice::Default,
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::None,
        }
    }

    /// Samples scenario `index` of a **buffer-depth** campaign: the same
    /// platform space as [`Scenario::sample`] (identical rng stream, so the
    /// two campaigns cover the same meshes/flows/designs), plus a buffer
    /// dimension drawn from an independent stream — uniform depths
    /// {1, 2, 4 (default), 8, ∞-equivalent} and seeded heterogeneous
    /// per-port assignments.
    ///
    /// The depth dimension probes **per-packet** dominance for the regular
    /// design (message sizes are clamped to one maximum packet), mirroring
    /// how WaW scenarios always probe single slices: campaigns at this scale
    /// caught the regular *multi-packet message composition* exceeded by up
    /// to 15% on ≥ 9×9 meshes even at the default depth (deep-FIFO
    /// cross-traffic between the packets of a train).  The composition is
    /// now bounded by the `preemptive` oracle's repaired message bound; the
    /// depth clamp here simply keeps this dimension focused on per-packet
    /// buffering effects.
    pub fn sample_buffered(index: usize, campaign_seed: u64) -> Self {
        let mut scenario = Self::sample(index, campaign_seed);
        if let DesignChoice::Regular { max_packet_flits } = scenario.design {
            scenario.message_flits = scenario.message_flits.min(max_packet_flits);
        }
        // Independent stream: the base scenario draws stay identical to the
        // legacy sampler's.
        let stream =
            !campaign_seed ^ (index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03) ^ 0xBADB_00F5;
        let mut rng = ChaCha8Rng::seed_from_u64(stream);
        scenario.buffers = match rng.gen_range(0u32..8) {
            0 => BufferChoice::Uniform { depth: 1 },
            1 => BufferChoice::Uniform { depth: 2 },
            // Keep the default design point inside the sweep.
            2 | 3 => BufferChoice::Default,
            4 => BufferChoice::Uniform { depth: 8 },
            5 => BufferChoice::Uniform {
                depth: BufferConfig::INFINITE_EQUIVALENT,
            },
            _ => BufferChoice::Heterogeneous {
                seed: rng.gen_range(0u64..1_000_000),
            },
        };
        // Shallow rings serialise the pipeline (credit round-trips), so give
        // depth-1 scenarios more probing time to squeeze observations.
        if let BufferChoice::Uniform { depth: 1 } = scenario.buffers {
            scenario.cycles = (scenario.cycles * 3 / 2).min(12_000);
        }
        scenario
    }

    /// Samples scenario `index` of a **virtual-channel** campaign: the same
    /// platform space as [`Scenario::sample`] (identical rng stream), plus a
    /// VC dimension drawn from an independent stream — counts weighted
    /// towards 2 and 3 (with the single-VC design point kept inside the
    /// sweep) crossed with both static assignment rules.
    ///
    /// Only round-robin scenarios sample multiple VCs: the per-VC priority
    /// arbiter replaces the weighted WaW/WaP arbiter, so a multi-VC WaW
    /// platform is outside every weighted analysis and would carry no
    /// dominance oracle.  Regular probes are clamped to one maximum packet,
    /// mirroring the buffer-depth dimension, so the VC sweep exercises the
    /// priority/preemption machinery rather than re-testing message
    /// composition.
    pub fn sample_vc(index: usize, campaign_seed: u64) -> Self {
        let mut scenario = Self::sample(index, campaign_seed);
        // Independent stream: the base scenario draws stay identical to the
        // legacy sampler's.
        let stream =
            !campaign_seed ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0xADD5_EED0;
        let mut rng = ChaCha8Rng::seed_from_u64(stream);
        let count = [1u32, 2, 2, 3, 3, 4][rng.gen_range(0usize..6)];
        let assignment = if rng.gen_range(0u32..2) == 0 {
            VcAssignment::FlowIndex
        } else {
            VcAssignment::Distance
        };
        match scenario.design {
            DesignChoice::Regular { max_packet_flits } => {
                scenario.message_flits = scenario.message_flits.min(max_packet_flits);
                if count > 1 {
                    scenario.vcs = VcChoice::Count { count, assignment };
                }
            }
            DesignChoice::WawWap => {}
        }
        scenario
    }

    /// Samples scenario `index` of a **bursty** campaign: open-loop
    /// arrival-curve traffic against the graph-based buffer-aware bound.
    ///
    /// The graph-based analysis models the single-VC WaW + WaP router with
    /// **one flow per source NIC** under a **stable** sustained rate (see
    /// [`wnoc_core::analysis::graph_buffer_aware`]), so this sampler stays
    /// inside that validity domain by construction: the design is always
    /// WaW + WaP with the default single-queue router, the family is either
    /// an all-to-one hotspot or a random pair set with distinct sources, and
    /// the sustained gap is sized from the scenario's own steady-state
    /// buffer-aware bounds — at least twice the worst per-flow message bound,
    /// so even a release delayed by the maximum jitter (`cv ≤ 50`% of the
    /// gap) leaves every queue emptied before the next arrival.  Burst sizes
    /// 0–6 and heterogeneous buffer depths ride on top; the burst backlog is
    /// what separates the graph-based bound from its steady-state base.
    pub fn sample_bursty(index: usize, campaign_seed: u64) -> Self {
        let stream =
            !campaign_seed ^ (index as u64).wrapping_mul(0x94D0_49BB_1331_11EB) ^ 0xB0B5_7EED;
        let mut rng = ChaCha8Rng::seed_from_u64(stream);

        let side: u16 = rng.gen_range(3u16..=8);
        let mesh = Mesh::square(side).expect("side in 3..=8");
        let random_coord =
            |rng: &mut ChaCha8Rng| Coord::new(rng.gen_range(0..side), rng.gen_range(0..side));

        // One flow per source NIC: the hotspot family has it by construction;
        // pair sets enforce it by rejecting a second flow from the same
        // source.  Broadcasts, endpoints and placements put several flows on
        // one NIC and are outside the graph-based model's domain.
        let family = if rng.gen_range(0u32..3) < 2 {
            ScenarioFamily::AllToOne {
                hotspot: random_coord(&mut rng),
            }
        } else {
            let nodes = usize::from(side) * usize::from(side);
            let want = rng.gen_range(2usize..=(2 * usize::from(side)).min(16));
            let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
            for _ in 0..(8 * want) {
                if pairs.len() >= want {
                    break;
                }
                let src = NodeId(rng.gen_range(0..nodes));
                let dst = NodeId(rng.gen_range(0..nodes));
                if src != dst && !pairs.iter().any(|&(s, _)| s == src) {
                    pairs.push((src, dst));
                }
            }
            ScenarioFamily::RandomPairs { pairs }
        };

        let buffers = match rng.gen_range(0u32..8) {
            0 => BufferChoice::Uniform { depth: 1 },
            1 => BufferChoice::Uniform { depth: 2 },
            2..=4 => BufferChoice::Default,
            5 => BufferChoice::Uniform { depth: 8 },
            _ => BufferChoice::Heterogeneous {
                seed: rng.gen_range(0u64..1_000_000),
            },
        };

        let message_flits = [1u32, 1, 1, 2, 3][rng.gen_range(0usize..5)];
        let burst = rng.gen_range(0u32..=6);
        let cv = [0u32, 0, 10, 25, 50][rng.gen_range(0usize..5)];

        // Size the sustained gap from the platform's own steady-state bounds:
        // gap ≥ 2 × the worst per-flow buffer-aware message bound keeps every
        // flow stable (the queue drains between arrivals) even when jitter
        // delays a release by the full cv ≤ 50% allowance.
        let design = DesignChoice::WawWap;
        let config = design.config();
        let flows = family.flow_set(&mesh).expect("sampled family is valid");
        let mut base =
            BufferAwareOracle::new(&flows, &config, mesh, buffers.config(&config, &mesh));
        let worst = (0..flows.len())
            .filter_map(|i| base.message_bound(FlowId(i), message_flits))
            .max()
            .unwrap_or(1)
            .max(1);
        let slack = rng.gen_range(0u64..=worst);
        let gap = u32::try_from(2 * worst + slack).unwrap_or(u32::MAX);

        // Enough epochs to see steady-state repeats after the initial burst
        // drains, plus a floor for small platforms.
        let cycles = u64::from(gap) * 5 + 500;

        Self {
            index,
            seed: campaign_seed,
            side,
            family,
            design,
            message_flits,
            cycles,
            buffers,
            vcs: VcChoice::Default,
            traffic: TrafficChoice::Bursty { burst, gap, cv },
            faults: FaultChoice::None,
        }
    }

    /// Samples scenario `index` of a **fault-sweep** campaign: the same
    /// platform space as [`Scenario::sample`] (identical rng stream), plus a
    /// fault dimension drawn from an independent stream — 1–3 directed-link
    /// failures or one whole-router failure, activating either at cycle 0
    /// (the run is degraded from the start, so the rerouted flows are held
    /// to freshly built degraded oracles) or mid-run (an epoch flush
    /// truncates in-flight worms; the invariant is that the network drains
    /// — retransmitting survivors, dropping severed traffic — rather than
    /// deadlocking).  A slice of healthy design points stays inside the
    /// sweep so the zero-fault path is continuously compared against the
    /// legacy dimensions.
    pub fn sample_fault(index: usize, campaign_seed: u64) -> Self {
        let mut scenario = Self::sample(index, campaign_seed);
        // Independent stream: the base scenario draws stay identical to the
        // legacy sampler's.
        let stream =
            !campaign_seed ^ (index as u64).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xFA17_5EED;
        let mut rng = ChaCha8Rng::seed_from_u64(stream);
        // Mid-run activations land while the closed loop is still probing
        // (never 0, never past the window).
        let midrun = (scenario.cycles / 2).max(1);
        let activation = if rng.gen_range(0u32..2) == 0 {
            0
        } else {
            midrun
        };
        let seed = rng.gen_range(0u64..1_000_000);
        scenario.faults = match rng.gen_range(0u32..8) {
            // Keep the healthy design point inside the sweep: the zero-fault
            // path must stay byte-identical to the legacy dimensions.
            0 => FaultChoice::None,
            1..=3 => FaultChoice::Links {
                count: 1,
                seed,
                activation,
            },
            4 => FaultChoice::Links {
                count: 2,
                seed,
                activation,
            },
            5 => FaultChoice::Links {
                count: 3,
                seed,
                activation,
            },
            _ => FaultChoice::Router { seed, activation },
        };
        // Degraded runs reroute over the spanning forest, whose paths are
        // longer than XY routes; give the probes room to keep squeezing.
        if !scenario.faults.is_none() {
            scenario.cycles = (scenario.cycles * 3 / 2).min(12_000);
        }
        scenario
    }

    /// One-line description for logs and reports.
    pub fn label(&self) -> String {
        format!(
            "#{} {}x{} {} {} mf={}{}{}{}{}",
            self.index,
            self.side,
            self.side,
            self.family.label(),
            self.design.label(),
            self.message_flits,
            self.buffers.label_suffix(),
            self.vcs.label_suffix(),
            self.traffic.label_suffix(),
            self.faults.label_suffix()
        )
    }

    /// Runs the scenario: closed-loop simulation plus every analytic check.
    ///
    /// # Errors
    ///
    /// Returns an error if the sampled platform is invalid (generator bugs
    /// only — sampled scenarios are valid by construction).
    pub fn run(&self) -> Result<ScenarioOutcome> {
        self.run_with_cache(&mut FlowSetCache::new())
    }

    /// [`Scenario::run`] reusing a [`FlowSetCache`] across scenarios — the
    /// campaign runner holds one per worker.  Outcomes are byte-identical to
    /// uncached runs.
    ///
    /// # Errors
    ///
    /// Returns an error if the sampled platform is invalid (generator bugs
    /// only — sampled scenarios are valid by construction).
    pub fn run_with_cache(&self, cache: &mut FlowSetCache) -> Result<ScenarioOutcome> {
        let mesh = Mesh::square(self.side)?;
        let (flows, counts) = cache.get_or_build(&mesh, &self.family)?;
        let config = self.design.config();
        let buffers = self.buffers.config(&config, &mesh);
        let vcs = self.vcs.config();

        let mut sim = Simulation::with_vcs(mesh, config, &flows, &buffers, vcs)?;
        let fault_plan = self.faults.plan(&mesh)?;
        if let Some(plan) = &fault_plan {
            sim.install_fault_plan(plan.clone(), RetransmitPolicy::default())?;
        }
        let report = match self.traffic.curve() {
            None => sim.run_closed_loop(&flows, self.message_flits, self.cycles)?,
            Some(curve) => {
                // Open-loop replay: the release schedule (and its jitter) is
                // a pure function of the campaign identity, so the outcome
                // reproduces from `(seed, index)` like every other scenario.
                let schedule_seed =
                    self.seed ^ (self.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                sim.run_bursty(
                    &flows,
                    self.message_flits,
                    &curve,
                    self.cycles,
                    schedule_seed,
                )?
            }
        };
        let simulated_cycles = sim.stats().cycles;

        if let Some(plan) = &fault_plan {
            return self.faulted_outcome(
                &mesh,
                &flows,
                &config,
                &buffers,
                vcs,
                plan,
                &report,
                simulated_cycles,
            );
        }

        let mut suite = match self.traffic.curve() {
            None => oracle_suite_with_counts(&flows, &config, mesh, &buffers, vcs, counts)?,
            Some(curve) => {
                oracle_suite_with_curve(&flows, &config, mesh, &buffers, vcs, counts, curve)?
            }
        };
        // The weighted analyses only model platforms where flows sharing an
        // input buffer never diverge (the paper's single-destination
        // evaluation); elsewhere FIFO head-of-line blocking imports delay
        // from off-route ports and no per-route bound applies.  The
        // chained-blocking analysis of the regular mesh models divergence
        // explicitly, so round-robin scenarios are checked whenever a
        // depth-valid dominating oracle exists (shallow buffers demote the
        // depth-unaware analyses to ordering-only — see
        // `oracle_suite_with_buffers`).
        let has_dominating = suite.iter().any(|oracle| oracle.dominates_observation());
        let dominance_checked = has_dominating
            && match self.design {
                DesignChoice::Regular { .. } => true,
                DesignChoice::WawWap => flows.is_output_consistent(),
            };
        let (violations, tightness) = if dominance_checked {
            self.check_dominance(&flows, &report, &mut suite)
        } else {
            (Vec::new(), Vec::new())
        };
        let ordering_violations = self.check_ordering(&flows, &mesh, &buffers, &mut suite);

        Ok(ScenarioOutcome {
            scenario: self.clone(),
            flow_count: flows.len(),
            observed: report.overall(),
            simulated_cycles,
            dominance_checked,
            violations,
            ordering_violations,
            tightness: TightnessSummary::from_ratios(&tightness),
        })
    }

    /// Finishes a fault scenario's outcome: the simulator has already proved
    /// the liveness half (the run drained — retransmitting NACKed survivors
    /// and dropping severed traffic — instead of deadlocking or wedging),
    /// and this decides which analytic checks apply on top.
    ///
    /// * **Cycle-0 activation** (degraded from the start): every observation
    ///   happened on the tree-routed topology, so the surviving flows are
    ///   rerouted ([`reroute_flows`] — the same construction the incremental
    ///   engine's fault mutations are verified against) and held to freshly
    ///   built degraded oracles, dominance and ordering both.
    /// * **Mid-run activation**: observations mix healthy-epoch and
    ///   degraded-epoch traversals (a probe NACKed by the flush spans the
    ///   outage end-to-end); no single oracle bounds that mixture, so the
    ///   scenario is drain-only (`dominance_checked = false`).
    #[allow(clippy::too_many_arguments)]
    fn faulted_outcome(
        &self,
        mesh: &Mesh,
        flows: &FlowSet,
        config: &NocConfig,
        buffers: &BufferConfig,
        vcs: VcConfig,
        plan: &FaultPlan,
        report: &SaturatedReport,
        simulated_cycles: u64,
    ) -> Result<ScenarioOutcome> {
        let tree = TreeRouting::new(&plan.final_set(mesh));
        let reroute = reroute_flows(flows, &tree)?;
        let degraded_from_start = plan.activations().iter().all(|&cycle| cycle == 0);
        if !degraded_from_start || reroute.flows.is_empty() {
            return Ok(ScenarioOutcome {
                scenario: self.clone(),
                flow_count: flows.len(),
                observed: report.overall(),
                simulated_cycles,
                dominance_checked: false,
                violations: Vec::new(),
                ordering_violations: Vec::new(),
                tightness: TightnessSummary::from_ratios(&[]),
            });
        }
        // Contention counts of the rerouted set, fed through the same
        // add-delta the healthy path uses (no cache: degraded sets are
        // plan-specific).
        let mut counts = PortCounts::default();
        for (id, _flow) in reroute.flows.iter() {
            counts.add_route(reroute.flows.route(id).expect("member route"));
        }
        let mut suite =
            oracle_suite_with_counts(&reroute.flows, config, *mesh, buffers, vcs, counts)?;
        let has_dominating = suite.iter().any(|oracle| oracle.dominates_observation());
        let dominance_checked = has_dominating
            && match self.design {
                DesignChoice::Regular { .. } => true,
                DesignChoice::WawWap => reroute.flows.is_output_consistent(),
            };
        let (violations, tightness) = if dominance_checked {
            self.check_degraded_dominance(&reroute, report, &mut suite)
        } else {
            (Vec::new(), Vec::new())
        };
        let ordering_violations = self.check_ordering(&reroute.flows, mesh, buffers, &mut suite);
        Ok(ScenarioOutcome {
            scenario: self.clone(),
            flow_count: flows.len(),
            observed: report.overall(),
            simulated_cycles,
            dominance_checked,
            violations,
            ordering_violations,
            tightness: TightnessSummary::from_ratios(&tightness),
        })
    }

    /// [`Scenario::check_dominance`] for a degraded-from-start fault
    /// scenario: the report keys observations by *original* flow id, while
    /// the degraded oracles index the densely re-indexed rerouted set — the
    /// [`Reroute::surviving`] table translates between the two.  Severed
    /// pairs carry no bound (and no observation: the closed loop refuses
    /// their offers).  Violations report the original id, which is what a
    /// reproduction needs.
    fn check_degraded_dominance(
        &self,
        reroute: &Reroute,
        report: &SaturatedReport,
        suite: &mut [Box<dyn WcttBoundModel>],
    ) -> (Vec<Violation>, Vec<f64>) {
        let mut violations = Vec::new();
        let mut ratios = Vec::new();
        let primary = suite
            .iter()
            .position(|oracle| oracle.dominates_observation());
        for (original, observed) in report.per_flow_max() {
            let Some(position) = reroute.surviving.iter().position(|&id| id == original) else {
                continue;
            };
            let flow = FlowId(position);
            for (at, oracle) in suite.iter_mut().enumerate() {
                if !oracle.dominates_observation() {
                    continue;
                }
                let Some(bound) = oracle.message_bound(flow, self.message_flits) else {
                    continue;
                };
                if Some(at) == primary && bound > 0 && bound < SATURATION_SENTINEL {
                    ratios.push(observed as f64 / bound as f64);
                }
                if observed > bound && oracle.dominates_message(self.message_flits) {
                    violations.push(Violation {
                        flow: original,
                        oracle: oracle.name().to_string(),
                        observed,
                        bound,
                    });
                }
            }
        }
        (violations, ratios)
    }

    /// Dominance: every analysis claiming observation safety *for this
    /// message size* ([`WcttBoundModel::dominates_observation`] together with
    /// [`WcttBoundModel::dominates_message`]) must bound every flow's worst
    /// observed traversal.  Returns the violations plus the per-flow
    /// tightness ratios against the primary (first dominating) analysis.
    ///
    /// Ratios are diagnostics, not verdicts: they are recorded even when the
    /// primary analysis does not claim the multi-packet composition (so a
    /// ratio above 1.0 can coexist with a pass — the scenario is then held
    /// to the `preemptive` oracle's repaired message bound instead), and
    /// skipped when the bound is the saturation sentinel (no finite bound
    /// exists under closed-loop saturation of a higher-priority VC).
    fn check_dominance(
        &self,
        flows: &FlowSet,
        report: &SaturatedReport,
        suite: &mut [Box<dyn WcttBoundModel>],
    ) -> (Vec<Violation>, Vec<f64>) {
        let mut violations = Vec::new();
        let mut ratios = Vec::new();
        let primary = suite
            .iter()
            .position(|oracle| oracle.dominates_observation());
        for (flow, observed) in report.per_flow_max() {
            if flows.route(flow).is_none() {
                // Stats can contain ids the network registered on demand;
                // conformance only judges the statically analysed flows.
                continue;
            }
            for (position, oracle) in suite.iter_mut().enumerate() {
                if !oracle.dominates_observation() {
                    continue;
                }
                let Some(bound) = oracle.message_bound(flow, self.message_flits) else {
                    continue;
                };
                if Some(position) == primary && bound > 0 && bound < SATURATION_SENTINEL {
                    ratios.push(observed as f64 / bound as f64);
                }
                if observed > bound && oracle.dominates_message(self.message_flits) {
                    violations.push(Violation {
                        flow,
                        oracle: oracle.name().to_string(),
                        observed,
                        bound,
                    });
                }
            }
        }
        (violations, ratios)
    }

    /// Cross-analysis ordering, for every flow:
    ///
    /// * `slot ≤ reference` — the bottleneck-port envelope sits below the
    ///   full-route bound (`reference` is the paper-flavour model: `regular`
    ///   under round robin, `weighted` under WaW);
    /// * `reference ≤ primary` — the dominance bound can only strengthen the
    ///   paper bound (trivial equality under round robin, paper ≤
    ///   backpressured under WaW);
    /// * `packet(1) ≤ ubd ≤ packets × packet(L)` — the UBD packetization
    ///   composition lies between one minimal packet and the naive
    ///   per-packet sum;
    /// * under round robin, `reference ≤ preemptive` — the priority-
    ///   preemptive bound starts from the chained-blocking service time and
    ///   only adds depth-envelope and preemption terms, so it can never
    ///   undercut the paper bound;
    /// * under WaW, the **buffer-aware** bound sits between the paper bound
    ///   and the backpressured bound according to depth — `paper ≤
    ///   buffer-aware` always, `buffer-aware ≤ backpressured` when every
    ///   buffer is at least the calibration depth, `buffer-aware ≥
    ///   backpressured` when none is deeper — and tightens monotonically:
    ///   doubling every depth never raises it.
    fn check_ordering(
        &self,
        flows: &FlowSet,
        mesh: &Mesh,
        buffers: &BufferConfig,
        suite: &mut [Box<dyn WcttBoundModel>],
    ) -> Vec<String> {
        let mut failures = Vec::new();
        let position = |suite: &[Box<dyn WcttBoundModel>], name: &str| {
            suite.iter().position(|o| o.name() == name)
        };
        let Some(ubd_at) = position(suite, "ubd") else {
            return vec!["oracle suite lacks the ubd analysis".to_string()];
        };
        let Some(slot_at) = position(suite, "slot") else {
            return vec!["oracle suite lacks the slot analysis".to_string()];
        };
        // The paper-flavour reference the envelope and UBD compose against.
        let reference_at = position(suite, "regular")
            .or_else(|| position(suite, "weighted"))
            .unwrap_or(0);

        let max_packet = self
            .design
            .config()
            .packetization
            .worst_case_contender_flits();
        let naive_packets = u64::from(self.message_flits.div_ceil(max_packet).max(1)) + 1;
        for index in 0..flows.len() {
            let flow = FlowId(index);
            let (Some(reference_msg), Some(reference_single), Some(reference_packet)) = (
                suite[reference_at].message_bound(flow, self.message_flits),
                suite[reference_at].packet_bound(flow, 1),
                suite[reference_at].packet_bound(flow, max_packet),
            ) else {
                continue;
            };
            if let Some(envelope) = suite[slot_at].message_bound(flow, self.message_flits) {
                if envelope > reference_msg {
                    failures.push(format!(
                        "{flow}: slot envelope {envelope} above reference bound {reference_msg}"
                    ));
                }
            }
            if let Some(primary_msg) = suite[0].message_bound(flow, self.message_flits) {
                if reference_msg > primary_msg {
                    failures.push(format!(
                        "{flow}: reference bound {reference_msg} above primary bound \
                         {primary_msg}"
                    ));
                }
            }
            if let Some(preemptive_at) = position(suite, "preemptive") {
                if let Some(preemptive_msg) =
                    suite[preemptive_at].message_bound(flow, self.message_flits)
                {
                    if reference_msg > preemptive_msg {
                        failures.push(format!(
                            "{flow}: reference bound {reference_msg} above preemptive bound \
                             {preemptive_msg}"
                        ));
                    }
                }
            }
            if let Some(composed) = suite[ubd_at].message_bound(flow, self.message_flits) {
                if composed < reference_single {
                    failures.push(format!(
                        "{flow}: ubd composition {composed} below single-packet bound \
                         {reference_single}"
                    ));
                }
                // The +1 packet of `naive_packets` absorbs the WaP control
                // slice; the pipelined composition must never exceed the
                // naive per-packet sum.
                if composed > naive_packets * reference_packet {
                    failures.push(format!(
                        "{flow}: ubd composition {composed} above naive sum \
                         {naive_packets}x{reference_packet}"
                    ));
                }
            }
        }
        if self.design == DesignChoice::WawWap {
            failures.extend(self.check_buffer_aware_ordering(flows, mesh, buffers, suite));
        }
        if let TrafficChoice::Bursty { burst, gap, cv } = self.traffic {
            failures
                .extend(self.check_bursty_ordering(flows, mesh, buffers, suite, burst, gap, cv));
        }
        failures
    }

    /// The buffer-aware ordering invariants (WaW scenarios only — the model
    /// is an analysis of the weighted design).
    fn check_buffer_aware_ordering(
        &self,
        flows: &FlowSet,
        mesh: &Mesh,
        buffers: &BufferConfig,
        suite: &mut [Box<dyn WcttBoundModel>],
    ) -> Vec<String> {
        let mut failures = Vec::new();
        let position = |suite: &[Box<dyn WcttBoundModel>], name: &str| {
            suite.iter().position(|o| o.name() == name)
        };
        let (Some(ba_at), Some(paper_at), Some(bp_at)) = (
            position(suite, "buffer-aware"),
            position(suite, "weighted"),
            position(suite, "weighted-bp"),
        ) else {
            return vec!["WaW oracle suite lacks a weighted analysis".to_string()];
        };
        let config = self.design.config();
        let calibration = BufferAwareWcttModel::CALIBRATION_DEPTH;
        let all_deep = buffers.min_depth() >= calibration;
        let all_shallow = buffers.max_depth() <= calibration;
        // Doubling every depth must never raise the bound (monotone
        // tightening with buffer capacity).
        let mut deepened = BufferAwareOracle::new(flows, &config, *mesh, buffers.scaled(2));
        for index in 0..flows.len() {
            let flow = FlowId(index);
            let (Some(ba), Some(paper), Some(bp)) = (
                suite[ba_at].message_bound(flow, self.message_flits),
                suite[paper_at].message_bound(flow, self.message_flits),
                suite[bp_at].message_bound(flow, self.message_flits),
            ) else {
                continue;
            };
            if ba < paper {
                failures.push(format!(
                    "{flow}: buffer-aware bound {ba} below paper bound {paper}"
                ));
            }
            if all_deep && ba > bp {
                failures.push(format!(
                    "{flow}: buffer-aware bound {ba} above backpressured bound {bp} \
                     despite calibration-or-deeper buffers"
                ));
            }
            if all_shallow && ba < bp {
                failures.push(format!(
                    "{flow}: buffer-aware bound {ba} below backpressured bound {bp} \
                     despite calibration-or-shallower buffers"
                ));
            }
            if let Some(relaxed) = deepened.message_bound(flow, self.message_flits) {
                if relaxed > ba {
                    failures.push(format!(
                        "{flow}: doubling every buffer depth raised the buffer-aware \
                         bound {ba} -> {relaxed}"
                    ));
                }
            }
        }
        failures
    }

    /// The bursty ordering invariants (scenarios of the bursty dimension
    /// only), per flow:
    ///
    /// * **zero-burst collapse** — at `b ≤ 1` without jitter the graph-based
    ///   bound equals the steady-state buffer-aware bound *bit-identically*
    ///   (the burst and jitter terms vanish, nothing else may differ);
    /// * `buffer-aware ≤ graph-ba` — the burst term never weakens the base;
    /// * **monotone in `b`** — raising the burst by one message never lowers
    ///   the bound.
    #[allow(clippy::too_many_arguments)]
    fn check_bursty_ordering(
        &self,
        flows: &FlowSet,
        mesh: &Mesh,
        buffers: &BufferConfig,
        suite: &mut [Box<dyn WcttBoundModel>],
        burst: u32,
        gap: u32,
        cv: u32,
    ) -> Vec<String> {
        let mut failures = Vec::new();
        let position = |suite: &[Box<dyn WcttBoundModel>], name: &str| {
            suite.iter().position(|o| o.name() == name)
        };
        let (Some(graph_at), Some(ba_at)) =
            (position(suite, "graph-ba"), position(suite, "buffer-aware"))
        else {
            return vec!["bursty oracle suite lacks the graph-based analysis".to_string()];
        };
        let config = self.design.config();
        let mut collapsed = GraphBufferAwareOracle::new(
            flows,
            &config,
            *mesh,
            buffers.clone(),
            ArrivalCurve::bursty(1, gap),
        );
        let mut raised = GraphBufferAwareOracle::new(
            flows,
            &config,
            *mesh,
            buffers.clone(),
            ArrivalCurve::bursty(burst + 1, gap).with_jitter(cv),
        );
        for index in 0..flows.len() {
            let flow = FlowId(index);
            let (Some(graph), Some(ba)) = (
                suite[graph_at].message_bound(flow, self.message_flits),
                suite[ba_at].message_bound(flow, self.message_flits),
            ) else {
                continue;
            };
            if let Some(zero) = collapsed.message_bound(flow, self.message_flits) {
                if zero != ba {
                    failures.push(format!(
                        "{flow}: zero-burst graph bound {zero} differs from the \
                         buffer-aware bound {ba}"
                    ));
                }
            }
            if graph < ba {
                failures.push(format!(
                    "{flow}: graph bound {graph} below its buffer-aware base {ba}"
                ));
            }
            if let Some(next) = raised.message_bound(flow, self.message_flits) {
                if next < graph {
                    failures.push(format!(
                        "{flow}: raising the burst from {burst} to {} lowered the graph \
                         bound {graph} -> {next}",
                        burst + 1
                    ));
                }
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_in_index_and_seed() {
        for index in [0usize, 3, 17] {
            assert_eq!(Scenario::sample(index, 7), Scenario::sample(index, 7));
        }
        assert_ne!(Scenario::sample(0, 7), Scenario::sample(0, 8));
        assert_ne!(Scenario::sample(0, 7), Scenario::sample(1, 7));
    }

    #[test]
    fn sampled_scenarios_are_valid_platforms() {
        for index in 0..40 {
            let scenario = Scenario::sample(index, 1234);
            assert!((2..=12).contains(&scenario.side), "{}", scenario.label());
            assert!(scenario.message_flits >= 1);
            assert!(scenario.cycles >= 1_000);
            let mesh = Mesh::square(scenario.side).unwrap();
            let flows = scenario.family.flow_set(&mesh).unwrap();
            assert!(!flows.is_empty(), "{}", scenario.label());
        }
    }

    #[test]
    fn placements_always_sample_the_8x8_mesh() {
        let mut seen = 0;
        for index in 0..120 {
            let scenario = Scenario::sample(index, 99);
            if let ScenarioFamily::Placement { cores, .. } = &scenario.family {
                assert_eq!(scenario.side, 8);
                assert_eq!(cores.len(), 16);
                seen += 1;
            }
        }
        assert!(seen > 0, "placement family never sampled");
    }

    #[test]
    fn waw_scenarios_probe_single_slices() {
        for index in 0..60 {
            let scenario = Scenario::sample(index, 5);
            if scenario.design == DesignChoice::WawWap {
                assert_eq!(scenario.message_flits, 1);
            }
        }
    }

    #[test]
    fn a_small_scenario_passes_end_to_end() {
        // Pin a tiny scenario rather than relying on the sampler.
        let scenario = Scenario {
            index: 0,
            seed: 0,
            side: 3,
            family: ScenarioFamily::AllToOne {
                hotspot: Coord::from_row_col(0, 0),
            },
            design: DesignChoice::Regular {
                max_packet_flits: 2,
            },
            message_flits: 3,
            cycles: 1_500,
            buffers: BufferChoice::Default,
            vcs: VcChoice::Default,
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::None,
        };
        let outcome = scenario.run().unwrap();
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert_eq!(outcome.flow_count, 8);
        assert_eq!(outcome.tightness.flows, 8);
        assert!(outcome.tightness.max <= 1.0);
        assert!(outcome.tightness.mean > 0.0);
        assert!(outcome.observed.count > 0);
    }

    #[test]
    fn scenario_runs_reproduce() {
        let scenario = Scenario::sample(4, 42);
        assert_eq!(scenario.run().unwrap(), scenario.run().unwrap());
    }

    #[test]
    fn cached_runs_match_uncached_runs() {
        // One shared cache across several scenarios (with repeated families)
        // must leave every outcome identical to the uncached path.
        let mut cache = FlowSetCache::new();
        for index in [0usize, 1, 2, 0, 1] {
            let scenario = Scenario::sample(index, 42);
            assert_eq!(
                scenario.run_with_cache(&mut cache).unwrap(),
                scenario.run().unwrap(),
                "{}",
                scenario.label()
            );
        }
        assert!(!cache.is_empty());
        assert!(cache.len() <= 3, "repeats must hit the memo");
    }

    #[test]
    fn cache_counts_match_bulk_rebuild() {
        let mesh = Mesh::square(5).unwrap();
        let family = ScenarioFamily::AllToOne {
            hotspot: Coord::from_row_col(2, 3),
        };
        let mut cache = FlowSetCache::new();
        let (flows, counts) = cache.get_or_build(&mesh, &family).unwrap();
        assert_eq!(counts, wnoc_core::flow::PortCounts::from_flow_set(&flows));
        // The second build is a memo hit returning the identical entry.
        let (again_flows, again_counts) = cache.get_or_build(&mesh, &family).unwrap();
        assert_eq!(flows.pairs(), again_flows.pairs());
        assert_eq!(counts, again_counts);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn buffered_sampler_keeps_the_platform_and_only_adds_depth() {
        for index in 0..30 {
            let base = Scenario::sample(index, 9);
            let buffered = Scenario::sample_buffered(index, 9);
            assert_eq!(base.side, buffered.side);
            assert_eq!(base.family, buffered.family);
            assert_eq!(base.design, buffered.design);
            // Regular designs probe per-packet in the depth dimension.
            let expected_mf = match base.design {
                DesignChoice::Regular { max_packet_flits } => {
                    base.message_flits.min(max_packet_flits)
                }
                DesignChoice::WawWap => base.message_flits,
            };
            assert_eq!(buffered.message_flits, expected_mf);
            assert_eq!(base.buffers, BufferChoice::Default);
        }
    }

    #[test]
    fn buffered_sampler_covers_the_depth_dimension() {
        let mut shallow = 0;
        let mut deep = 0;
        let mut heterogeneous = 0;
        for index in 0..80 {
            match Scenario::sample_buffered(index, 3).buffers {
                BufferChoice::Uniform { depth } if depth < 4 => shallow += 1,
                BufferChoice::Uniform { .. } => deep += 1,
                BufferChoice::Heterogeneous { .. } => heterogeneous += 1,
                BufferChoice::Default => {}
            }
        }
        assert!(shallow > 0, "no shallow-depth scenario sampled");
        assert!(deep > 0, "no deep-depth scenario sampled");
        assert!(heterogeneous > 0, "no heterogeneous scenario sampled");
    }

    #[test]
    fn heterogeneous_choice_is_deterministic_and_valid() {
        let mesh = Mesh::square(5).unwrap();
        let config = NocConfig::waw_wap();
        let choice = BufferChoice::Heterogeneous { seed: 77 };
        let a = choice.config(&config, &mesh);
        let b = choice.config(&config, &mesh);
        assert_eq!(a, b);
        assert!(a.validate(&mesh).is_ok());
        assert!(a.min_depth() >= 1);
        assert!(a.max_depth() <= 8);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "runs large 9x9 campaign scenarios; release only"
    )]
    fn formerly_unsound_compositions_pass_by_bound_not_suppression() {
        // Seed-7 Core scenarios #234 and #267 (≥ 9×9, L=8, multi-packet) are
        // the pinned reproductions that proved the composed `Σ` per-packet
        // message bound unsound (observed exceeds it by up to 15%).  The
        // repair has two halves: the `regular`/`ubd` oracles no longer claim
        // *message* dominance beyond one maximum packet
        // (`dominates_message`), and the `preemptive` oracle's repaired
        // composition bounds the full message train.  There is no violation
        // suppression anywhere anymore — these scenarios must pass because a
        // sound bound actually covers the observation.
        for index in [234usize, 267] {
            let scenario = Scenario::sample(index, 7);
            assert!(
                scenario.side >= 9 && scenario.message_flits > 8,
                "pinned violator drifted: {}",
                scenario.label()
            );
            let outcome = scenario.run().unwrap();
            assert!(
                outcome.passed(),
                "{}: {:?} / {:?}",
                scenario.label(),
                outcome.violations,
                outcome.ordering_violations
            );
            assert!(outcome.dominance_checked);
            // The diagnostic ratio against the primary (regular) composed
            // bound still exceeds 1.0: the observation really is above the
            // old bound, and the pass is earned by the preemptive message
            // bound — not by skipping the comparison.
            assert!(
                outcome.tightness.max > 1.0,
                "{}: composition no longer exceeded (tightness {:.3}) — the \
                 pinned reproduction lost its teeth",
                scenario.label(),
                outcome.tightness.max
            );
        }
    }

    #[test]
    fn depth_one_scenario_passes_end_to_end() {
        // The tightest design point: depth-1 wormhole under WaW.  The
        // buffer-aware oracle must dominate, the run must drain (no
        // SimulationStalled), and the demoted depth-unaware oracles must not
        // report violations.
        let scenario = Scenario {
            index: 0,
            seed: 0,
            side: 4,
            family: ScenarioFamily::AllToOne {
                hotspot: Coord::from_row_col(0, 0),
            },
            design: DesignChoice::WawWap,
            message_flits: 1,
            cycles: 3_000,
            buffers: BufferChoice::Uniform { depth: 1 },
            vcs: VcChoice::Default,
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::None,
        };
        let outcome = scenario.run().unwrap();
        assert!(
            outcome.passed(),
            "violations: {:?} / {:?}",
            outcome.violations,
            outcome.ordering_violations
        );
        assert!(outcome.dominance_checked);
        assert!(outcome.tightness.flows > 0);
        assert!(outcome.tightness.max <= 1.0);
    }

    #[test]
    fn vc_sampler_keeps_the_platform_and_only_adds_channels() {
        for index in 0..40 {
            let base = Scenario::sample(index, 13);
            let vc = Scenario::sample_vc(index, 13);
            assert_eq!(base.side, vc.side);
            assert_eq!(base.family, vc.family);
            assert_eq!(base.design, vc.design);
            assert_eq!(base.buffers, vc.buffers);
            assert_eq!(base.vcs, VcChoice::Default);
            match base.design {
                DesignChoice::Regular { max_packet_flits } => {
                    // Per-packet probes, mirroring the buffer-depth sweep.
                    assert_eq!(vc.message_flits, base.message_flits.min(max_packet_flits));
                }
                DesignChoice::WawWap => {
                    // WaW keeps the single-queue design: the priority arbiter
                    // would replace the weighted arbiter the analyses model.
                    assert_eq!(vc.vcs, VcChoice::Default);
                    assert_eq!(vc.message_flits, base.message_flits);
                }
            }
            assert_eq!(Scenario::sample_vc(index, 13), vc, "sampler not pure");
        }
    }

    #[test]
    fn vc_sampler_covers_the_vc_dimension() {
        let mut counts_seen = [0usize; 5];
        let mut idx_seen = 0;
        let mut dist_seen = 0;
        for index in 0..160 {
            let scenario = Scenario::sample_vc(index, 3);
            match scenario.vcs {
                VcChoice::Default => counts_seen[1] += 1,
                VcChoice::Count { count, assignment } => {
                    assert!((2..=4).contains(&count), "{}", scenario.label());
                    counts_seen[count as usize] += 1;
                    match assignment {
                        VcAssignment::FlowIndex => idx_seen += 1,
                        VcAssignment::Distance => dist_seen += 1,
                    }
                    assert!(
                        matches!(scenario.design, DesignChoice::Regular { .. }),
                        "multi-VC WaW sampled: {}",
                        scenario.label()
                    );
                }
            }
        }
        for (count, &seen) in counts_seen.iter().enumerate().skip(1) {
            assert!(seen > 0, "VC count {count} never sampled");
        }
        assert!(idx_seen > 0, "flow-index assignment never sampled");
        assert!(dist_seen > 0, "distance assignment never sampled");
    }

    #[test]
    fn bursty_sampler_stays_inside_the_graph_models_domain() {
        let mut hotspots = 0;
        let mut pair_sets = 0;
        let mut bursts_seen = [false; 7];
        for index in 0..60 {
            let scenario = Scenario::sample_bursty(index, 11);
            assert_eq!(
                scenario.design,
                DesignChoice::WawWap,
                "{}",
                scenario.label()
            );
            assert_eq!(scenario.vcs, VcChoice::Default, "{}", scenario.label());
            let TrafficChoice::Bursty { burst, gap, cv } = scenario.traffic else {
                panic!("bursty sampler produced closed-loop traffic");
            };
            assert!(burst <= 6 && cv <= 50, "{}", scenario.label());
            bursts_seen[burst as usize] = true;
            // One flow per source NIC, and a gap at least twice the worst
            // steady-state message bound (the stability margin the analysis
            // needs under cv <= 50% jitter).
            let mesh = Mesh::square(scenario.side).unwrap();
            let flows = scenario.family.flow_set(&mesh).unwrap();
            let mut sources: Vec<NodeId> = flows.iter().map(|(_, f)| f.src).collect();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), flows.len(), "{}", scenario.label());
            let config = scenario.design.config();
            let buffers = scenario.buffers.config(&config, &mesh);
            let mut base = BufferAwareOracle::new(&flows, &config, mesh, buffers);
            let worst = (0..flows.len())
                .filter_map(|i| base.message_bound(FlowId(i), scenario.message_flits))
                .max()
                .unwrap();
            assert!(
                u64::from(gap) >= 2 * worst,
                "{}: gap {gap} below stability margin 2x{worst}",
                scenario.label()
            );
            assert!(scenario.cycles > u64::from(gap), "{}", scenario.label());
            match &scenario.family {
                ScenarioFamily::AllToOne { .. } => hotspots += 1,
                ScenarioFamily::RandomPairs { .. } => pair_sets += 1,
                other => panic!("family outside the bursty domain: {other:?}"),
            }
            assert_eq!(
                Scenario::sample_bursty(index, 11),
                scenario,
                "sampler not pure"
            );
        }
        assert!(hotspots > 0, "no hotspot scenario sampled");
        assert!(pair_sets > 0, "no pair-set scenario sampled");
        assert!(
            bursts_seen.iter().filter(|&&b| b).count() >= 4,
            "burst sizes barely covered"
        );
    }

    #[test]
    fn a_small_bursty_scenario_passes_end_to_end() {
        // Pinned bursty platform: a 3x3 hotspot with a 4-message burst and
        // jittered sustained arrivals.  The graph-based oracle must dominate
        // the end-to-end message latencies (self-queueing included), and the
        // bursty ordering checks (zero-burst collapse, monotonicity) run.
        let scenario = Scenario {
            index: 0,
            seed: 0,
            side: 3,
            family: ScenarioFamily::AllToOne {
                hotspot: Coord::from_row_col(0, 0),
            },
            design: DesignChoice::WawWap,
            message_flits: 1,
            cycles: 6_000,
            buffers: BufferChoice::Default,
            vcs: VcChoice::Default,
            traffic: TrafficChoice::Bursty {
                burst: 4,
                gap: 1_000,
                cv: 25,
            },
            faults: FaultChoice::None,
        };
        assert!(
            scenario.label().ends_with(" b=4/g=1000/cv=25"),
            "{}",
            scenario.label()
        );
        let outcome = scenario.run().unwrap();
        assert!(
            outcome.passed(),
            "violations: {:?} / {:?}",
            outcome.violations,
            outcome.ordering_violations
        );
        assert!(outcome.dominance_checked, "graph-ba oracle must dominate");
        assert!(outcome.tightness.flows > 0);
        assert!(outcome.tightness.max <= 1.0);
        assert!(outcome.observed.count > 0);
    }

    #[test]
    fn sampled_bursty_scenarios_pass() {
        let mut cache = FlowSetCache::new();
        for index in 0..4 {
            let scenario = Scenario::sample_bursty(index, 42);
            let outcome = scenario.run_with_cache(&mut cache).unwrap();
            assert!(
                outcome.passed(),
                "{}: {:?} / {:?}",
                scenario.label(),
                outcome.violations,
                outcome.ordering_violations
            );
            assert_eq!(outcome, scenario.run().unwrap(), "{}", scenario.label());
        }
    }

    #[test]
    fn a_small_multi_vc_scenario_passes_end_to_end() {
        // Pinned multi-VC platform: the preemptive oracle is the only
        // dominating analysis (the single-VC analyses are demoted), VC 0
        // flows carry finite bounds and higher VCs may carry the saturation
        // sentinel — the scenario must still be dominance-checked and pass.
        let scenario = Scenario {
            index: 0,
            seed: 0,
            side: 3,
            family: ScenarioFamily::AllToOne {
                hotspot: Coord::from_row_col(0, 0),
            },
            design: DesignChoice::Regular {
                max_packet_flits: 2,
            },
            message_flits: 2,
            cycles: 2_000,
            buffers: BufferChoice::Default,
            vcs: VcChoice::Count {
                count: 2,
                assignment: VcAssignment::FlowIndex,
            },
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::None,
        };
        assert!(
            scenario.label().ends_with(" vc=2/idx"),
            "{}",
            scenario.label()
        );
        let outcome = scenario.run().unwrap();
        assert!(
            outcome.passed(),
            "violations: {:?} / {:?}",
            outcome.violations,
            outcome.ordering_violations
        );
        assert!(outcome.dominance_checked, "preemptive oracle must dominate");
        assert!(outcome.observed.count > 0);
    }

    #[test]
    fn fault_sampler_perturbs_only_the_fault_dimension() {
        let mut kinds = [false; 5]; // none, L1, L2, L3, router
        let mut cycle_zero = 0;
        let mut midrun = 0;
        for index in 0..60 {
            let scenario = Scenario::sample_fault(index, 11);
            let base = Scenario::sample(index, 11);
            // Platform identical to the legacy sampler: only the fault
            // dimension (and its cycle stretch) may differ.
            assert_eq!(scenario.side, base.side, "{}", scenario.label());
            assert_eq!(scenario.family, base.family, "{}", scenario.label());
            assert_eq!(scenario.design, base.design, "{}", scenario.label());
            assert_eq!(scenario.buffers, base.buffers, "{}", scenario.label());
            assert_eq!(scenario.vcs, base.vcs, "{}", scenario.label());
            assert_eq!(scenario.traffic, base.traffic, "{}", scenario.label());
            match scenario.faults {
                FaultChoice::None => {
                    kinds[0] = true;
                    assert_eq!(scenario, base, "fault-free point must be the base point");
                }
                FaultChoice::Links {
                    count, activation, ..
                } => {
                    assert!((1..=3).contains(&count), "{}", scenario.label());
                    kinds[count as usize] = true;
                    assert!(activation < scenario.cycles, "{}", scenario.label());
                    if activation == 0 {
                        cycle_zero += 1
                    } else {
                        midrun += 1
                    }
                }
                FaultChoice::Router { activation, .. } => {
                    kinds[4] = true;
                    if activation == 0 {
                        cycle_zero += 1
                    } else {
                        midrun += 1
                    }
                }
            }
            // The sampled plan must materialize on the scenario's own mesh.
            let mesh = Mesh::square(scenario.side).unwrap();
            assert!(scenario.faults.plan(&mesh).is_ok(), "{}", scenario.label());
            assert_eq!(
                Scenario::sample_fault(index, 11),
                scenario,
                "sampler not pure"
            );
        }
        assert!(
            kinds.iter().all(|&k| k),
            "fault kinds barely covered: {kinds:?}"
        );
        assert!(cycle_zero > 0, "no degraded-from-start scenario sampled");
        assert!(midrun > 0, "no mid-run activation sampled");
    }

    #[test]
    fn a_degraded_from_start_scenario_is_held_to_degraded_oracles() {
        // Pinned cycle-0 link failure: every observation happens on the
        // up*/down* tree-routed topology, so the outcome must be
        // dominance-checked against freshly built degraded oracles — and
        // pass.
        let scenario = Scenario {
            index: 0,
            seed: 0,
            side: 4,
            family: ScenarioFamily::AllToOne {
                hotspot: Coord::from_row_col(0, 0),
            },
            design: DesignChoice::Regular {
                max_packet_flits: 4,
            },
            message_flits: 4,
            cycles: 4_000,
            buffers: BufferChoice::Default,
            vcs: VcChoice::Default,
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::Links {
                count: 1,
                seed: 3,
                activation: 0,
            },
        };
        assert!(
            scenario.label().ends_with(" f=L1#3@0"),
            "{}",
            scenario.label()
        );
        let outcome = scenario.run().unwrap();
        assert!(
            outcome.passed(),
            "violations: {:?} / {:?}",
            outcome.violations,
            outcome.ordering_violations
        );
        assert!(
            outcome.dominance_checked,
            "degraded oracles must dominate a cycle-0 scenario"
        );
        assert!(outcome.observed.count > 0, "survivors must deliver");
        assert!(outcome.tightness.max <= 1.0);
    }

    #[test]
    fn a_midrun_fault_scenario_is_drain_only() {
        // Pinned mid-run router death: observations mix healthy-epoch and
        // degraded-epoch traversals, so no dominance claim is made — the
        // invariant is that the run drains (no deadlock, no stall error).
        let scenario = Scenario {
            index: 0,
            seed: 0,
            side: 4,
            family: ScenarioFamily::AllToOne {
                hotspot: Coord::from_row_col(0, 0),
            },
            design: DesignChoice::Regular {
                max_packet_flits: 4,
            },
            message_flits: 4,
            cycles: 4_000,
            buffers: BufferChoice::Default,
            vcs: VcChoice::Default,
            traffic: TrafficChoice::ClosedLoop,
            faults: FaultChoice::Router {
                seed: 5,
                activation: 2_000,
            },
        };
        assert!(
            scenario.label().ends_with(" f=R#5@2000"),
            "{}",
            scenario.label()
        );
        let outcome = scenario.run().unwrap();
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert!(
            !outcome.dominance_checked,
            "mid-run mixtures admit no oracle claim"
        );
        assert!(outcome.violations.is_empty());
        assert!(outcome.ordering_violations.is_empty());
    }

    #[test]
    fn sampled_fault_scenarios_pass() {
        let mut cache = FlowSetCache::new();
        for index in 0..6 {
            let scenario = Scenario::sample_fault(index, 42);
            let outcome = scenario.run_with_cache(&mut cache).unwrap();
            assert!(
                outcome.passed(),
                "{}: {:?} / {:?}",
                scenario.label(),
                outcome.violations,
                outcome.ordering_violations
            );
            assert_eq!(outcome, scenario.run().unwrap(), "{}", scenario.label());
        }
    }
}
