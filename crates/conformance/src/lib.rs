//! # wnoc-conformance
//!
//! Conformance harness cross-validating the cycle-accurate simulator
//! (`wnoc-sim`) against every analytic WCTT bound (`wnoc-core::analysis`),
//! over randomized campaigns of platforms the paper never tabulated.
//!
//! The paper's central claim is that the WaW + WaP bounds are *safe* (never
//! exceeded by an observation) and *tight* (Table II: 330 observable vs a
//! 653310 regular-mesh bound on the 8×8 mesh).  This crate machine-checks
//! safety — and measures tightness — on thousands of sampled scenarios:
//!
//! * [`Scenario`] — one sampled platform: mesh side 2–12, a flow family
//!   (all-to-one hotspots, broadcasts, endpoint request/response platforms,
//!   random pair sets, the paper's 16-thread placements from
//!   `wnoc-workloads`), a design (regular with `L ∈ {1,2,4,8}` or WaW + WaP)
//!   and a message-size distribution, all derived from `(seed, index)` via
//!   `rand_chacha`;
//! * [`Campaign`] — a seeded scenario list plus a parallel runner
//!   (`std::thread::scope` workers pulling from one shared atomic cursor);
//! * [`ConformanceReport`] — the serializable verdict: per-scenario dominance
//!   and ordering violations plus per-design tightness ratios, byte-identical
//!   regardless of the worker count;
//! * [`Fleet`] — the sharded campaign runner: contiguous scenario ranges run
//!   as independent worker *processes*, each committing a checkpointed
//!   partial report that merges byte-stably (`ConformanceReport::merge`)
//!   into the single-process report, with kill/resume from the last
//!   completed shard (see [`fleet`]).
//!
//! # Example
//!
//! ```
//! use wnoc_conformance::Campaign;
//!
//! let report = Campaign::new(7, 4).run(2)?;
//! assert!(report.passed());
//! assert!(report.tightness().max <= 1.0);
//! # Ok::<(), wnoc_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod fleet;
pub mod scenario;

pub use campaign::{Campaign, CampaignDimension, ConformanceReport, DesignSummary};
pub use fleet::{
    partition, Fleet, FleetRunSummary, PartialReport, ShardManifest, ShardRange, ShardState,
    ShardStatus,
};
pub use scenario::{
    BufferChoice, DesignChoice, FaultChoice, FlowSetCache, Scenario, ScenarioFamily,
    ScenarioOutcome, TightnessSummary, TrafficChoice, VcChoice, Violation,
};
